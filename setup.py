"""Packaging metadata for the TeCoRe reproduction.

Kept as a plain ``setup.py`` (no pyproject build isolation) so that
``pip install -e .`` works offline with the toolchain baked into the
development image.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="tecore-repro",
    version="1.0.0",
    description=(
        "Reproduction of TeCoRe: temporal conflict resolution in uncertain "
        "temporal knowledge graphs (Chekol et al., PVLDB 2017)"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="TeCoRe reproduction contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
    entry_points={
        "console_scripts": [
            "tecore=repro.cli:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
    keywords="knowledge-graph temporal-reasoning markov-logic psl map-inference",
)
