"""Root pytest configuration: deterministic-seed plumbing.

``pytest_addoption`` must live in an *initial* conftest (one pytest loads
before collection starts), which for this layout means the repository
root — ``tests/conftest.py`` would be too late when running a subset like
``pytest tests/verify``.

Every randomized test draws its seed through :func:`audited_seed`, so

* a failing run always *prints* the seed it used (pytest shows captured
  stdout for failures), and
* any run can be reproduced or varied with ``pytest --seed N`` or
  ``TECORE_TEST_SEED=N`` without editing test code (the CLI flag wins).
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--seed",
        action="store",
        type=int,
        default=None,
        metavar="N",
        help="override the seed of randomized tests "
        "(default: TECORE_TEST_SEED env var, else each test's baked-in seed)",
    )


@pytest.fixture
def audited_seed(request: pytest.FixtureRequest):
    """Resolve and announce the effective seed of a randomized test.

    Usage: ``seed = audited_seed(default)``.  Precedence: ``--seed`` >
    ``TECORE_TEST_SEED`` > the test's own default.  The announcement line
    is printed to captured stdout, so every failure report carries the
    exact reproduction command.
    """

    def _resolve(default: int) -> int:
        override = request.config.getoption("--seed")
        if override is None:
            env = os.environ.get("TECORE_TEST_SEED")
            override = int(env) if env else None
        seed = default if override is None else override
        print(
            f"[seed] {request.node.nodeid}: seed={seed} "
            f"(reproduce with: pytest {request.node.nodeid!r} --seed={seed})"
        )
        return seed

    return _resolve
