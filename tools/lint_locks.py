#!/usr/bin/env python3
"""Static lock-discipline check for the serve tier.

Walks the AST of every module in ``src/repro/serve`` and verifies that each
mutation of shared serving state happens under the owning lock:

* :class:`~repro.serve.sessions.SessionPool`'s id → entry map and counters
  mutate under ``self._lock``;
* :class:`~repro.serve.sessions.SessionEntry`'s ``closed`` flag and edit
  counter mutate under the session lock (``entry.lock``);
* :class:`~repro.serve.wal.WriteAheadLog`'s handle, sequencing state and
  counters mutate under ``self._lock``;
* :class:`~repro.serve.batcher.MicroBatcher`'s queue, flags and counters
  mutate under ``self._wakeup`` / ``self._lock``.

"Under the lock" means the mutation has an ancestor that is either a
``with <...>.lock / ._lock / ._wakeup:`` block or a ``try`` whose
``finally`` releases such a lock (the manual acquire/try/release pattern
``_apply_edits`` uses for deadline-bounded acquisition).

The check is name-based, not type-based: any attribute whose name appears
in :data:`GUARDED_ATTRS` must be mutated under a lock, wherever it occurs
in the serve package.  That is deliberately conservative — a new module
that reuses one of these names for unshared state should either rename it
or extend :data:`ALLOWED_UNLOCKED`.

Exemptions:

* ``__init__`` — the object is not yet published to other threads;
* methods whose name ends ``_locked`` and the ones in
  :data:`CALLER_HOLDS_LOCK` — their contract is that the caller already
  holds the lock;
* the explicit ``(file, function, attribute)`` sites in
  :data:`ALLOWED_UNLOCKED`, each with a recorded reason.

Exit status is the number of violations (0 when clean), so the script
works directly as a CI gate:  ``python tools/lint_locks.py``.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, Optional, Sequence

#: Attribute names that constitute shared serving state.
GUARDED_ATTRS = frozenset(
    {
        # SessionPool — under self._lock.
        "_entries",
        "created_total",
        "evicted_total",
        "deleted_total",
        "restored_total",
        # SessionEntry — under the session lock (entry.lock).
        "closed",
        "edits_applied",
        # WriteAheadLog — under self._lock.
        "_closed",
        "_unsynced",
        "_next_seq",
        "_segment_number",
        "_handle",
        "_last_sync",
        "appended_total",
        "synced_total",
        "append_errors_total",
        "compactions_total",
        "records_since_compaction",
        # MicroBatcher — under self._wakeup (which wraps self._lock).
        "_queue",
        "_paused",
        "requests_total",
        "enqueued_total",
        "rejected_total",
        "batches_flushed",
        "resolves_total",
        "coalesced_total",
        "max_batch_seen",
    }
)

#: Final attribute (or bare name) of an expression that counts as a lock.
LOCK_NAMES = frozenset({"lock", "_lock", "_wakeup"})

#: Methods whose docstring contract is "caller holds the lock".
CALLER_HOLDS_LOCK = frozenset({"_maybe_sync"})

#: Mutating container/file-handle methods: ``obj.guarded.<method>(...)``.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "close",
        "discard",
        "extend",
        "flush",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "seek",
        "setdefault",
        "truncate",
        "update",
        "write",
    }
)

#: Reviewed unlocked mutations: (file basename, function name, attribute).
ALLOWED_UNLOCKED = {
    # The entry was created this call and serving has not started routing
    # edits to it; the counter seed races with nothing.
    ("sessions.py", "restore", "edits_applied"),
    # Crash recovery replays the log before the HTTP server accepts any
    # connection — the whole module is single-threaded boot code.
    ("recovery.py", "recover_sessions", "edits_applied"),
}


class Violation:
    __slots__ = ("path", "line", "col", "attr", "context")

    def __init__(self, path: str, line: int, col: int, attr: str, context: str):
        self.path = path
        self.line = line
        self.col = col
        self.attr = attr
        self.context = context

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: attribute "
            f"{self.attr!r} mutated outside its owning lock (in {self.context})"
        )


def _final_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_lock_expr(expr: ast.expr) -> bool:
    return _final_name(expr) in LOCK_NAMES


def _under_lock(ancestors: Sequence[ast.AST]) -> bool:
    """True when some ancestor holds a lock around the mutation."""
    for node in ancestors:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_is_lock_expr(item.context_expr) for item in node.items):
                return True
        elif isinstance(node, ast.Try):
            # Manual acquisition: try: ... finally: <...>.lock.release()
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and _is_lock_expr(sub.func.value)
                    ):
                        return True
    return False


def _mutated_attrs(node: ast.AST) -> Iterator[str]:
    """Guarded attribute names this single statement/expression mutates."""

    def from_target(target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Attribute) and target.attr in GUARDED_ATTRS:
            yield target.attr
        elif isinstance(target, ast.Subscript):
            inner = target.value
            if isinstance(inner, ast.Attribute) and inner.attr in GUARDED_ATTRS:
                yield inner.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from from_target(element)

    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield from from_target(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(node, ast.AnnAssign) and node.value is None):
            yield from from_target(node.target)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            yield from from_target(target)
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in GUARDED_ATTRS
        ):
            yield func.value.attr


def _function_exempt(name: str) -> bool:
    return name == "__init__" or name.endswith("_locked") or name in CALLER_HOLDS_LOCK


def check_source(source: str, path: str) -> List[Violation]:
    """All lock-discipline violations in one module's source text."""
    tree = ast.parse(source, filename=path)
    basename = os.path.basename(path)
    violations: List[Violation] = []

    def walk(node: ast.AST, ancestors: List[ast.AST]) -> None:
        for attr in _mutated_attrs(node):
            functions = [
                a for a in ancestors if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            if not functions:
                continue  # class/module-level definition, not a mutation
            function = functions[-1]
            if _function_exempt(function.name):
                continue
            if (basename, function.name, attr) in ALLOWED_UNLOCKED:
                continue
            if _under_lock(ancestors):
                continue
            classes = [a for a in ancestors if isinstance(a, ast.ClassDef)]
            context = f"{classes[-1].name}.{function.name}" if classes else function.name
            violations.append(Violation(path, node.lineno, node.col_offset, attr, context))
        ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            walk(child, ancestors)
        ancestors.pop()

    walk(tree, [])
    return violations


def check_file(path: str) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as handle:
        return check_source(handle.read(), path)


def _default_targets() -> List[str]:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [os.path.join(root, "src", "repro", "serve")]


def iter_python_files(targets: Sequence[str]) -> Iterator[str]:
    for target in targets:
        if os.path.isfile(target):
            yield target
            continue
        for dirpath, _dirnames, filenames in os.walk(target):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="check that serve-tier shared state mutates under its lock"
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="files or directories to check (default: src/repro/serve)",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="list every file checked")
    args = parser.parse_args(argv)

    targets = list(args.targets) or _default_targets()
    violations: List[Violation] = []
    checked = 0
    for path in iter_python_files(targets):
        checked += 1
        if args.verbose:
            print(f"checking {path}", file=sys.stderr)
        violations.extend(check_file(path))

    for violation in violations:
        print(violation.render())
    if violations:
        print(
            f"lint_locks: {len(violations)} unlocked mutation(s) across "
            f"{checked} file(s)",
            file=sys.stderr,
        )
    elif args.verbose:
        print(f"lint_locks: {checked} file(s) clean", file=sys.stderr)
    return min(len(violations), 125)


if __name__ == "__main__":
    raise SystemExit(main())
