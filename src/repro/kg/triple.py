"""Triples and uncertain temporal facts (weighted quads).

The paper's data model: each fact is an RDF triple ``(s, p, o)`` labelled with
a temporal element (a validity interval over a discrete time domain) and a
confidence value in ``(0, 1]`` witnessing how likely the fact is to hold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Union

from ..errors import InvalidFactError
from ..temporal import TimeInterval
from .term import IRI, SubjectTerm, Term, term_key, to_subject, to_term


@dataclass(frozen=True, order=True, slots=True)
class Triple:
    """A plain (atemporal, certain) RDF triple."""

    subject: SubjectTerm
    predicate: IRI
    object: Term

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"


@dataclass(frozen=True, slots=True)
class TemporalFact:
    """An uncertain temporal fact: a triple + validity interval + confidence.

    This is the unit TeCoRe reasons about; the paper writes it as
    ``(CR, coach, Chelsea, [2000,2004]) 0.9``.

    Attributes
    ----------
    subject, predicate, object:
        The atemporal triple.
    interval:
        Validity interval (closed, discrete).
    confidence:
        Weight in ``(0, 1]``.  ``1.0`` marks a certain (hard-evidence) fact.
    """

    subject: SubjectTerm
    predicate: IRI
    object: Term
    interval: TimeInterval
    confidence: float = 1.0
    _statement_key: tuple = field(init=False, repr=False, compare=False)
    _sort_key: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.interval, TimeInterval):
            raise InvalidFactError(
                f"fact interval must be a TimeInterval, got {type(self.interval).__name__}"
            )
        if not isinstance(self.confidence, (int, float)) or isinstance(self.confidence, bool):
            raise InvalidFactError("confidence must be a number")
        if math.isnan(self.confidence) or not (0.0 < self.confidence <= 1.0):
            raise InvalidFactError(f"confidence must lie in (0, 1], got {self.confidence!r}")
        # All fields are immutable, so the statement key can be computed once;
        # it is the hot lookup key of the grounding engine and atom table.
        statement_key = (
            term_key(self.subject),
            self.predicate.value,
            term_key(self.object),
            self.interval.start,
            self.interval.end,
        )
        object.__setattr__(self, "_statement_key", statement_key)
        # The sort key is equally hot: every grounding join re-orders its
        # matches with it (once per body fact per comparison).
        object.__setattr__(self, "_sort_key", (*statement_key, -self.confidence))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def triple(self) -> Triple:
        """The atemporal triple of this fact."""
        return Triple(self.subject, self.predicate, self.object)

    @property
    def statement_key(self) -> tuple:
        """Identity of the statement ignoring confidence (s, p, o, interval).

        Two facts with the same statement key are the same temporal statement
        possibly extracted with different confidence.
        """
        return self._statement_key

    @property
    def is_certain(self) -> bool:
        """True when the fact carries full confidence (treated as evidence)."""
        return self.confidence >= 1.0

    @property
    def log_weight(self) -> float:
        """Log-odds weight used by the MLN translation.

        A confidence ``c`` maps to ``log(c / (1 - c))``; certain facts get a
        large finite weight so the ILP stays bounded.
        """
        if self.confidence >= 1.0:
            return CERTAIN_LOG_WEIGHT
        return math.log(self.confidence / (1.0 - self.confidence))

    # ------------------------------------------------------------------ #
    # Functional updates
    # ------------------------------------------------------------------ #
    def with_confidence(self, confidence: float) -> "TemporalFact":
        """Copy of the fact with a different confidence."""
        return replace(self, confidence=confidence)

    def with_interval(self, interval: TimeInterval) -> "TemporalFact":
        """Copy of the fact with a different validity interval."""
        return replace(self, interval=interval)

    # ------------------------------------------------------------------ #
    # Ordering / formatting
    # ------------------------------------------------------------------ #
    def sort_key(self) -> tuple:
        return self._sort_key

    def __lt__(self, other: "TemporalFact") -> bool:
        if not isinstance(other, TemporalFact):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return (
            f"({self.subject}, {self.predicate}, {self.object}, "
            f"{self.interval}) {self.confidence:.2f}"
        )


#: Finite stand-in for an infinite weight on certain evidence facts.
CERTAIN_LOG_WEIGHT = 20.0


FactLike = Union[TemporalFact, tuple]


def make_fact(
    subject: Union[SubjectTerm, str],
    predicate: Union[IRI, str],
    obj: Union[Term, str, int],
    interval: Union[TimeInterval, tuple[int, int], int, str],
    confidence: float = 1.0,
) -> TemporalFact:
    """Convenience constructor coercing plain Python values into a fact.

    >>> make_fact("CR", "coach", "Chelsea", (2000, 2004), 0.9)
    ... # doctest: +ELLIPSIS
    TemporalFact(...)
    """
    if isinstance(interval, TimeInterval):
        span = interval
    elif isinstance(interval, tuple):
        span = TimeInterval(int(interval[0]), int(interval[1]))
    elif isinstance(interval, int):
        span = TimeInterval.instant(interval)
    elif isinstance(interval, str):
        span = TimeInterval.parse(interval)
    else:
        raise InvalidFactError(f"cannot interpret {interval!r} as a time interval")
    pred = predicate if isinstance(predicate, IRI) else IRI(str(predicate))
    return TemporalFact(
        subject=to_subject(subject),
        predicate=pred,
        object=to_term(obj),
        interval=span,
        confidence=float(confidence),
    )


def coerce_fact(value: FactLike) -> TemporalFact:
    """Coerce a fact-like value (fact or tuple) into a :class:`TemporalFact`.

    Tuples may be ``(s, p, o, interval)`` or ``(s, p, o, interval, confidence)``.
    """
    if isinstance(value, TemporalFact):
        return value
    if isinstance(value, tuple) and len(value) in (4, 5):
        return make_fact(*value)
    raise InvalidFactError(f"cannot interpret {value!r} as a temporal fact")
