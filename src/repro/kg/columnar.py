"""Columnar (structure-of-arrays) views of a temporal knowledge graph.

The row-oriented :class:`~repro.kg.graph.TemporalKnowledgeGraph` is built for
point lookups: hash indexes from pattern components to statement keys, one
Python object per fact.  The vectorized grounding engine
(:mod:`repro.logic.vectorized`) instead wants *scans*: "give me the subject
ids of every ``playsFor`` fact as one integer array".  This module provides
that representation:

* a :class:`TermInterner` mapping RDF terms (and predicates) to dense integer
  ids — equal terms always receive the same id, so equality joins over terms
  become equality joins over ``int64`` arrays;
* a :class:`RelationBlock` per predicate holding the facts of that relation
  as parallel numpy columns: subject id, object id, interval begin tick,
  interval end tick, and the forward-chaining round the fact entered the
  store (0 for evidence) — the semi-naive delta windows of the grounder are
  plain boolean masks over the round column;
* the :class:`ColumnarFactStore` tying the two together, with incremental
  appends (derived facts arrive round by round), per-row tags and rank
  columns for the engine's emission and ordering contract, and the
  merge-join primitives (:func:`merge_join`, :func:`composite_keys`).

The store keeps a reference to each original :class:`TemporalFact`, so
consumers can recover full fact objects (and their cached sort keys) from the
row indices a vectorized join produces.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from .term import IRI, Term
from .triple import TemporalFact


class TermInterner:
    """Bidirectional mapping between terms and dense integer ids.

    Ids are assigned in first-seen order and never reused; two terms compare
    equal exactly when they intern to the same id (terms are immutable value
    objects), which is the property the vectorized joins rely on.
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self) -> None:
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term: Term) -> int:
        """Id of ``term``, assigning the next free id on first sight."""
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        assigned = len(self._terms)
        self._ids[term] = assigned
        self._terms.append(term)
        return assigned

    def lookup(self, term: Term) -> Optional[int]:
        """Id of ``term`` when already interned, else ``None``.

        Used for constants in rule bodies: an un-interned constant cannot
        match any stored fact, so the caller can prune the join immediately.
        """
        return self._ids.get(term)

    def term(self, term_id: int) -> Term:
        """The term behind ``term_id`` (inverse of :meth:`intern`)."""
        return self._terms[term_id]

    def terms(self, term_ids: Iterable[int]) -> list[Term]:
        """Bulk id → term decoding (C-speed ``map`` over the id list)."""
        return list(map(self._terms.__getitem__, term_ids))


class RelationBlock:
    """All facts of one predicate as parallel columns.

    Appends go to Python staging lists; the numpy columns are (re)materialised
    lazily on first access after a mutation.  The grounding workload appends
    in round-sized batches and then scans many times per round, so the
    amortised conversion cost is negligible next to the joins it enables.
    """

    __slots__ = (
        "predicate",
        "facts",
        "_subjects",
        "_objects",
        "_begins",
        "_ends",
        "_rounds",
        "_columns",
        "_materialized",
        "tags",
        "_tags_array",
        "_ranks",
    )

    def __init__(self, predicate: IRI) -> None:
        self.predicate = predicate
        #: Row-aligned fact objects (for recovering matches from row indices).
        self.facts: list[TemporalFact] = []
        self._subjects: list[int] = []
        self._objects: list[int] = []
        self._begins: list[int] = []
        self._ends: list[int] = []
        self._rounds: list[int] = []
        self._columns: Optional[dict[str, np.ndarray]] = None
        self._materialized = 0
        #: Optional row-aligned integer tags (the vectorized grounding engine
        #: stores each row's ground-atom index here).
        self.tags: list[int] = []
        self._tags_array: Optional[np.ndarray] = None
        self._ranks: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.facts)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append(self, fact: TemporalFact, subject_id: int, object_id: int, round_number: int) -> int:
        """Stage one row; returns its row index.

        Appends only touch the staging lists; the numpy columns are rebuilt
        lazily by :meth:`columns` once the next scan notices new rows, so a
        round's worth of appends costs one materialisation, not one each.
        """
        row = len(self.facts)
        self.facts.append(fact)
        self._subjects.append(subject_id)
        self._objects.append(object_id)
        self._begins.append(fact.interval.start)
        self._ends.append(fact.interval.end)
        self._rounds.append(round_number)
        return row

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #
    def columns(self) -> dict[str, np.ndarray]:
        """The materialised ``int64`` columns (subject/object/begin/end/round)."""
        if self._columns is None or self._materialized != len(self.facts):
            self._columns = {
                "subject": np.asarray(self._subjects, dtype=np.int64),
                "object": np.asarray(self._objects, dtype=np.int64),
                "begin": np.asarray(self._begins, dtype=np.int64),
                "end": np.asarray(self._ends, dtype=np.int64),
                "round": np.asarray(self._rounds, dtype=np.int64),
            }
            self._materialized = len(self.facts)
        return self._columns

    def column(self, name: str) -> np.ndarray:
        return self.columns()[name]

    def tags_array(self) -> np.ndarray:
        """The row tags as an ``int64`` array (lazily rebuilt after appends)."""
        if self._tags_array is None or len(self._tags_array) != len(self.tags):
            self._tags_array = np.asarray(self.tags, dtype=np.int64)
        return self._tags_array

    def rank_array(self) -> np.ndarray:
        """Per-row rank in the block's fact sort-key order.

        Comparing two rows by rank is equivalent to comparing their facts'
        lexicographic :meth:`~repro.kg.triple.TemporalFact.sort_key` (keys
        are unique within a block), which lets callers order whole match
        sets numerically instead of comparing nested key tuples.
        """
        size = len(self.facts)
        if self._ranks is None or len(self._ranks) != size:
            order = sorted(range(size), key=self.facts.__getitem__)
            ranks = np.empty(size, dtype=np.int64)
            ranks[np.asarray(order, dtype=np.int64)] = np.arange(size, dtype=np.int64)
            self._ranks = ranks
        return self._ranks


class ColumnarFactStore:
    """Interned, per-relation columnar view of a set of temporal facts.

    Statements are deduplicated by statement key exactly like
    :class:`~repro.kg.graph.TemporalKnowledgeGraph` does (re-adding an
    existing statement is a no-op here — the grounder only appends facts it
    has already admitted into its working graph).
    """

    def __init__(self, facts: Iterable[TemporalFact] = (), round_number: int = 0) -> None:
        self.entities = TermInterner()
        self.predicates = TermInterner()
        self._blocks: dict[int, RelationBlock] = {}
        self._keys: set[tuple] = set()
        self.bulk_add(facts, round_number=round_number)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, fact: TemporalFact) -> bool:
        return fact.statement_key in self._keys

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, fact: TemporalFact, round_number: int = 0, tag: Optional[int] = None) -> bool:
        """Add ``fact`` labelled with the round it was derived in.

        Returns True when the statement was new, False when its key was
        already stored (the row — including any earlier tag — is left
        untouched in that case).  ``tag`` appends to the row's block tags;
        callers maintaining tags must pass one on every add that can create
        a row, or the tag column falls out of alignment.
        """
        key = fact.statement_key
        if key in self._keys:
            return False
        self._keys.add(key)
        predicate_id = self.predicates.intern(fact.predicate)
        block = self._blocks.get(predicate_id)
        if block is None:
            block = RelationBlock(fact.predicate)
            self._blocks[predicate_id] = block
        block.append(
            fact,
            self.entities.intern(fact.subject),
            self.entities.intern(fact.object),
            round_number,
        )
        if tag is not None:
            block.tags.append(tag)
        return True

    def bulk_add(self, facts: Iterable[TemporalFact], round_number: int = 0) -> int:
        """Batch variant of :meth:`add` with the interning loop inlined.

        Loading the evidence graph is a fixed per-ground() cost of the
        vectorized engine, so this path trades the tidy :meth:`add`
        delegation for local-variable access to the interner and block
        internals (roughly halving the per-fact overhead).
        """
        keys = self._keys
        entity_ids, entity_terms = self.entities._ids, self.entities._terms
        predicate_ids, predicate_terms = self.predicates._ids, self.predicates._terms
        blocks = self._blocks
        added = 0
        for fact in facts:
            key = fact.statement_key
            if key in keys:
                continue
            keys.add(key)
            predicate = fact.predicate
            predicate_id = predicate_ids.get(predicate)
            if predicate_id is None:
                predicate_id = len(predicate_terms)
                predicate_ids[predicate] = predicate_id
                predicate_terms.append(predicate)
            block = blocks.get(predicate_id)
            if block is None:
                block = RelationBlock(predicate)
                blocks[predicate_id] = block
            subject = fact.subject
            subject_id = entity_ids.get(subject)
            if subject_id is None:
                subject_id = len(entity_terms)
                entity_ids[subject] = subject_id
                entity_terms.append(subject)
            obj = fact.object
            object_id = entity_ids.get(obj)
            if object_id is None:
                object_id = len(entity_terms)
                entity_ids[obj] = object_id
                entity_terms.append(obj)
            interval = fact.interval
            block.facts.append(fact)
            block._subjects.append(subject_id)
            block._objects.append(object_id)
            block._begins.append(interval.start)
            block._ends.append(interval.end)
            block._rounds.append(round_number)
            added += 1
        return added

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def block_for(self, predicate: IRI) -> Optional[RelationBlock]:
        """The relation block of ``predicate``, or ``None`` when unseen."""
        predicate_id = self.predicates.lookup(predicate)
        if predicate_id is None:
            return None
        return self._blocks.get(predicate_id)

    def blocks(self) -> Iterator[RelationBlock]:
        """All relation blocks (arbitrary but deterministic insertion order)."""
        return iter(self._blocks.values())

    def iter_facts(self) -> Iterator[TemporalFact]:
        for block in self._blocks.values():
            yield from block.facts


# --------------------------------------------------------------------------- #
# Vectorized join primitives
# --------------------------------------------------------------------------- #
def merge_join(
    left_keys: np.ndarray, right_keys: np.ndarray, right_order: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``left_keys[i] == right_keys[j]``.

    The classic sorted-array join: sort the right side once, then locate each
    left key's run of equal right keys with two ``searchsorted`` probes and
    expand the runs with ``repeat``.  Pairs come back grouped by left index
    (each left index's matches in right sort order), which is all the callers
    need — they re-sort final matches anyway.

    ``right_order`` may pass a precomputed stable argsort of ``right_keys``.
    """
    if right_order is None:
        right_order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[right_order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    left_index = np.repeat(np.arange(len(left_keys)), counts)
    total = int(counts.sum())
    if total == 0:
        return left_index, np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    positions = np.arange(total) - np.repeat(ends - counts, counts) + np.repeat(lo, counts)
    return left_index, right_order[positions]


_OVERFLOW_LIMIT = 1 << 60


def composite_keys(
    left_columns: list[np.ndarray], right_columns: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Fold multi-column join keys into one consistent ``int64`` key per side.

    Columns are folded positionally (mixed-radix over the observed value
    range of each column across *both* sides, so equal tuples encode to equal
    scalars).  When the running radix would overflow ``int64``, the partial
    keys are re-factorised through ``np.unique`` and folding continues on the
    dense codes.
    """
    if len(left_columns) == 1:
        return left_columns[0], right_columns[0]
    left = np.zeros(len(left_columns[0]), dtype=np.int64)
    right = np.zeros(len(right_columns[0]), dtype=np.int64)
    radix_so_far = 1
    for left_col, right_col in zip(left_columns, right_columns):
        low = int(
            min(
                left_col.min() if len(left_col) else 0,
                right_col.min() if len(right_col) else 0,
            )
        )
        high = int(
            max(
                left_col.max() if len(left_col) else 0,
                right_col.max() if len(right_col) else 0,
            )
        )
        radix = high - low + 1
        if radix_so_far * radix >= _OVERFLOW_LIMIT:
            # Compress the partial keys to dense codes before folding further.
            merged = np.concatenate([left, right])
            _, codes = np.unique(merged, return_inverse=True)
            split = len(left)
            left = codes[:split].astype(np.int64)
            right = codes[split:].astype(np.int64)
            radix_so_far = len(merged) + 1
        if radix_so_far * radix >= _OVERFLOW_LIMIT:
            # The column's own value range is enormous; dense-code it too so
            # the fold stays within int64 (distinct values ≤ row count).
            merged_column = np.concatenate([left_col.astype(np.int64), right_col.astype(np.int64)])
            _, column_codes = np.unique(merged_column, return_inverse=True)
            split = len(left_col)
            left_col = column_codes[:split].astype(np.int64)
            right_col = column_codes[split:].astype(np.int64)
            low = 0
            radix = len(merged_column) + 1
        left = left * radix + (left_col.astype(np.int64) - low)
        right = right * radix + (right_col.astype(np.int64) - low)
        radix_so_far = radix_so_far * radix
    return left, right
