"""Well-formedness validation for UTKGs.

Checks structural properties that should hold *before* running conflict
resolution: confidences in range, intervals within the declared time domain,
functional predicates declared by the caller, duplicate statements, and
suspiciously long validity intervals.  Violations are reported, never fixed
silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..temporal import TimeDomain
from .graph import TemporalKnowledgeGraph
from .triple import TemporalFact


class Severity(str, Enum):
    """How serious a validation finding is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """A single finding from graph validation."""

    severity: Severity
    code: str
    message: str
    fact: TemporalFact | None = None

    def __str__(self) -> str:
        suffix = f" — {self.fact}" if self.fact is not None else ""
        return f"[{self.severity.value}] {self.code}: {self.message}{suffix}"


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """All findings for one graph."""

    graph_name: str
    issues: tuple[ValidationIssue, ...]

    @property
    def errors(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return not self.errors

    def __len__(self) -> int:
        return len(self.issues)


def validate_graph(
    graph: TemporalKnowledgeGraph,
    domain: TimeDomain | None = None,
    functional_predicates: Iterable[str] = (),
    max_duration: int | None = None,
) -> ValidationReport:
    """Validate ``graph`` and return a report of findings.

    Parameters
    ----------
    domain:
        Optional time domain every fact interval must fall inside.
    functional_predicates:
        Predicates expected to have at most one object per subject at any
        time point (e.g. ``birthDate``).  Overlapping differing values are
        flagged as warnings — actual resolution is TeCoRe's job, not the
        validator's.
    max_duration:
        When given, intervals longer than this many time points are flagged
        (typical extraction-error pattern: a career spanning two centuries).
    """
    issues: list[ValidationIssue] = []
    domain = domain or graph.domain

    for fact in graph:
        if domain is not None and (
            fact.interval.start not in domain or fact.interval.end not in domain
        ):
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "interval-outside-domain",
                    f"interval {fact.interval} outside [{domain.start},{domain.end}]",
                    fact,
                )
            )
        if max_duration is not None and fact.interval.duration > max_duration:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "interval-too-long",
                    f"validity spans {fact.interval.duration} time points (> {max_duration})",
                    fact,
                )
            )
        if fact.confidence < 0.05:
            issues.append(
                ValidationIssue(
                    Severity.INFO,
                    "very-low-confidence",
                    f"confidence {fact.confidence:.3f} is below 0.05",
                    fact,
                )
            )

    for predicate in functional_predicates:
        facts = graph.by_predicate(predicate)
        by_subject: dict = {}
        for fact in facts:
            by_subject.setdefault(fact.subject, []).append(fact)
        for subject, subject_facts in by_subject.items():
            for i, first in enumerate(subject_facts):
                for second in subject_facts[i + 1:]:
                    if first.object != second.object and first.interval.overlaps(second.interval):
                        issues.append(
                            ValidationIssue(
                                Severity.WARNING,
                                "functional-predicate-clash",
                                f"{subject} has overlapping {predicate} values "
                                f"{first.object} and {second.object}",
                                first,
                            )
                        )

    return ValidationReport(graph_name=graph.name, issues=tuple(issues))
