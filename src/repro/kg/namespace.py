"""Namespace management and CURIE expansion.

Kept deliberately small: TeCoRe itself treats predicates as opaque names, but
real KGs (YAGO, Wikidata, DBpedia) use prefixed IRIs, and the IO layer
supports expanding/compacting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import InvalidTermError
from .term import IRI


@dataclass(frozen=True, slots=True)
class Namespace:
    """A namespace prefix bound to a base IRI."""

    prefix: str
    base: str

    def term(self, local_name: str) -> IRI:
        """Build the IRI ``base + local_name``."""
        return IRI(self.base + local_name)

    def __getitem__(self, local_name: str) -> IRI:
        return self.term(local_name)


@dataclass
class NamespaceManager:
    """Registry of namespace prefixes with CURIE expansion and compaction."""

    _namespaces: dict[str, Namespace] = field(default_factory=dict)

    def bind(self, prefix: str, base: str) -> Namespace:
        """Register (or overwrite) a prefix binding and return the namespace."""
        if not prefix:
            raise InvalidTermError("namespace prefix must be non-empty")
        namespace = Namespace(prefix, base)
        self._namespaces[prefix] = namespace
        return namespace

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._namespaces

    def __iter__(self) -> Iterator[Namespace]:
        return iter(self._namespaces.values())

    def expand(self, curie: str) -> IRI:
        """Expand ``prefix:local`` into a full IRI; unknown prefixes pass through."""
        if ":" in curie:
            prefix, _, local = curie.partition(":")
            namespace = self._namespaces.get(prefix)
            if namespace is not None:
                return namespace.term(local)
        return IRI(curie)

    def compact(self, iri: IRI) -> str:
        """Compact an IRI back to CURIE form when a binding matches."""
        best: tuple[int, str] | None = None
        for namespace in self._namespaces.values():
            if iri.value.startswith(namespace.base):
                candidate = f"{namespace.prefix}:{iri.value[len(namespace.base):]}"
                if best is None or len(namespace.base) > best[0]:
                    best = (len(namespace.base), candidate)
        return best[1] if best else iri.value


#: Common namespaces used by the dataset generators and examples.
WELL_KNOWN_NAMESPACES: dict[str, str] = {
    "tecore": "http://tecore.org/resource/",
    "football": "http://footballdb.com/player/",
    "wd": "http://www.wikidata.org/entity/",
    "wdt": "http://www.wikidata.org/prop/direct/",
    "yago": "http://yago-knowledge.org/resource/",
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
}


def default_namespace_manager() -> NamespaceManager:
    """A namespace manager pre-loaded with the well-known prefixes."""
    manager = NamespaceManager()
    for prefix, base in WELL_KNOWN_NAMESPACES.items():
        manager.bind(prefix, base)
    return manager
