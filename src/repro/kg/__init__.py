"""Knowledge-graph substrate: terms, temporal facts, graph store, IO, stats."""

from .columnar import ColumnarFactStore, RelationBlock, TermInterner, composite_keys, merge_join
from .graph import Pattern, TemporalKnowledgeGraph
from .namespace import Namespace, NamespaceManager, default_namespace_manager
from .stats import GraphStats, PredicateStats, graph_stats, predicate_stats
from .term import IRI, BlankNode, Literal, Term, term_key, to_subject, to_term
from .triple import CERTAIN_LOG_WEIGHT, TemporalFact, Triple, coerce_fact, make_fact
from .validation import Severity, ValidationIssue, ValidationReport, validate_graph

__all__ = [
    "CERTAIN_LOG_WEIGHT",
    "BlankNode",
    "ColumnarFactStore",
    "GraphStats",
    "IRI",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "Pattern",
    "PredicateStats",
    "RelationBlock",
    "Severity",
    "TemporalFact",
    "TemporalKnowledgeGraph",
    "Term",
    "TermInterner",
    "Triple",
    "ValidationIssue",
    "ValidationReport",
    "coerce_fact",
    "composite_keys",
    "default_namespace_manager",
    "graph_stats",
    "make_fact",
    "merge_join",
    "predicate_stats",
    "term_key",
    "to_subject",
    "to_term",
    "validate_graph",
]
