"""Descriptive statistics over a temporal knowledge graph.

Backs the statistics panel of the demo (Figure 8) and the dataset inventory
table of Section 4 (per-relation fact counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..temporal import span_of
from .graph import TemporalKnowledgeGraph


@dataclass(frozen=True, slots=True)
class PredicateStats:
    """Per-predicate summary."""

    predicate: str
    fact_count: int
    subject_count: int
    object_count: int
    mean_confidence: float
    min_year: int
    max_year: int


@dataclass(frozen=True, slots=True)
class GraphStats:
    """Whole-graph summary."""

    name: str
    fact_count: int
    entity_count: int
    predicate_count: int
    mean_confidence: float
    certain_fact_count: int
    uncertain_fact_count: int
    time_span: tuple[int, int] | None
    per_predicate: tuple[PredicateStats, ...] = field(default_factory=tuple)

    def as_rows(self) -> list[dict[str, object]]:
        """Tabular per-predicate rows (one dict per predicate), for reports."""
        return [
            {
                "predicate": stats.predicate,
                "facts": stats.fact_count,
                "subjects": stats.subject_count,
                "objects": stats.object_count,
                "mean_confidence": round(stats.mean_confidence, 3),
                "span": f"[{stats.min_year},{stats.max_year}]",
            }
            for stats in self.per_predicate
        ]


def predicate_stats(graph: TemporalKnowledgeGraph, predicate: str) -> PredicateStats:
    """Summary statistics for one predicate of ``graph``."""
    facts = graph.by_predicate(predicate)
    subjects = {fact.subject for fact in facts}
    objects = {fact.object for fact in facts}
    confidences = [fact.confidence for fact in facts]
    span = span_of(fact.interval for fact in facts)
    return PredicateStats(
        predicate=predicate,
        fact_count=len(facts),
        subject_count=len(subjects),
        object_count=len(objects),
        mean_confidence=sum(confidences) / len(confidences) if confidences else 0.0,
        min_year=span.start if span else 0,
        max_year=span.end if span else 0,
    )


def graph_stats(graph: TemporalKnowledgeGraph) -> GraphStats:
    """Compute the whole-graph summary used by reports and benchmarks."""
    facts = graph.facts()
    confidences = [fact.confidence for fact in facts]
    span = span_of(fact.interval for fact in facts)
    per_predicate = tuple(
        predicate_stats(graph, predicate.value) for predicate in graph.predicates()
    )
    certain = sum(1 for fact in facts if fact.is_certain)
    return GraphStats(
        name=graph.name,
        fact_count=len(facts),
        entity_count=len(graph.entities()),
        predicate_count=len(graph.predicates()),
        mean_confidence=sum(confidences) / len(confidences) if confidences else 0.0,
        certain_fact_count=certain,
        uncertain_fact_count=len(facts) - certain,
        time_span=(span.start, span.end) if span else None,
        per_predicate=per_predicate,
    )
