"""RDF-style terms: IRIs, literals and blank nodes.

TeCoRe represents UTKGs as sets of RDF triples extended with a temporal
element and a confidence value.  With no external RDF stack available, this
module provides the small, immutable term model the rest of the library
builds on.  Terms are value objects: equal by content, hashable, and ordered
deterministically so grounding and reports are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..errors import InvalidTermError


@dataclass(frozen=True, order=True, slots=True)
class IRI:
    """An internationalised resource identifier (or any opaque entity name).

    The library accepts both full IRIs (``http://example.org/ClaudioRanieri``)
    and short local names (``ClaudioRanieri``); no resolution is performed.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise InvalidTermError("IRI value must be a non-empty string")
        if any(ch.isspace() for ch in self.value):
            raise InvalidTermError(f"IRI value may not contain whitespace: {self.value!r}")

    @property
    def local_name(self) -> str:
        """The fragment / last path segment, used for display."""
        for sep in ("#", "/", ":"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True, slots=True)
class Literal:
    """A literal value with an optional datatype tag.

    Only the lexical form takes part in identity; the datatype is a plain
    string label (``"integer"``, ``"string"``, ``"gYear"`` ...).
    """

    value: str
    datatype: str = field(default="string")

    def __post_init__(self) -> None:
        if not isinstance(self.value, str):
            raise InvalidTermError("literal lexical form must be a string")

    @classmethod
    def integer(cls, value: int) -> "Literal":
        return cls(str(value), datatype="integer")

    @classmethod
    def year(cls, value: int) -> "Literal":
        return cls(str(value), datatype="gYear")

    def as_int(self) -> int:
        """Interpret the lexical form as an integer (raises ValueError otherwise)."""
        return int(self.value)

    def __str__(self) -> str:
        return f'"{self.value}"' if self.datatype == "string" else self.value


@dataclass(frozen=True, order=True, slots=True)
class BlankNode:
    """An anonymous node, identified by a local label."""

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise InvalidTermError("blank node label must be non-empty")

    def __str__(self) -> str:
        return f"_:{self.label}"


#: Any RDF term usable in subject/object position.
Term = Union[IRI, Literal, BlankNode]

#: Terms allowed in subject position (RDF does not allow literal subjects).
SubjectTerm = Union[IRI, BlankNode]


def to_term(value: Union[Term, str, int]) -> Term:
    """Coerce a convenient Python value into a term.

    * existing terms pass through unchanged;
    * ``int`` becomes an integer :class:`Literal`;
    * strings beginning with ``_:`` become blank nodes;
    * strings wrapped in double quotes — and strings containing whitespace,
      which cannot be IRIs — become string literals;
    * every other string becomes an :class:`IRI` (entity name).
    """
    if isinstance(value, (IRI, Literal, BlankNode)):
        return value
    if isinstance(value, bool):
        raise InvalidTermError("booleans are not valid graph terms")
    if isinstance(value, int):
        return Literal.integer(value)
    if isinstance(value, str):
        if value.startswith("_:"):
            return BlankNode(value[2:])
        if len(value) >= 2 and value.startswith('"') and value.endswith('"'):
            return Literal(value[1:-1])
        if any(ch.isspace() for ch in value):
            return Literal(value)
        return IRI(value)
    raise InvalidTermError(f"cannot convert {value!r} to a graph term")


def to_subject(value: Union[SubjectTerm, str]) -> SubjectTerm:
    """Coerce to a term valid in subject position."""
    term = to_term(value)
    if isinstance(term, Literal):
        raise InvalidTermError(f"literals may not appear in subject position: {term}")
    return term


def term_key(term: Term) -> tuple[int, str]:
    """Total order key across heterogeneous term types (IRIs < literals < bnodes)."""
    if isinstance(term, IRI):
        return (0, term.value)
    if isinstance(term, Literal):
        return (1, f"{term.datatype}:{term.value}")
    return (2, term.label)
