"""The uncertain temporal knowledge graph (UTKG) store.

An in-memory, indexed store of :class:`~repro.kg.triple.TemporalFact` values.
It plays the role rdflib / MySQL / H2 play in the original TeCoRe stack:
holding evidence facts, answering pattern queries during grounding, and
producing the conflict-free subset after MAP inference.

Indexes maintained:

* by subject, by predicate, by object (for pattern matching);
* by (subject, predicate) and (predicate, object) — the hot paths of the
  grounding engine;
* insertion order (for deterministic iteration and reporting);
* an insertion *tick* per statement, so the semi-naive grounding engine can
  join against the delta of facts added since a :meth:`TemporalKnowledgeGraph.mark`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Union

from ..errors import InvalidFactError
from ..temporal import TimeDomain, TimeInterval, coalesce_weighted
from .term import IRI, SubjectTerm, Term, term_key
from .triple import FactLike, TemporalFact, coerce_fact


@dataclass(frozen=True, slots=True)
class Pattern:
    """A triple pattern; ``None`` components act as wildcards."""

    subject: Optional[SubjectTerm] = None
    predicate: Optional[IRI] = None
    object: Optional[Term] = None

    def matches(self, fact: TemporalFact) -> bool:
        if self.subject is not None and fact.subject != self.subject:
            return False
        if self.predicate is not None and fact.predicate != self.predicate:
            return False
        if self.object is not None and fact.object != self.object:
            return False
        return True


class TemporalKnowledgeGraph:
    """An indexed collection of uncertain temporal facts.

    The graph stores *statements*: two facts that differ only in confidence
    are the same statement, and adding the second replaces the first keeping
    the higher confidence (the standard behaviour when merging repeated OIE
    extractions).

    Examples
    --------
    >>> g = TemporalKnowledgeGraph(name="demo")
    >>> _ = g.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
    >>> len(g)
    1
    """

    def __init__(
        self,
        facts: Iterable[FactLike] = (),
        name: str = "utkg",
        domain: TimeDomain | None = None,
    ) -> None:
        self.name = name
        self.domain = domain
        self._facts: dict[tuple, TemporalFact] = {}
        self._order: list[tuple] = []
        self._by_subject: dict[SubjectTerm, set[tuple]] = defaultdict(set)
        self._by_predicate: dict[IRI, set[tuple]] = defaultdict(set)
        self._by_object: dict[Term, set[tuple]] = defaultdict(set)
        self._by_subject_predicate: dict[tuple[SubjectTerm, IRI], set[tuple]] = defaultdict(set)
        self._by_predicate_object: dict[tuple[IRI, Term], set[tuple]] = defaultdict(set)
        # Monotonic insertion tick per statement key; never reused after a
        # remove, so a tick bound taken via mark() stays a valid delta cursor.
        self._added_at: dict[tuple, int] = {}
        self._tick = 0
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, fact: FactLike) -> TemporalFact:
        """Add a fact (or fact-like tuple); returns the stored fact.

        Re-adding an existing statement keeps the maximum confidence seen.
        """
        item = coerce_fact(fact)
        if self.domain is not None:
            if item.interval.start not in self.domain or item.interval.end not in self.domain:
                raise InvalidFactError(
                    f"fact interval {item.interval} outside time domain "
                    f"[{self.domain.start}, {self.domain.end}]"
                )
        key = item.statement_key
        existing = self._facts.get(key)
        if existing is not None:
            if item.confidence > existing.confidence:
                self._facts[key] = item
            return self._facts[key]
        self._facts[key] = item
        self._order.append(key)
        self._by_subject[item.subject].add(key)
        self._by_predicate[item.predicate].add(key)
        self._by_object[item.object].add(key)
        self._by_subject_predicate[(item.subject, item.predicate)].add(key)
        self._by_predicate_object[(item.predicate, item.object)].add(key)
        self._added_at[key] = self._tick
        self._tick += 1
        return item

    def add_all(self, facts: Iterable[FactLike]) -> int:
        """Add many facts; returns the number of *new* statements stored."""
        before = len(self._facts)
        for fact in facts:
            self.add(fact)
        return len(self._facts) - before

    def remove(self, fact: FactLike) -> bool:
        """Remove a statement; returns True when it was present."""
        item = coerce_fact(fact)
        key = item.statement_key
        stored = self._facts.pop(key, None)
        if stored is None:
            return False
        self._order.remove(key)
        self._by_subject[stored.subject].discard(key)
        self._by_predicate[stored.predicate].discard(key)
        self._by_object[stored.object].discard(key)
        self._by_subject_predicate[(stored.subject, stored.predicate)].discard(key)
        self._by_predicate_object[(stored.predicate, stored.object)].discard(key)
        self._added_at.pop(key, None)
        return True

    def discard_all(self, facts: Iterable[FactLike]) -> int:
        """Remove many statements; returns how many were actually present."""
        return sum(1 for fact in facts if self.remove(fact))

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[TemporalFact]:
        return (self._facts[key] for key in self._order)

    def __contains__(self, fact: object) -> bool:
        if isinstance(fact, TemporalFact):
            return fact.statement_key in self._facts
        if isinstance(fact, tuple):
            try:
                return coerce_fact(fact).statement_key in self._facts
            except InvalidFactError:
                return False
        return False

    def facts(self) -> list[TemporalFact]:
        """All facts in insertion order."""
        return list(self)

    def find(
        self,
        subject: Optional[Union[SubjectTerm, str]] = None,
        predicate: Optional[Union[IRI, str]] = None,
        obj: Optional[Union[Term, str, int]] = None,
        overlapping: Optional[TimeInterval] = None,
    ) -> list[TemporalFact]:
        """Pattern query with optional temporal-overlap filter.

        Unspecified components are wildcards.  The most selective available
        index is consulted first.
        """
        from .term import to_subject, to_term  # local import to avoid cycle noise

        subject_term = to_subject(subject) if subject is not None else None
        predicate_term = predicate if isinstance(predicate, IRI) else (
            IRI(predicate) if predicate is not None else None
        )
        object_term = to_term(obj) if obj is not None else None

        keys = self._candidate_keys(subject_term, predicate_term, object_term)
        pattern = Pattern(subject_term, predicate_term, object_term)
        result = []
        for key in keys:
            fact = self._facts[key]
            if not pattern.matches(fact):
                continue
            if overlapping is not None and not fact.interval.overlaps(overlapping):
                continue
            result.append(fact)
        result.sort(key=TemporalFact.sort_key)
        return result

    def _candidate_keys(
        self,
        subject: Optional[SubjectTerm],
        predicate: Optional[IRI],
        obj: Optional[Term],
    ) -> Iterable[tuple]:
        # Callers must not mutate the graph while consuming the result: the
        # most selective index set is returned without a defensive copy
        # (find() materialises immediately; iter_matching documents this).
        if subject is not None and predicate is not None:
            return self._by_subject_predicate.get((subject, predicate), ())
        if predicate is not None and obj is not None:
            return self._by_predicate_object.get((predicate, obj), ())
        candidates: list[set[tuple]] = []
        if subject is not None:
            candidates.append(self._by_subject.get(subject, set()))
        if predicate is not None:
            candidates.append(self._by_predicate.get(predicate, set()))
        if obj is not None:
            candidates.append(self._by_object.get(obj, set()))
        if not candidates:
            return self._order
        return min(candidates, key=len)

    # ------------------------------------------------------------------ #
    # Delta views (semi-naive grounding support)
    # ------------------------------------------------------------------ #
    def mark(self) -> int:
        """Current insertion tick; pass to :meth:`iter_matching` as a delta bound.

        Facts added after ``mark()`` was taken satisfy ``since=mark``; facts
        already present satisfy ``before=mark``.
        """
        return self._tick

    def added_at(self, fact: FactLike) -> Optional[int]:
        """Insertion tick of a stored statement, or ``None`` when absent."""
        return self._added_at.get(coerce_fact(fact).statement_key)

    def iter_matching(
        self,
        subject: Optional[SubjectTerm] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Term] = None,
        since: Optional[int] = None,
        before: Optional[int] = None,
    ) -> Iterator[TemporalFact]:
        """Raw indexed pattern scan for the grounding engine.

        Unlike :meth:`find` this performs no term coercion and no sorting —
        facts come back in index (hash) order, so callers needing determinism
        must order the results themselves.  The graph must not be mutated
        while the generator is being consumed (it iterates the live index).
        ``since`` (inclusive) and ``before`` (exclusive) bound the insertion
        tick, giving the semi-naive grounder its delta / pre-delta views for
        free.
        """
        keys = self._candidate_keys(subject, predicate, obj)
        facts = self._facts
        if since is not None or before is not None:
            added_at = self._added_at
            keys = [
                key
                for key in keys
                if (since is None or added_at[key] >= since)
                and (before is None or added_at[key] < before)
            ]
        for key in keys:
            fact = facts[key]
            if subject is not None and fact.subject != subject:
                continue
            if predicate is not None and fact.predicate != predicate:
                continue
            if obj is not None and fact.object != obj:
                continue
            yield fact

    def by_predicate(self, predicate: Union[IRI, str]) -> list[TemporalFact]:
        """All facts with the given predicate."""
        return self.find(predicate=predicate)

    def subjects(self) -> list[SubjectTerm]:
        """Distinct subjects, deterministically ordered."""
        return sorted((s for s, keys in self._by_subject.items() if keys), key=term_key)

    def predicates(self) -> list[IRI]:
        """Distinct predicates, deterministically ordered."""
        return sorted((p for p, keys in self._by_predicate.items() if keys), key=lambda p: p.value)

    def objects(self) -> list[Term]:
        """Distinct objects, deterministically ordered."""
        return sorted((o for o, keys in self._by_object.items() if keys), key=term_key)

    def entities(self) -> list[Term]:
        """Distinct subjects and IRI objects (the constants of the Herbrand base)."""
        seen: set[tuple[int, str]] = set()
        result: list[Term] = []
        for term in list(self.subjects()) + [o for o in self.objects() if isinstance(o, IRI)]:
            key = term_key(term)
            if key not in seen:
                seen.add(key)
                result.append(term)
        result.sort(key=term_key)
        return result

    # ------------------------------------------------------------------ #
    # Whole-graph operations
    # ------------------------------------------------------------------ #
    def content_key(self) -> tuple:
        """Order-sensitive content identity of the graph.

        Two graphs with equal keys hold the same name and the same
        statements with the same confidences in the same insertion order —
        grounding (and therefore a full resolution) is a pure function of
        exactly that.  The serving tier coalesces content-identical requests
        on this key, and the verification harness uses it as the replay
        state digest.
        """
        return (
            self.name,
            tuple((fact.statement_key, fact.confidence) for fact in self),
        )

    def copy(self, name: str | None = None) -> "TemporalKnowledgeGraph":
        """Shallow copy of the graph (facts are immutable, so this is safe).

        Clones the internal indexes directly instead of re-validating and
        re-indexing every fact; insertion ticks are preserved, so delta
        cursors taken on the copy behave as on the original.
        """
        clone = TemporalKnowledgeGraph(name=name or self.name, domain=self.domain)
        clone._facts = dict(self._facts)
        clone._order = list(self._order)
        clone._by_subject = defaultdict(
            set, ((k, set(v)) for k, v in self._by_subject.items() if v)
        )
        clone._by_predicate = defaultdict(
            set, ((k, set(v)) for k, v in self._by_predicate.items() if v)
        )
        clone._by_object = defaultdict(set, ((k, set(v)) for k, v in self._by_object.items() if v))
        clone._by_subject_predicate = defaultdict(
            set, ((k, set(v)) for k, v in self._by_subject_predicate.items() if v)
        )
        clone._by_predicate_object = defaultdict(
            set, ((k, set(v)) for k, v in self._by_predicate_object.items() if v)
        )
        clone._added_at = dict(self._added_at)
        clone._tick = self._tick
        return clone

    def without_statements(
        self, keys: Iterable[tuple], name: str | None = None
    ) -> "TemporalKnowledgeGraph":
        """Clone of the graph minus the given statement keys (bulk removal).

        Index-level: clones the indexes once and discards the dropped keys
        from their buckets, so the cost is ``O(n + d)`` rather than the
        ``O(n · d)`` of repeated :meth:`remove` calls (which each rebuild the
        insertion-order list).  Unknown keys are ignored; insertion ticks of
        surviving facts are preserved, so delta cursors stay valid.  This is
        the hot path of incremental result assembly (the consistent subset
        after a MAP repair).
        """
        drop = {key for key in keys if key in self._facts}
        clone = self.copy(name=name or f"{self.name}-without")
        if not drop:
            return clone
        for key in drop:
            fact = clone._facts.pop(key)
            clone._by_subject[fact.subject].discard(key)
            clone._by_predicate[fact.predicate].discard(key)
            clone._by_object[fact.object].discard(key)
            clone._by_subject_predicate[(fact.subject, fact.predicate)].discard(key)
            clone._by_predicate_object[(fact.predicate, fact.object)].discard(key)
            clone._added_at.pop(key, None)
        clone._order = [key for key in clone._order if key not in drop]
        return clone

    def filter(
        self, keep: Callable[[TemporalFact], bool], name: str | None = None
    ) -> "TemporalKnowledgeGraph":
        """New graph containing only facts for which ``keep`` returns True."""
        return TemporalKnowledgeGraph(
            (fact for fact in self if keep(fact)),
            name=name or f"{self.name}-filtered",
            domain=self.domain,
        )

    def above_confidence(self, threshold: float) -> "TemporalKnowledgeGraph":
        """Facts whose confidence is at least ``threshold`` (the UI's slider)."""
        return self.filter(
            lambda fact: fact.confidence >= threshold, name=f"{self.name}>={threshold}"
        )

    def merge(
        self, other: "TemporalKnowledgeGraph", name: str | None = None
    ) -> "TemporalKnowledgeGraph":
        """Union of two graphs (max confidence on shared statements)."""
        merged = self.copy(name=name or f"{self.name}+{other.name}")
        merged.add_all(other)
        return merged

    def difference(self, other: "TemporalKnowledgeGraph") -> list[TemporalFact]:
        """Facts present here but absent from ``other`` (by statement key)."""
        other_keys = {fact.statement_key for fact in other}
        return [fact for fact in self if fact.statement_key not in other_keys]

    def coalesced(self, name: str | None = None) -> "TemporalKnowledgeGraph":
        """Graph with value-equivalent overlapping/adjacent facts merged."""
        grouped: dict[tuple, list[tuple[TimeInterval, float]]] = defaultdict(list)
        triples: dict[tuple, TemporalFact] = {}
        for fact in self:
            key = (term_key(fact.subject), fact.predicate.value, term_key(fact.object))
            grouped[key].append((fact.interval, fact.confidence))
            triples[key] = fact
        result = TemporalKnowledgeGraph(name=name or f"{self.name}-coalesced", domain=self.domain)
        for key, items in grouped.items():
            template = triples[key]
            for interval, confidence in coalesce_weighted(items):
                result.add(
                    TemporalFact(
                        subject=template.subject,
                        predicate=template.predicate,
                        object=template.object,
                        interval=interval,
                        confidence=confidence,
                    )
                )
        return result

    def spanning_domain(self, granularity: str = "year") -> TimeDomain:
        """Smallest time domain covering every fact's interval."""
        points: list[int] = []
        for fact in self:
            points.append(fact.interval.start)
            points.append(fact.interval.end)
        return TimeDomain.spanning(points, granularity=granularity)

    def total_confidence(self) -> float:
        """Sum of confidences over all facts (used by quality metrics)."""
        return sum(fact.confidence for fact in self)

    def __repr__(self) -> str:
        return f"TemporalKnowledgeGraph(name={self.name!r}, facts={len(self)})"
