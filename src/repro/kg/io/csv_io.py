"""CSV/TSV import and export for temporal facts.

Accepts the column layout typically produced by temporal information
extraction pipelines (and by the FootballDB crawl the paper describes):

``subject, predicate, object, start, end, confidence``

Column names are matched case-insensitively; ``valid_from``/``valid_to`` are
accepted as aliases for ``start``/``end``, and a missing confidence column
defaults every fact to 1.0.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Mapping, Union

from ...errors import ParseError
from ...temporal import TimeInterval
from ..graph import TemporalKnowledgeGraph
from ..triple import TemporalFact, make_fact

_START_ALIASES = ("start", "valid_from", "from", "begin")
_END_ALIASES = ("end", "valid_to", "to", "stop")
_CONFIDENCE_ALIASES = ("confidence", "weight", "score", "prob")


def _pick(row: Mapping[str, str], names: Iterable[str]) -> str | None:
    for name in names:
        if name in row and row[name] not in (None, ""):
            return row[name]
    return None


def _row_to_fact(row: Mapping[str, str], line_number: int, source: str | None) -> TemporalFact:
    normalised = {key.strip().lower(): (value or "").strip() for key, value in row.items() if key}
    missing = [
        column for column in ("subject", "predicate", "object") if not normalised.get(column)
    ]
    if missing:
        raise ParseError(f"missing column(s) {missing}", line=line_number, source=source)
    start_text = _pick(normalised, _START_ALIASES)
    end_text = _pick(normalised, _END_ALIASES)
    if start_text is None:
        raise ParseError("missing start column", line=line_number, source=source)
    try:
        start = int(float(start_text))
        end = int(float(end_text)) if end_text is not None else start
    except ValueError as exc:
        raise ParseError(
            f"cannot parse interval bounds {start_text!r}/{end_text!r}",
            line=line_number,
            source=source,
        ) from exc
    confidence_text = _pick(normalised, _CONFIDENCE_ALIASES)
    try:
        confidence = float(confidence_text) if confidence_text is not None else 1.0
    except ValueError as exc:
        raise ParseError(
            f"cannot parse confidence {confidence_text!r}", line=line_number, source=source
        ) from exc
    try:
        return make_fact(
            normalised["subject"],
            normalised["predicate"],
            normalised["object"],
            TimeInterval(start, end),
            confidence,
        )
    except Exception as exc:
        raise ParseError(str(exc), line=line_number, source=source) from exc


def loads(text: str, name: str = "utkg", delimiter: str | None = None) -> TemporalKnowledgeGraph:
    """Parse CSV/TSV text into a graph (delimiter sniffed when not given)."""
    if delimiter is None:
        delimiter = "\t" if "\t" in text.splitlines()[0] else ","
    reader = csv.DictReader(io.StringIO(text), delimiter=delimiter)
    graph = TemporalKnowledgeGraph(name=name)
    for number, row in enumerate(reader, start=2):
        graph.add(_row_to_fact(row, number, name))
    return graph


def load(path: Union[str, Path], name: str | None = None) -> TemporalKnowledgeGraph:
    """Load a CSV/TSV file into a graph."""
    source = Path(path)
    return loads(source.read_text(encoding="utf-8"), name=name or source.stem)


def dumps(graph: TemporalKnowledgeGraph, delimiter: str = ",") -> str:
    """Serialise a graph to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(["subject", "predicate", "object", "start", "end", "confidence"])
    for fact in graph:
        writer.writerow(
            [
                str(fact.subject),
                str(fact.predicate),
                str(fact.object).strip('"'),
                fact.interval.start,
                fact.interval.end,
                f"{fact.confidence:g}",
            ]
        )
    return buffer.getvalue()


def dump(graph: TemporalKnowledgeGraph, path: Union[str, Path], delimiter: str = ",") -> Path:
    """Write a graph to a CSV file; returns the path written."""
    destination = Path(path)
    destination.write_text(dumps(graph, delimiter=delimiter), encoding="utf-8")
    return destination
