"""JSON import/export for temporal knowledge graphs.

A lightweight interchange format used by the examples and the CLI::

    {
      "name": "ranieri",
      "facts": [
        {"s": "CR", "p": "coach", "o": "Chelsea",
         "interval": [2000, 2004], "confidence": 0.9}
      ]
    }

The verbose keys ``subject``/``predicate``/``object`` are accepted as well.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Union

from ...errors import ParseError
from ...temporal import TimeInterval
from ..graph import TemporalKnowledgeGraph
from ..triple import TemporalFact, make_fact


def _fact_from_mapping(entry: Mapping[str, Any], index: int, source: str | None) -> TemporalFact:
    def pick(*names: str) -> Any:
        for name in names:
            if name in entry:
                return entry[name]
        return None

    subject = pick("s", "subject")
    predicate = pick("p", "predicate")
    obj = pick("o", "object")
    interval = pick("interval", "t", "time")
    confidence = pick("confidence", "w", "weight")
    if subject is None or predicate is None or obj is None or interval is None:
        raise ParseError(f"fact #{index} is missing required keys", source=source)
    if isinstance(interval, (list, tuple)) and len(interval) == 2:
        span = TimeInterval(int(interval[0]), int(interval[1]))
    elif isinstance(interval, int):
        span = TimeInterval.instant(interval)
    elif isinstance(interval, str):
        span = TimeInterval.parse(interval)
    else:
        raise ParseError(f"fact #{index} has an unparseable interval {interval!r}", source=source)
    try:
        return make_fact(
            subject, predicate, obj, span, float(confidence) if confidence is not None else 1.0
        )
    except Exception as exc:
        raise ParseError(f"fact #{index}: {exc}", source=source) from exc


def fact_from_dict(
    entry: Mapping[str, Any], index: int = 0, source: str | None = None
) -> TemporalFact:
    """Build one fact from a JSON object (the serving edit/graph codec).

    Accepts the same shapes as graph documents: short (``s``/``p``/``o``)
    or verbose keys, intervals as ``[start, end]`` pairs, instants, or
    parseable strings, and an optional confidence (default 1.0).
    """
    if not isinstance(entry, Mapping):
        raise ParseError(f"fact #{index} is not an object", source=source)
    return _fact_from_mapping(entry, index, source)


def fact_to_dict(fact: TemporalFact) -> dict[str, Any]:
    """Convert one fact into its JSON interchange object."""
    return {
        "s": str(fact.subject),
        "p": str(fact.predicate),
        "o": str(fact.object).strip('"'),
        "interval": [fact.interval.start, fact.interval.end],
        "confidence": fact.confidence,
    }


def from_dict(document: Mapping[str, Any], name: str | None = None) -> TemporalKnowledgeGraph:
    """Build a graph from a parsed JSON document."""
    graph_name = name or str(document.get("name", "utkg"))
    entries = document.get("facts", [])
    if not isinstance(entries, list):
        raise ParseError("'facts' must be a list", source=graph_name)
    graph = TemporalKnowledgeGraph(name=graph_name)
    for index, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ParseError(f"fact #{index} is not an object", source=graph_name)
        graph.add(_fact_from_mapping(entry, index, graph_name))
    return graph


def to_dict(graph: TemporalKnowledgeGraph) -> dict[str, Any]:
    """Convert a graph into a JSON-serialisable document."""
    return {
        "name": graph.name,
        "facts": [fact_to_dict(fact) for fact in graph],
    }


def loads(text: str, name: str | None = None) -> TemporalKnowledgeGraph:
    """Parse JSON text into a graph."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}", source=name) from exc
    if not isinstance(document, Mapping):
        raise ParseError("top-level JSON value must be an object", source=name)
    return from_dict(document, name=name)


def load(path: Union[str, Path], name: str | None = None) -> TemporalKnowledgeGraph:
    """Load a JSON file into a graph."""
    source = Path(path)
    return loads(source.read_text(encoding="utf-8"), name=name or source.stem)


def dumps(graph: TemporalKnowledgeGraph, indent: int = 2) -> str:
    """Serialise a graph to JSON text."""
    return json.dumps(to_dict(graph), indent=indent, sort_keys=False)


def dump(graph: TemporalKnowledgeGraph, path: Union[str, Path], indent: int = 2) -> Path:
    """Write a graph to a JSON file; returns the path written."""
    destination = Path(path)
    destination.write_text(dumps(graph, indent=indent), encoding="utf-8")
    return destination
