"""Change-stream files: scripted edit sequences for incremental resolution.

A change stream is a line-oriented text file describing fact insertions and
retractions against a base UTKG, grouped into *steps*; ``tecore watch``
replays it through a :class:`~repro.core.session.ResolutionSession`::

    # repair the Ranieri conflict, then learn a new stint
    - CR coach Chelsea [2000,2004] 0.9
    + CR coach Leicester [2015,2017] 0.95
    resolve
    + CR coach Fulham [2018,2019] 0.7

Syntax:

* ``+ <fact>`` (or ``add <fact>``) inserts a fact; ``- <fact>`` (or
  ``remove <fact>``) retracts one.  Facts use the native temporal-quad line
  format of :mod:`repro.kg.io.tqlines` (confidence optional; retraction
  ignores it, since statements are identified by key).
* ``resolve`` (case-insensitive, alone on a line) closes the current step;
  a ``resolve`` with no pending edits (leading, or consecutive) is a no-op
  and produces no step.
* ``#`` comments and blank lines are ignored.
* A trailing step without an explicit ``resolve`` is closed at end of input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Union

from ...errors import ParseError
from ..triple import TemporalFact
from .tqlines import parse_line


@dataclass(frozen=True, slots=True)
class ChangeStep:
    """One batch of edits applied (and resolved) together."""

    adds: tuple[TemporalFact, ...] = field(default_factory=tuple)
    removes: tuple[TemporalFact, ...] = field(default_factory=tuple)

    @property
    def is_empty(self) -> bool:
        return not self.adds and not self.removes

    def __len__(self) -> int:
        return len(self.adds) + len(self.removes)


def iter_change_steps(
    lines: Iterable[str], source: str | None = None
) -> Iterator[ChangeStep]:
    """Parse a change stream into :class:`ChangeStep` batches."""
    adds: list[TemporalFact] = []
    removes: list[TemporalFact] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower() == "resolve":
            # Leading or consecutive ``resolve`` lines close an *empty* step;
            # emitting it would make replays (``tecore watch``, session edit
            # replay) pay a resolution round for a no-op, so skip it.
            if adds or removes:
                yield ChangeStep(adds=tuple(adds), removes=tuple(removes))
                adds, removes = [], []
            continue
        if line.startswith("+"):
            op, rest = "add", line[1:]
        elif line.startswith("-"):
            op, rest = "remove", line[1:]
        else:
            head, _, rest = line.partition(" ")
            op = head.lower()
            if op not in ("add", "remove"):
                raise ParseError(
                    f"change-stream line must start with '+', '-', 'add', "
                    f"'remove', or 'resolve'; got {line!r}",
                    line=number,
                    source=source,
                )
        fact = parse_line(rest, line_number=number, source=source)
        if fact is None:
            raise ParseError(
                f"missing fact after {op!r}", line=number, source=source
            )
        (adds if op == "add" else removes).append(fact)
    if adds or removes:
        yield ChangeStep(adds=tuple(adds), removes=tuple(removes))


def load_change_stream(path_or_file: Union[str, Path]) -> list[ChangeStep]:
    """Load a change-stream file into a list of steps."""
    path = Path(path_or_file)
    with path.open("r", encoding="utf-8") as handle:
        return list(iter_change_steps(handle, source=str(path)))
