"""Change-stream files: scripted edit sequences for incremental resolution.

A change stream is a line-oriented text file describing fact insertions and
retractions against a base UTKG, grouped into *steps*; ``tecore watch``
replays it through a :class:`~repro.core.session.ResolutionSession`::

    # repair the Ranieri conflict, then learn a new stint
    - CR coach Chelsea [2000,2004] 0.9
    + CR coach Leicester [2015,2017] 0.95
    resolve
    + CR coach Fulham [2018,2019] 0.7

Syntax:

* ``+ <fact>`` (or ``add <fact>``) inserts a fact; ``- <fact>`` (or
  ``remove <fact>``) retracts one.  Facts use the native temporal-quad line
  format of :mod:`repro.kg.io.tqlines` (confidence optional; retraction
  ignores it, since statements are identified by key).
* ``resolve`` (case-insensitive, alone on a line) closes the current step;
  a ``resolve`` with no pending edits (leading, or consecutive) is a no-op
  and produces no step.
* ``#`` comments and blank lines are ignored.
* A trailing step without an explicit ``resolve`` is closed at end of input.

Torn tails: a writer that dies mid-append (power loss, SIGKILL) leaves a
final line without a terminating newline.  :func:`iter_change_steps` treats
an unparsable *final, unterminated* line as such a torn write — it warns
and stops instead of raising, so a recovering reader keeps every complete
step.  A bad line anywhere else is still a hard :class:`ParseError`.

Writing: :func:`append_change_step` appends one step as a single
``write`` + ``flush`` (atomic with respect to same-process readers and,
up to the torn-tail rule above, crash-tolerant), and
:func:`format_change_step` renders the textual form it writes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Union

from ...errors import ParseError
from ..triple import TemporalFact
from .tqlines import format_fact, parse_line


@dataclass(frozen=True, slots=True)
class ChangeStep:
    """One batch of edits applied (and resolved) together."""

    adds: tuple[TemporalFact, ...] = field(default_factory=tuple)
    removes: tuple[TemporalFact, ...] = field(default_factory=tuple)

    @property
    def is_empty(self) -> bool:
        return not self.adds and not self.removes

    def __len__(self) -> int:
        return len(self.adds) + len(self.removes)


def iter_change_steps(
    lines: Iterable[str],
    source: str | None = None,
    tolerate_torn_tail: bool | None = None,
) -> Iterator[ChangeStep]:
    """Parse a change stream into :class:`ChangeStep` batches.

    A *final* line that fails to parse and lacks a terminating newline is
    taken for a torn write (the producer died mid-append): it is dropped
    with a :class:`RuntimeWarning` instead of raising, and parsing stops.
    ``tolerate_torn_tail`` controls when that applies — ``None`` (the
    default) auto-detects newline-framed input (file iteration keeps the
    ``\\n`` on every complete line, so an unterminated tail is evidence of
    a torn append; ``splitlines()``-style input carries no newlines at all
    and stays strict), ``True`` forces tolerance, ``False`` forces strict
    parsing.
    """
    adds: list[TemporalFact] = []
    removes: list[TemporalFact] = []
    iterator = iter(lines)
    raw = next(iterator, None)
    number = 0
    framed = False  # has any earlier line carried its newline?
    while raw is not None:
        number += 1
        lookahead = next(iterator, None)
        tolerant = framed if tolerate_torn_tail is None else tolerate_torn_tail
        is_torn_candidate = lookahead is None and not raw.endswith("\n") and tolerant
        framed = framed or raw.endswith("\n")
        line = raw.strip()
        raw = lookahead
        if not line or line.startswith("#"):
            continue
        if line.lower() == "resolve":
            # Leading or consecutive ``resolve`` lines close an *empty* step;
            # emitting it would make replays (``tecore watch``, session edit
            # replay) pay a resolution round for a no-op, so skip it.
            if adds or removes:
                yield ChangeStep(adds=tuple(adds), removes=tuple(removes))
                adds, removes = [], []
            continue
        try:
            if line.startswith("+"):
                op, rest = "add", line[1:]
            elif line.startswith("-"):
                op, rest = "remove", line[1:]
            else:
                head, _, rest = line.partition(" ")
                op = head.lower()
                if op not in ("add", "remove"):
                    raise ParseError(
                        f"change-stream line must start with '+', '-', 'add', "
                        f"'remove', or 'resolve'; got {line!r}",
                        line=number,
                        source=source,
                    )
            fact = parse_line(rest, line_number=number, source=source)
            if fact is None:
                raise ParseError(f"missing fact after {op!r}", line=number, source=source)
        except ParseError:
            if is_torn_candidate:
                warnings.warn(
                    f"change stream {source or '<stream>'}: dropping torn "
                    f"final line {number} ({line!r}); the producer likely "
                    f"died mid-append",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise
        (adds if op == "add" else removes).append(fact)
    if adds or removes:
        yield ChangeStep(adds=tuple(adds), removes=tuple(removes))


def load_change_stream(path_or_file: Union[str, Path]) -> list[ChangeStep]:
    """Load a change-stream file into a list of steps."""
    path = Path(path_or_file)
    with path.open("r", encoding="utf-8") as handle:
        return list(iter_change_steps(handle, source=str(path)))


def format_change_step(step: ChangeStep) -> str:
    """Render one step in the change-stream text form, ``resolve``-closed."""
    lines = [f"- {format_fact(fact)}" for fact in step.removes]
    lines += [f"+ {format_fact(fact)}" for fact in step.adds]
    lines.append("resolve")
    return "\n".join(lines) + "\n"


def append_change_step(path_or_file: Union[str, Path], step: ChangeStep) -> int:
    """Append one step to a change-stream file; returns bytes written.

    The whole step is rendered first and appended with a single ``write``
    followed by ``flush``, so a reader never observes a half-step through
    the same file object and a crash can tear at most the final line —
    which :func:`iter_change_steps` tolerates.
    """
    payload = format_change_step(step)
    path = Path(path_or_file)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
    return len(payload.encode("utf-8"))
