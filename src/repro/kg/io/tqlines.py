"""Line-oriented temporal-quad serialisation (the library's native format).

One statement per line, mirroring the paper's surface notation::

    CR coach Chelsea [2000,2004] 0.9
    CR playsFor Palermo [1984,1986] 0.5
    # comments and blank lines are ignored

Terms containing whitespace can be quoted with double quotes; objects wrapped
in quotes become string literals.  The confidence column is optional and
defaults to 1.0.
"""

from __future__ import annotations

import shlex
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from ...errors import ParseError
from ...temporal import TimeInterval
from ..graph import TemporalKnowledgeGraph
from ..triple import TemporalFact, make_fact


def parse_line(
    line: str, line_number: int | None = None, source: str | None = None
) -> TemporalFact | None:
    """Parse one line into a fact; comments and blank lines return None."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        tokens = shlex.split(stripped)
    except ValueError as exc:
        raise ParseError(f"unbalanced quotes: {exc}", line=line_number, source=source) from exc
    if len(tokens) not in (4, 5):
        raise ParseError(
            f"expected 4 or 5 whitespace-separated fields, got {len(tokens)}",
            line=line_number,
            source=source,
        )
    subject, predicate, obj, interval_text = tokens[:4]
    confidence = 1.0
    if len(tokens) == 5:
        try:
            confidence = float(tokens[4])
        except ValueError as exc:
            raise ParseError(
                f"confidence {tokens[4]!r} is not a number", line=line_number, source=source
            ) from exc
    try:
        interval = TimeInterval.parse(interval_text)
    except ValueError as exc:
        raise ParseError(
            f"cannot parse interval {interval_text!r}", line=line_number, source=source
        ) from exc
    try:
        return make_fact(subject, predicate, obj, interval, confidence)
    except Exception as exc:
        raise ParseError(str(exc), line=line_number, source=source) from exc


def iter_facts(lines: Iterable[str], source: str | None = None) -> Iterator[TemporalFact]:
    """Yield facts from an iterable of lines."""
    for number, line in enumerate(lines, start=1):
        fact = parse_line(line, line_number=number, source=source)
        if fact is not None:
            yield fact


def loads(text: str, name: str = "utkg") -> TemporalKnowledgeGraph:
    """Parse a whole document into a graph."""
    graph = TemporalKnowledgeGraph(name=name)
    graph.add_all(iter_facts(text.splitlines(), source=name))
    return graph


def load(path_or_file: Union[str, Path, TextIO], name: str | None = None) -> TemporalKnowledgeGraph:
    """Load a graph from a file path or an open text file."""
    if isinstance(path_or_file, (str, Path)):
        path = Path(path_or_file)
        with path.open("r", encoding="utf-8") as handle:
            graph = TemporalKnowledgeGraph(name=name or path.stem)
            graph.add_all(iter_facts(handle, source=str(path)))
            return graph
    graph = TemporalKnowledgeGraph(name=name or "utkg")
    graph.add_all(iter_facts(path_or_file, source=name))
    return graph


def format_fact(fact: TemporalFact) -> str:
    """Serialise one fact to the line format."""
    def quote(value: str) -> str:
        return f'"{value}"' if (" " in value or not value) else value

    obj = str(fact.object)
    if not (obj.startswith('"') and obj.endswith('"')):
        obj = quote(obj)
    return (
        f"{quote(str(fact.subject))} {quote(str(fact.predicate))} {obj} "
        f"{fact.interval} {fact.confidence:g}"
    )


def dumps(graph: TemporalKnowledgeGraph) -> str:
    """Serialise a graph to the line format."""
    header = f"# utkg {graph.name}: {len(graph)} facts\n"
    return header + "\n".join(format_fact(fact) for fact in graph) + "\n"


def dump(graph: TemporalKnowledgeGraph, path: Union[str, Path]) -> Path:
    """Write a graph to ``path``; returns the path written."""
    destination = Path(path)
    destination.write_text(dumps(graph), encoding="utf-8")
    return destination
