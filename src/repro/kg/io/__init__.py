"""Serialisation formats for temporal knowledge graphs.

Three formats are supported:

* :mod:`repro.kg.io.tqlines` — the native line-oriented temporal-quad format;
* :mod:`repro.kg.io.csv_io` — CSV/TSV tables as produced by extraction pipelines;
* :mod:`repro.kg.io.json_io` — a JSON interchange document.

:func:`load_graph` / :func:`save_graph` dispatch on file extension.
:mod:`repro.kg.io.changestream` additionally parses edit-stream files
(scripted add/remove sequences) for incremental resolution.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ...errors import ParseError
from ..graph import TemporalKnowledgeGraph
from . import csv_io, json_io, tqlines
from .changestream import (
    ChangeStep,
    append_change_step,
    format_change_step,
    iter_change_steps,
    load_change_stream,
)

_LOADERS = {
    ".tq": tqlines.load,
    ".txt": tqlines.load,
    ".nq": tqlines.load,
    ".csv": csv_io.load,
    ".tsv": csv_io.load,
    ".json": json_io.load,
}

_SAVERS = {
    ".tq": tqlines.dump,
    ".txt": tqlines.dump,
    ".nq": tqlines.dump,
    ".csv": csv_io.dump,
    ".tsv": csv_io.dump,
    ".json": json_io.dump,
}


def load_graph(path: Union[str, Path], name: str | None = None) -> TemporalKnowledgeGraph:
    """Load a graph, choosing the parser from the file extension."""
    source = Path(path)
    loader = _LOADERS.get(source.suffix.lower())
    if loader is None:
        raise ParseError(f"unsupported graph format {source.suffix!r}", source=str(source))
    return loader(source, name=name)


def save_graph(graph: TemporalKnowledgeGraph, path: Union[str, Path]) -> Path:
    """Save a graph, choosing the serialiser from the file extension."""
    destination = Path(path)
    saver = _SAVERS.get(destination.suffix.lower())
    if saver is None:
        raise ParseError(
            f"unsupported graph format {destination.suffix!r}", source=str(destination)
        )
    return saver(graph, destination)


__all__ = [
    "ChangeStep",
    "append_change_step",
    "csv_io",
    "format_change_step",
    "iter_change_steps",
    "json_io",
    "load_change_stream",
    "load_graph",
    "save_graph",
    "tqlines",
]
