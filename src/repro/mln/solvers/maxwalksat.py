"""MaxWalkSAT: stochastic local search for MAP inference.

The classic weighted-satisfiability local search used by Alchemy-style MLN
systems.  It is approximate and anytime: useful as a scalable fallback and as
a baseline in the solver ablation (benchmark A2).

The implementation keeps incremental state — per-clause satisfied-literal
counts and the set of unsatisfied clauses — so a flip costs time proportional
to the flipped atom's number of clause occurrences rather than to the whole
program.

Hard clauses are handled with a large finite penalty so the search is always
well-defined; the returned solution is checked for hard feasibility and, if
necessary, repaired greedily before being returned.
"""

from __future__ import annotations

import math
import random
import time
from typing import Optional, Sequence

from ...errors import InfeasibleProgramError
from ...logic.ground import GroundProgram
from ...solvers import (
    LOCAL_SEARCH_CAPABILITIES,
    MAPSolution,
    MAPSolver,
    SolverCapabilities,
    SolverStats,
)


class _SearchState:
    """Incremental bookkeeping for one restart of the local search."""

    def __init__(
        self,
        program: GroundProgram,
        assignment: list[bool],
        hard_weight: float,
        debug: bool = False,
    ) -> None:
        self.program = program
        self.assignment = assignment
        self.hard_weight = hard_weight
        self.debug = debug
        self.weights = [
            hard_weight if clause.is_hard else float(clause.weight or 0.0)
            for clause in program.clauses
        ]
        # Clause index -> number of satisfied literals.
        self.satisfied_counts = [0] * program.num_clauses
        # Atom index -> list of (clause index, literal sign).
        self.occurrences: dict[int, list[tuple[int, bool]]] = {
            index: [] for index in range(program.num_atoms)
        }
        self.unsatisfied: set[int] = set()
        self.unsatisfied_hard: set[int] = set()
        self.penalty = 0.0
        for clause_index, clause in enumerate(program.clauses):
            count = 0
            for atom_index, positive in clause.literals:
                self.occurrences[atom_index].append((clause_index, positive))
                if assignment[atom_index] == positive:
                    count += 1
            self.satisfied_counts[clause_index] = count
            if count == 0:
                self._mark_unsatisfied(clause_index)

    def _mark_unsatisfied(self, clause_index: int) -> None:
        # Membership guard: only clauses not already tracked contribute to
        # the penalty, so a repeated call cannot double-add.
        if clause_index in self.unsatisfied:
            return
        self.unsatisfied.add(clause_index)
        if self.program.clauses[clause_index].is_hard:
            self.unsatisfied_hard.add(clause_index)
        self.penalty += self.weights[clause_index]

    def _mark_satisfied(self, clause_index: int) -> None:
        # Symmetric guard: ``discard`` tolerates absent members but the
        # unconditional subtraction did not — a second call for the same
        # clause silently corrupted the penalty.  Only subtract when the
        # clause was actually tracked as unsatisfied.
        if clause_index not in self.unsatisfied:
            return
        self.unsatisfied.remove(clause_index)
        self.unsatisfied_hard.discard(clause_index)
        self.penalty -= self.weights[clause_index]

    def check_invariant(self) -> None:
        """Assert ``penalty == sum(weights of unsatisfied)`` (debug only).

        Incremental float accumulation can drift from the exact sum, so the
        comparison is ``math.isclose`` rather than equality.
        """
        expected = sum(self.weights[index] for index in sorted(self.unsatisfied))
        if not math.isclose(self.penalty, expected, rel_tol=1e-9, abs_tol=1e-6):
            raise AssertionError(
                f"penalty bookkeeping drifted: tracked {self.penalty!r}, "
                f"recomputed {expected!r} over {len(self.unsatisfied)} unsatisfied clauses"
            )

    # ------------------------------------------------------------------ #
    def flip(self, atom_index: int) -> None:
        """Flip one atom, updating counts, the unsatisfied set and the penalty."""
        new_value = not self.assignment[atom_index]
        self.assignment[atom_index] = new_value
        for clause_index, positive in self.occurrences[atom_index]:
            was_satisfied = self.satisfied_counts[clause_index] > 0
            if new_value == positive:
                self.satisfied_counts[clause_index] += 1
            else:
                self.satisfied_counts[clause_index] -= 1
            now_satisfied = self.satisfied_counts[clause_index] > 0
            if was_satisfied and not now_satisfied:
                self._mark_unsatisfied(clause_index)
            elif not was_satisfied and now_satisfied:
                self._mark_satisfied(clause_index)
        if self.debug:
            self.check_invariant()

    def flip_delta(self, atom_index: int) -> float:
        """Penalty reduction achieved by flipping ``atom_index`` (higher is better)."""
        new_value = not self.assignment[atom_index]
        delta = 0.0
        for clause_index, positive in self.occurrences[atom_index]:
            count = self.satisfied_counts[clause_index]
            if new_value == positive:  # literal becomes satisfied
                if count == 0:
                    delta += self.weights[clause_index]
            else:  # literal becomes unsatisfied
                if count == 1:
                    delta -= self.weights[clause_index]
        return delta


class MaxWalkSATSolver(MAPSolver):
    """Weighted MaxSAT local search (WalkSAT with weights).

    Parameters
    ----------
    max_flips:
        Flips per restart.
    max_restarts:
        Independent restarts; the best state across restarts is returned.
    noise:
        Probability of a random walk move instead of a greedy move.
    hard_weight:
        Penalty used for hard clauses during the search.
    seed:
        RNG seed (runs are deterministic given the seed).
    debug:
        Re-check the penalty bookkeeping invariant after every flip
        (``penalty == sum(weights of unsatisfied)``); O(clauses) per flip,
        for tests and debugging only.
    """

    name = "maxwalksat"
    supports_warm_start = True

    def __init__(
        self,
        max_flips: int = 20_000,
        max_restarts: int = 3,
        noise: float = 0.2,
        hard_weight: float = 1_000.0,
        seed: int = 2017,
        debug: bool = False,
    ) -> None:
        self.max_flips = max_flips
        self.max_restarts = max_restarts
        self.noise = noise
        self.hard_weight = hard_weight
        self.seed = seed
        self.debug = debug

    @property
    def capabilities(self) -> SolverCapabilities:
        return LOCAL_SEARCH_CAPABILITIES

    # ------------------------------------------------------------------ #
    def solve(
        self, program: GroundProgram, warm_start: Optional[Sequence[float]] = None
    ) -> MAPSolution:
        started = time.perf_counter()
        rng = random.Random(self.seed)

        warm: Optional[list[bool]] = None
        if warm_start is not None and len(warm_start) == program.num_atoms:
            warm = [value >= 0.5 for value in warm_start]

        best_assignment: Optional[list[bool]] = None
        best_penalty = float("inf")
        flips_done = 0

        for restart in range(self.max_restarts):
            assignment = self._initial_assignment(program, rng, restart, warm)
            state = _SearchState(program, assignment, self.hard_weight, debug=self.debug)
            if state.penalty < best_penalty:
                best_assignment, best_penalty = list(state.assignment), state.penalty
            for _ in range(self.max_flips):
                if not state.unsatisfied:
                    break  # every clause satisfied — cannot improve further
                flips_done += 1
                pool = state.unsatisfied_hard or state.unsatisfied
                clause = program.clauses[rng.choice(tuple(pool))]
                candidates = [index for index, _ in clause.literals]
                if rng.random() < self.noise:
                    flip_index = rng.choice(candidates)
                else:
                    flip_index = max(candidates, key=state.flip_delta)
                state.flip(flip_index)
                if state.penalty < best_penalty:
                    best_assignment, best_penalty = list(state.assignment), state.penalty

        assert best_assignment is not None
        repaired = self._repair_hard(program, best_assignment)
        if repaired is None:
            raise InfeasibleProgramError(
                "MaxWalkSAT could not find an assignment satisfying all hard constraints"
            )
        final = tuple(repaired)
        self._check_feasibility(program, final)
        elapsed = time.perf_counter() - started
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=flips_done,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=False,
        )
        return MAPSolution(
            assignment=final,
            objective=program.objective(final),
            stats=stats,
            truth_values=tuple(1.0 if value else 0.0 for value in final),
        )

    # ------------------------------------------------------------------ #
    def _initial_assignment(
        self,
        program: GroundProgram,
        rng: random.Random,
        restart: int,
        warm: Optional[list[bool]] = None,
    ) -> list[bool]:
        if restart == 0:
            if warm is not None:
                # Warm start: resume the search from the previous MAP state.
                return list(warm)
            # Informed start: believe all evidence, accept all derivations.
            return [True] * program.num_atoms
        return [rng.random() < 0.5 for _ in range(program.num_atoms)]

    def _repair_hard(self, program: GroundProgram, assignment: list[bool]) -> Optional[list[bool]]:
        """Greedy repair of any remaining hard violations (conflict clauses are
        all-negative, so falsifying one member always works)."""
        assignment = list(assignment)
        for _ in range(program.num_clauses + 1):
            violations = program.hard_violations(assignment)
            if not violations:
                return assignment
            clause = violations[0]
            best_index, best_cost = None, float("inf")
            for index, positive in clause.literals:
                cost = abs(program.atoms[index].fact.log_weight)
                if cost < best_cost:
                    best_index, best_cost = index, cost
            if best_index is None:
                return None
            for index, positive in clause.literals:
                if index == best_index:
                    assignment[index] = positive
                    break
        return assignment if not program.hard_violations(assignment) else None
