"""RockIt-style cutting-plane MAP inference.

RockIt (and its temporal extension nRockIt, used by the paper) does not hand
the full ground network to the ILP solver at once.  It starts from the soft
unit clauses (the evidence), solves that relaxed ILP, then *separates*: it
finds the ground clauses violated by the current solution, adds only those to
the ILP, and repeats until no violated clause remains.  On programs where most
constraints are satisfied by the evidence-optimal solution — exactly the
situation in KG debugging, where conflicts are sparse — this keeps the ILP far
smaller than full grounding.

This driver reproduces that loop on top of any exact inner solver (the HiGHS
back-end by default).
"""

from __future__ import annotations

import time

from ...errors import SolverError
from ...logic.ground import ClauseKind, GroundProgram
from ...solvers import MAPSolution, MAPSolver, MLN_CAPABILITIES, SolverCapabilities, SolverStats
from .milp_backend import ILPMapSolver


class CuttingPlaneSolver(MAPSolver):
    """Cutting-plane aggregation around an exact inner MAP solver.

    Parameters
    ----------
    inner:
        Exact solver used for the growing partial programs (defaults to the
        HiGHS ILP back-end).
    max_iterations:
        Safety bound on separation rounds.
    """

    name = "nrockit-cpa"

    def __init__(self, inner: MAPSolver | None = None, max_iterations: int = 50) -> None:
        self.inner = inner or ILPMapSolver()
        self.max_iterations = max_iterations

    @property
    def capabilities(self) -> SolverCapabilities:
        return MLN_CAPABILITIES

    def solve(self, program: GroundProgram) -> MAPSolution:
        started = time.perf_counter()

        # Active set: evidence unit clauses (and any other unit/prior clauses).
        active = [
            index
            for index, clause in enumerate(program.clauses)
            if clause.is_unit or clause.kind is ClauseKind.EVIDENCE
        ]
        active_set = set(active)
        inactive = [index for index in range(program.num_clauses) if index not in active_set]

        solution: MAPSolution | None = None
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            partial = self._subprogram(program, active)
            solution = self.inner.solve(partial)
            violated = [
                index
                for index in inactive
                if not program.clauses[index].satisfied_by(solution.assignment)
            ]
            if not violated:
                break
            active.extend(violated)
            active_set.update(violated)
            inactive = [index for index in inactive if index not in active_set]
        if solution is None:  # pragma: no cover - max_iterations >= 1 always
            raise SolverError("cutting-plane loop did not run")

        objective = program.objective(solution.assignment)
        self._check_feasibility(program, solution.assignment)
        elapsed = time.perf_counter() - started
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=iterations,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=solution.stats.optimal,
            extra=(("active_clauses", float(len(active))),),
        )
        return MAPSolution(
            assignment=solution.assignment,
            objective=objective,
            stats=stats,
            truth_values=solution.truth_values,
        )

    # ------------------------------------------------------------------ #
    def _subprogram(self, program: GroundProgram, clause_indexes: list[int]) -> GroundProgram:
        """A program with all atoms but only the selected clauses."""
        partial = GroundProgram()
        for atom in program.atoms:
            partial.add_atom(atom.fact, atom.is_evidence, atom.derived_by)
        for index in clause_indexes:
            clause = program.clauses[index]
            partial.add_clause(clause.literals, clause.weight, clause.kind, clause.origin)
        return partial
