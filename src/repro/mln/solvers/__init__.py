"""MAP back-ends for the MLN path."""

from .branch_bound import BranchAndBoundSolver
from .cutting_plane import CuttingPlaneSolver
from .maxwalksat import MaxWalkSATSolver
from .maxwalksat_array import ArrayMaxWalkSATSolver
from .milp_backend import ILPMapSolver

__all__ = [
    "ArrayMaxWalkSATSolver",
    "BranchAndBoundSolver",
    "CuttingPlaneSolver",
    "ILPMapSolver",
    "MaxWalkSATSolver",
]
