"""MAP back-ends for the MLN path."""

from .branch_bound import BranchAndBoundSolver
from .cutting_plane import CuttingPlaneSolver
from .maxwalksat import MaxWalkSATSolver
from .milp_backend import ILPMapSolver

__all__ = [
    "BranchAndBoundSolver",
    "CuttingPlaneSolver",
    "ILPMapSolver",
    "MaxWalkSATSolver",
]
