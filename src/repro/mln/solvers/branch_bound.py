"""Pure-Python branch & bound MAP solver.

A dependency-free exact solver used to cross-check the HiGHS back-end on
small programs and to keep the library usable if scipy's MILP interface is
unavailable.  It runs best-first branch & bound over the LP relaxation
(solved with ``scipy.optimize.linprog``); when even ``linprog`` is not wanted
the bound falls back to the sum of all remaining satisfiable soft weights.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from ...errors import InfeasibleProgramError
from ...logic.arrays import GroundProgramArrays
from ...logic.ground import GroundProgram
from ...solvers import MAPSolution, MAPSolver, MLN_CAPABILITIES, SolverCapabilities, SolverStats
from ..ilp import ILPEncoding, encode


@dataclass(order=True)
class _Node:
    """A search node: partial assignment with an optimistic bound."""

    priority: float
    counter: int
    fixed: dict[int, int] = field(compare=False, default_factory=dict)


class BranchAndBoundSolver(MAPSolver):
    """Exact MAP via best-first branch & bound on the LP relaxation.

    Parameters
    ----------
    time_limit:
        Wall-clock budget; when exhausted the best incumbent is returned and
        ``stats.optimal`` is False.
    max_nodes:
        Hard cap on explored nodes (safety valve for large programs).
    use_lp_bound:
        When False, use the cheaper (weaker) additive bound instead of LP.
    kernel:
        ``"object"`` evaluates candidate assignments through the
        :class:`GroundProgram` object graph; ``"array"`` routes every
        objective / feasibility evaluation (incumbent checks, leaf
        completions, greedy repair) through :class:`GroundProgramArrays`.
        The two are bit-identical — the array objective sums the same
        weights in the same order — so the search explores the same tree
        and returns the same assignment either way.
    """

    name = "nrockit-bnb"
    supports_warm_start = True

    def __init__(
        self,
        time_limit: float = 60.0,
        max_nodes: int = 200_000,
        use_lp_bound: bool = True,
        kernel: str = "object",
    ) -> None:
        if kernel not in ("object", "array"):
            raise ValueError(f"unknown branch-and-bound kernel {kernel!r}")
        self.time_limit = time_limit
        self.max_nodes = max_nodes
        self.use_lp_bound = use_lp_bound
        self.kernel = kernel
        if kernel == "array":
            self.name = "nrockit-bnb-array"

    @property
    def capabilities(self) -> SolverCapabilities:
        return MLN_CAPABILITIES

    # ------------------------------------------------------------------ #
    def solve(
        self, program: GroundProgram, warm_start: Optional[Sequence[float]] = None
    ) -> MAPSolution:
        started = time.perf_counter()
        encoding = encode(program)
        arrays = GroundProgramArrays.from_program(program) if self.kernel == "array" else None
        incumbent, incumbent_value = self._greedy_incumbent(program, arrays)
        if warm_start is not None and len(warm_start) == program.num_atoms:
            # Warm start: the previous MAP state, if feasible and better than
            # the greedy incumbent, prunes the tree from the first node.
            candidate = tuple(value >= 0.5 for value in warm_start)
            if arrays is not None:
                value, num_violations = arrays.evaluate(candidate)
                feasible = num_violations == 0
            else:
                feasible = program.is_feasible(candidate)
                value = program.objective(candidate) if feasible else -math.inf
            if feasible and (incumbent is None or value > incumbent_value):
                incumbent, incumbent_value = candidate, value
        counter = itertools.count()

        root_bound = self._bound(encoding, {})
        if root_bound is None:
            raise InfeasibleProgramError(
                "hard constraints admit no consistent world (LP relaxation infeasible)"
            )
        queue: list[_Node] = [_Node(-root_bound, next(counter), {})]
        explored = 0
        optimal = True

        while queue:
            if time.perf_counter() - started > self.time_limit or explored >= self.max_nodes:
                optimal = False
                break
            node = heapq.heappop(queue)
            bound = -node.priority
            if bound <= incumbent_value + 1e-9:
                continue
            explored += 1
            branch_variable = self._pick_variable(encoding, node.fixed)
            if branch_variable is None:
                assignment = self._complete(program, node.fixed)
                if assignment is None:
                    continue
                if arrays is not None:
                    # One-shot masked evaluation: objective and hard
                    # violations from a single pass over the CSR blocks.
                    value, num_violations = arrays.evaluate(assignment)
                    if value > incumbent_value and num_violations == 0:
                        incumbent, incumbent_value = assignment, value
                else:
                    value = program.objective(assignment)
                    if value > incumbent_value and program.is_feasible(assignment):
                        incumbent, incumbent_value = assignment, value
                continue
            for value in (1, 0):
                fixed = dict(node.fixed)
                fixed[branch_variable] = value
                child_bound = self._bound(encoding, fixed)
                if child_bound is None or child_bound <= incumbent_value + 1e-9:
                    continue
                heapq.heappush(queue, _Node(-child_bound, next(counter), fixed))

        if incumbent is None:
            raise InfeasibleProgramError(
                "hard constraints admit no consistent world (no feasible assignment found)"
            )
        self._check_feasibility(program, incumbent)
        elapsed = time.perf_counter() - started
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=explored,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=optimal and not queue,
        )
        return MAPSolution(
            assignment=incumbent,
            objective=incumbent_value,
            stats=stats,
            truth_values=tuple(1.0 if value else 0.0 for value in incumbent),
        )

    # ------------------------------------------------------------------ #
    # Bounds and heuristics
    # ------------------------------------------------------------------ #
    def _bound(self, encoding: ILPEncoding, fixed: dict[int, int]) -> Optional[float]:
        """Optimistic objective bound for a partial assignment (None ⇒ prune)."""
        if not self.use_lp_bound:
            return float(np.maximum(encoding.objective, 0.0).sum()) + encoding.offset
        lower = np.zeros(encoding.num_variables)
        upper = np.ones(encoding.num_variables)
        for index, value in fixed.items():
            lower[index] = value
            upper[index] = value
        result = linprog(
            c=-encoding.objective,
            A_ub=-encoding.constraint_matrix,
            b_ub=-encoding.lower_bounds,
            bounds=np.column_stack([lower, upper]),
            method="highs",
        )
        if result.status == 2:  # infeasible under the current fixings
            return None
        if result.status != 0 or result.x is None:
            # Numerical trouble: fall back to the additive bound (never prunes
            # a genuinely better solution).
            return float(np.maximum(encoding.objective, 0.0).sum()) + encoding.offset
        return float(-result.fun) + encoding.offset

    def _pick_variable(self, encoding: ILPEncoding, fixed: dict[int, int]) -> Optional[int]:
        """Next atom to branch on: largest absolute objective coefficient."""
        best_index: Optional[int] = None
        best_score = -1.0
        for index in range(encoding.num_atoms):
            if index in fixed:
                continue
            score = abs(float(encoding.objective[index]))
            if score > best_score:
                best_index, best_score = index, score
        return best_index

    def _complete(
        self, program: GroundProgram, fixed: dict[int, int]
    ) -> Optional[tuple[bool, ...]]:
        return tuple(bool(fixed.get(index, 0)) for index in range(program.num_atoms))

    def _greedy_incumbent(
        self, program: GroundProgram, arrays: Optional[GroundProgramArrays] = None
    ) -> tuple[Optional[tuple[bool, ...]], float]:
        """A quick feasible starting point: keep everything, then repair.

        Greedily falsify the cheapest atom of each violated hard clause until
        feasible; gives branch & bound an incumbent to prune against.  With
        ``arrays``, the violated clause comes from the vectorized evaluation:
        ``hard_violation_indices`` lists violated clauses in the same (clause)
        order ``hard_violations`` returns them in, so both kernels repair the
        same clause each round.
        """
        assignment = [True] * program.num_atoms
        for _ in range(program.num_clauses + 1):
            if arrays is not None:
                violated = arrays.hard_violation_indices(assignment)
                if violated.size == 0:
                    return tuple(assignment), arrays.objective(assignment)
                atoms, signs = arrays.clause_literals(int(violated[0]))
                literals = list(zip(atoms.tolist(), signs.tolist()))
            else:
                violations = program.hard_violations(assignment)
                if not violations:
                    return tuple(assignment), program.objective(assignment)
                literals = list(violations[0].literals)
            # All literals are false; flip the atom whose flip costs least.
            best_index, best_cost = None, math.inf
            for index, positive in literals:
                cost = abs(program.atoms[index].fact.log_weight)
                if cost < best_cost:
                    best_index, best_cost = index, cost
            for index, positive in literals:
                if index == best_index:
                    assignment[index] = positive
                    break
        if arrays is not None:
            if arrays.is_feasible(assignment):
                return tuple(assignment), arrays.objective(assignment)
            return None, -math.inf
        violations = program.hard_violations(assignment)
        if violations:
            return None, -math.inf
        return tuple(assignment), program.objective(assignment)
