"""Exact MAP inference via mixed-integer linear programming (HiGHS).

This back-end plays the role Gurobi plays inside nRockIt: it solves the MAP
ILP of :mod:`repro.mln.ilp` exactly.  scipy's ``milp`` wraps the HiGHS
branch-and-cut solver, which is bundled with scipy and needs no network or
licence.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ...errors import InfeasibleProgramError, SolverError
from ...logic.ground import GroundProgram
from ...solvers import MAPSolution, MAPSolver, MLN_CAPABILITIES, SolverCapabilities, SolverStats
from ..ilp import ILPEncoding, encode


class ILPMapSolver(MAPSolver):
    """Exact MAP via the HiGHS MILP solver (the "nRockIt" path).

    Parameters
    ----------
    time_limit:
        Wall-clock limit in seconds handed to HiGHS; the best incumbent found
        within the limit is returned (``stats.optimal`` reports whether it was
        proven optimal).
    mip_gap:
        Relative optimality gap at which HiGHS may stop early.
    """

    name = "nrockit-ilp"

    def __init__(self, time_limit: float = 120.0, mip_gap: float = 1e-6) -> None:
        self.time_limit = time_limit
        self.mip_gap = mip_gap

    @property
    def capabilities(self) -> SolverCapabilities:
        return MLN_CAPABILITIES

    def solve(self, program: GroundProgram) -> MAPSolution:
        started = time.perf_counter()
        encoding = encode(program)
        solution_values, optimal = self._solve_encoding(encoding)
        assignment = encoding.assignment_from(solution_values)
        objective = program.objective(assignment)
        self._check_feasibility(program, assignment)
        elapsed = time.perf_counter() - started
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=1,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=optimal,
            objective_bound=encoding.objective_value(solution_values),
        )
        return MAPSolution(
            assignment=assignment,
            objective=objective,
            stats=stats,
            truth_values=tuple(1.0 if value else 0.0 for value in assignment),
        )

    # ------------------------------------------------------------------ #
    def _solve_encoding(self, encoding: ILPEncoding) -> tuple[np.ndarray, bool]:
        constraints = LinearConstraint(
            encoding.constraint_matrix,
            lb=encoding.lower_bounds,
            ub=np.full(encoding.num_constraints, np.inf),
        )
        result = milp(
            c=-encoding.objective,  # milp minimises; we maximise
            integrality=np.ones(encoding.num_variables),
            bounds=Bounds(0, 1),
            constraints=[constraints],
            options={"time_limit": self.time_limit, "mip_rel_gap": self.mip_gap},
        )
        if result.status == 2:
            raise InfeasibleProgramError(
                "hard constraints admit no consistent world (ILP infeasible)"
            )
        if result.x is None:
            raise SolverError(f"HiGHS MILP failed: {result.message}")
        return np.asarray(result.x, dtype=float), bool(result.status == 0)
