"""Array-native MaxWalkSAT kernel over :class:`GroundProgramArrays`.

Same search as :mod:`.maxwalksat` — weighted WalkSAT with restarts, noise
moves, and greedy repair — but all bookkeeping lives in numpy blocks
(satisfied-literal counts, unsatisfied mask, flip deltas via occurrence-CSR
gathers) instead of per-clause Python objects.

A single numpy flip would lose to the object path: one object flip costs a
few microseconds while ten small numpy calls cost about the same, so the
kernel is **batched**.  Each iteration samples one unsatisfied clause per
connected component of the clause–atom graph (hard before soft, uniform
within the component), computes every candidate literal's flip delta in one
vectorized pass, picks one atom per clause (greedy first-argmax, per-clause
noise moves), and flips all chosen atoms at once.  Because an atom occurs
only in clauses of its own component, the simultaneous moves are exactly
independent — every batch equals some sequential interleaving of
single-clause moves, so search dynamics match the object solver move for
move up to RNG streams.  Ground programs here shatter into hundreds of
components (see BENCH_decomposition), which is what makes the batches wide;
solution quality is tolerance-pinned against the object solver in the
equivalence suite, not bit-matched flip-for-flip.
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence

import numpy as np

from ...errors import InfeasibleProgramError
from ...logic.arrays import GroundProgramArrays, ragged_slices
from ...logic.ground import GroundProgram
from ...solvers import MAPSolution, SolverStats
from .maxwalksat import MaxWalkSATSolver


class ArraySearchState:
    """Vectorized counterpart of ``_SearchState``: counts, mask, penalty."""

    def __init__(
        self,
        arrays: GroundProgramArrays,
        assignment: np.ndarray,
        hard_weight: float,
        debug: bool = False,
    ) -> None:
        self.arrays = arrays
        self.assignment = assignment
        self.debug = debug
        self.weights_eff = np.where(arrays.is_hard, hard_weight, arrays.weights)
        # Float counts: incremented by ±1 bincounts, so values stay exact
        # small integers and ``== 0`` / ``== 1`` comparisons are safe.
        self.counts = arrays.satisfied_counts(assignment)
        self.unsat = self.counts == 0
        self.penalty = float(self.weights_eff @ self.unsat)
        self.occ_offsets, self.occ_clauses, self.occ_signs = arrays.occurrence

    def flip(self, atom_index: int) -> None:
        self.flip_many(np.asarray([atom_index], dtype=np.int64))

    def flip_many(self, atoms: np.ndarray) -> None:
        """Flip a set of distinct atoms at once, updating counts/mask/penalty.

        ``atoms`` is deduplicated here, so passing the same atom twice flips
        it once (matching what "flip these atoms simultaneously" means).
        """
        atoms = np.unique(np.asarray(atoms, dtype=np.int64))
        if atoms.size == 0:
            return
        new_values = ~self.assignment[atoms]
        occ_lengths = self.occ_offsets[atoms + 1] - self.occ_offsets[atoms]
        positions = ragged_slices(self.occ_offsets, atoms)
        clauses = self.occ_clauses[positions]
        signs = self.occ_signs[positions]
        # +1 where the flipped literal becomes true, -1 where it becomes
        # false; one bincount applies every count change at once, and the
        # penalty is recomputed as a single masked dot product — both are
        # O(clauses) vectorized passes, far cheaper per flip than the
        # scatter/gather transition bookkeeping they replace.
        deltas = np.where(np.repeat(new_values, occ_lengths) == signs, 1.0, -1.0)
        self.counts += np.bincount(clauses, weights=deltas, minlength=self.counts.size)
        self.unsat = self.counts == 0
        self.penalty = float(self.weights_eff @ self.unsat)
        self.assignment[atoms] = new_values
        if self.debug:
            self.check_invariant()

    def check_invariant(self) -> None:
        """Debug cross-check: tracked state vs from-scratch recomputation."""
        counts = self.arrays.satisfied_counts(self.assignment)
        if not np.array_equal(counts, self.counts):
            raise AssertionError("satisfied-literal counts drifted from recomputation")
        if not np.array_equal(counts == 0, self.unsat):
            raise AssertionError("unsatisfied mask drifted from recomputation")
        expected = float(self.weights_eff[self.unsat].sum())
        if not np.isclose(self.penalty, expected, rtol=1e-9, atol=1e-6):
            raise AssertionError(
                f"penalty bookkeeping drifted: tracked {self.penalty!r}, "
                f"recomputed {expected!r}"
            )


class ArrayMaxWalkSATSolver(MaxWalkSATSolver):
    """Batched array-kernel MaxWalkSAT (same parameters as the object solver,
    plus ``batch_size``, a cap on simultaneous clause repairs per iteration —
    the effective batch is the number of components with unsatisfied
    clauses, so the cap only binds on unusually shattered programs)."""

    name = "maxwalksat-array"
    supports_warm_start = True

    def __init__(
        self,
        max_flips: int = 20_000,
        max_restarts: int = 3,
        noise: float = 0.2,
        hard_weight: float = 1_000.0,
        seed: int = 2017,
        debug: bool = False,
        batch_size: int = 512,
    ) -> None:
        super().__init__(
            max_flips=max_flips,
            max_restarts=max_restarts,
            noise=noise,
            hard_weight=hard_weight,
            seed=seed,
            debug=debug,
        )
        self.batch_size = max(1, batch_size)

    # ------------------------------------------------------------------ #
    def solve(
        self, program: GroundProgram, warm_start: Optional[Sequence[float]] = None
    ) -> MAPSolution:
        started = time.perf_counter()
        arrays = GroundProgramArrays.from_program(program)
        init_rng = random.Random(self.seed)
        rng = np.random.default_rng(self.seed)

        warm: Optional[list[bool]] = None
        if warm_start is not None and len(warm_start) == program.num_atoms:
            warm = [value >= 0.5 for value in warm_start]

        # Per-component best-state tracking.  Components are independent, so
        # the returned assignment is assembled from each component's best
        # state across all batches and restarts — finer-grained than the
        # object solver's global snapshot (a batch mixes greedy improvements
        # with noise moves in other components; component-wise tracking keeps
        # the improvements without paying for the unrelated noise).
        atom_labels, clause_labels = arrays.components
        num_components = int(atom_labels.max()) + 1 if atom_labels.size else 0
        best_component_penalty = np.full(num_components, np.inf)
        best_assignment: Optional[np.ndarray] = None
        flips_done = 0

        def fold_best(state: ArraySearchState) -> None:
            component_penalty = np.bincount(
                clause_labels,
                weights=state.weights_eff * state.unsat,
                minlength=num_components,
            )
            improved = component_penalty < best_component_penalty
            if improved.any():
                atom_mask = improved[atom_labels]
                best_assignment[atom_mask] = state.assignment[atom_mask]
                best_component_penalty[improved] = component_penalty[improved]

        for restart in range(self.max_restarts):
            assignment = np.asarray(
                self._initial_assignment(program, init_rng, restart, warm), dtype=bool
            )
            state = ArraySearchState(arrays, assignment, self.hard_weight, debug=self.debug)
            if best_assignment is None:
                best_assignment = state.assignment.copy()
            fold_best(state)
            flips_left = self.max_flips
            while flips_left > 0:
                flipped = self._batch_step(state, rng, flips_left)
                if flipped == 0:
                    break  # every clause satisfied — cannot improve further
                flips_left -= flipped
                flips_done += flipped
                fold_best(state)

        assert best_assignment is not None
        repaired = self._repair_hard(program, [bool(v) for v in best_assignment])
        if repaired is None:
            raise InfeasibleProgramError(
                "MaxWalkSAT could not find an assignment satisfying all hard constraints"
            )
        final = tuple(repaired)
        self._check_feasibility(program, final)
        elapsed = time.perf_counter() - started
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=flips_done,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=False,
        )
        return MAPSolution(
            assignment=final,
            objective=arrays.objective(final),
            stats=stats,
            truth_values=tuple(1.0 if value else 0.0 for value in final),
        )

    # ------------------------------------------------------------------ #
    def _batch_step(
        self, state: ArraySearchState, rng: np.random.Generator, flips_left: int
    ) -> int:
        """One batched iteration: sample clauses, pick one atom each, flip.

        Returns the number of atoms actually flipped (0 ⇒ fully satisfied).
        """
        arrays = state.arrays
        unsat_indices = np.flatnonzero(state.unsat)
        if unsat_indices.size == 0:
            return 0
        # Conflict-free batch: at most ONE clause repair per connected
        # component.  An atom only occurs in clauses of its own component,
        # so the simultaneous flips are exactly independent — the batch is
        # equivalent to some sequential interleaving of single-clause moves.
        # Within each component the pick is uniform over that component's
        # unsatisfied clauses, hard before soft (the object solver's global
        # hard-first rule, applied per component).
        _, clause_components = arrays.components
        components = clause_components[unsat_indices]
        soft_rank = ~arrays.is_hard[unsat_indices]  # False (hard) sorts first
        order = np.lexsort((rng.random(unsat_indices.size), soft_rank, components))
        ranked = unsat_indices[order]
        ranked_components = components[order]
        is_first = np.concatenate(([True], ranked_components[1:] != ranked_components[:-1]))
        selected = ranked[is_first]
        batch = min(self.batch_size, flips_left)
        if selected.size > batch:
            selected = rng.choice(selected, size=batch, replace=False)

        # Candidate literals of every selected clause, as one ragged block.
        cand_lengths = arrays.clause_offsets[selected + 1] - arrays.clause_offsets[selected]
        cand_positions = ragged_slices(arrays.clause_offsets, selected)
        cand_atoms = arrays.literal_atoms[cand_positions]
        seg_starts = np.concatenate(([0], np.cumsum(cand_lengths)[:-1]))
        seg_ids = np.repeat(np.arange(selected.size), cand_lengths)

        # flip_delta for every candidate in one pass: expand each candidate
        # atom's occurrence row, then segment-sum the per-occurrence gains
        # (clause becomes satisfied: count == 0 and literal turns true) and
        # losses (count == 1 and literal turns false).
        new_values = ~state.assignment[cand_atoms]
        occ_lengths = state.occ_offsets[cand_atoms + 1] - state.occ_offsets[cand_atoms]
        occ_positions = ragged_slices(state.occ_offsets, cand_atoms)
        occ_clause = state.occ_clauses[occ_positions]
        occ_sign = state.occ_signs[occ_positions]
        occ_new = np.repeat(new_values, occ_lengths)
        occ_count = state.counts[occ_clause]
        occ_weight = state.weights_eff[occ_clause]
        becomes_true = occ_new == occ_sign
        contribution = np.where(
            becomes_true & (occ_count == 0), occ_weight, 0.0
        ) - np.where(~becomes_true & (occ_count == 1), occ_weight, 0.0)
        owner = np.repeat(np.arange(cand_atoms.size), occ_lengths)
        deltas = np.bincount(owner, weights=contribution, minlength=cand_atoms.size)

        # Greedy pick per clause = FIRST candidate attaining the segment max
        # (same tie-break as ``max(candidates, key=...)`` in the object path).
        seg_max = np.maximum.reduceat(deltas, seg_starts)
        flat = np.arange(deltas.size, dtype=np.int64)
        max_positions = np.where(deltas == seg_max[seg_ids], flat, deltas.size)
        greedy = cand_atoms[np.minimum.reduceat(max_positions, seg_starts)]

        # Noise moves: with probability ``noise`` take a uniform literal.
        noise_mask = rng.random(selected.size) < self.noise
        random_offsets = rng.integers(0, cand_lengths)
        random_pick = cand_atoms[seg_starts + random_offsets]
        chosen = np.where(noise_mask, random_pick, greedy)

        unique_atoms = np.unique(chosen)
        state.flip_many(unique_atoms)
        return int(unique_atoms.size)
