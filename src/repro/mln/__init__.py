"""Markov Logic Network engine with numerical constraints (the nRockIt path)."""

from .ilp import ILPEncoding, encode
from .map_inference import (
    BACKENDS,
    DEFAULT_BACKEND,
    available_backends,
    make_solver,
    solve_map,
)
from .marginal import GibbsSampler, MarginalResult, marginals
from .model import MarkovLogicNetwork, WeightedFormula
from .solvers import (
    ArrayMaxWalkSATSolver,
    BranchAndBoundSolver,
    CuttingPlaneSolver,
    ILPMapSolver,
    MaxWalkSATSolver,
)

__all__ = [
    "BACKENDS",
    "ArrayMaxWalkSATSolver",
    "BranchAndBoundSolver",
    "CuttingPlaneSolver",
    "DEFAULT_BACKEND",
    "GibbsSampler",
    "ILPEncoding",
    "ILPMapSolver",
    "MarginalResult",
    "MarkovLogicNetwork",
    "MaxWalkSATSolver",
    "WeightedFormula",
    "available_backends",
    "encode",
    "make_solver",
    "marginals",
    "solve_map",
]
