"""MAP inference driver for the MLN path.

Chooses a back-end by name and runs it on a ground program, with the
expressivity check the TeCoRe translator performs before dispatching.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from ..errors import SolverNotAvailableError
from ..logic.ground import GroundProgram
from ..solvers import (
    MAPSolution,
    MAPSolver,
    check_expressivity,
    instantiate_solver,
    wrap_decomposed,
)
from .solvers.branch_bound import BranchAndBoundSolver
from .solvers.cutting_plane import CuttingPlaneSolver
from .solvers.maxwalksat import MaxWalkSATSolver
from .solvers.maxwalksat_array import ArrayMaxWalkSATSolver
from .solvers.milp_backend import ILPMapSolver

#: Back-end registry: name → zero-argument factory.  The ``*-array`` entries
#: are the columnar kernels over :class:`GroundProgramArrays`; the object
#: back-ends stay registered as their differential baseline.
BACKENDS: dict[str, Callable[[], MAPSolver]] = {
    "ilp": ILPMapSolver,
    "cutting-plane": CuttingPlaneSolver,
    "branch-and-bound": BranchAndBoundSolver,
    "branch-and-bound-array": partial(BranchAndBoundSolver, kernel="array"),
    "maxwalksat": MaxWalkSATSolver,
    "maxwalksat-array": ArrayMaxWalkSATSolver,
}

#: Back-end used when none is requested (matches nRockIt's Gurobi-backed ILP).
DEFAULT_BACKEND = "ilp"


def available_backends() -> list[str]:
    """Names of all MLN MAP back-ends."""
    return sorted(BACKENDS)


def make_solver(backend: str = DEFAULT_BACKEND, **kwargs) -> MAPSolver:
    """Instantiate a back-end by name (keyword arguments are passed through)."""
    factory = BACKENDS.get(backend)
    if factory is None:
        raise SolverNotAvailableError(
            f"unknown MLN back-end {backend!r}; available: {available_backends()}"
        )
    return instantiate_solver(factory, f"MLN back-end {backend!r}", **kwargs)


def solve_map(
    program: GroundProgram,
    backend: str = DEFAULT_BACKEND,
    validate: bool = True,
    decompose: bool = False,
    jobs: int = 1,
    **kwargs,
) -> MAPSolution:
    """Run MAP inference on ``program`` with the chosen back-end.

    ``validate`` applies the solver's expressivity check first (the paper's
    translator behaviour); disable it only in controlled experiments.
    ``decompose`` solves the connected components of the program's
    interaction graph independently (exact for exact back-ends) with ``jobs``
    worker processes (1 = sequential).
    """
    solver = wrap_decomposed(partial(make_solver, backend, **kwargs), decompose, jobs)
    if validate:
        check_expressivity(program, solver.capabilities)
    return solver.solve(program)
