"""Markov Logic Networks with numerical constraints (template level).

An MLN is a set of weighted first-order formulas; together with a set of
constants it defines a ground Markov network whose log-linear distribution is

    P(X = x) = Z⁻¹ · exp( Σᵢ wᵢ nᵢ(x) )

where ``nᵢ(x)`` counts the true groundings of formula ``Fᵢ`` in world ``x``.
In TeCoRe the formulas are the evidence facts (unit formulas weighted by their
log-odds), the temporal inference rules, and the temporal constraints
(numerical constraints per Chekol et al., ECAI 2016).

The heavy lifting — grounding and MAP — lives in :mod:`repro.logic.grounding`
and :mod:`repro.mln.solvers`; this module is the template-level container that
mirrors the role of an ``.mln`` input file for nRockIt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..kg import TemporalKnowledgeGraph
from ..logic import (
    GroundProgram,
    Grounder,
    GroundingResult,
    TemporalConstraint,
    TemporalRule,
)


@dataclass(frozen=True, slots=True)
class WeightedFormula:
    """One template formula of the MLN, in display form."""

    text: str
    weight: Optional[float]
    kind: str

    def __str__(self) -> str:
        weight = "∞" if self.weight is None else f"{self.weight:g}"
        return f"{weight}  {self.text}"


@dataclass
class MarkovLogicNetwork:
    """A template MLN: inference rules + constraints (+ the evidence model).

    Parameters
    ----------
    rules, constraints:
        The weighted first-order formulas.
    max_rounds:
        Forward-chaining bound handed to the grounder.
    """

    rules: list[TemporalRule] = field(default_factory=list)
    constraints: list[TemporalConstraint] = field(default_factory=list)
    max_rounds: int = 5

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_rule(self, rule: TemporalRule) -> "MarkovLogicNetwork":
        self.rules.append(rule)
        return self

    def add_constraint(self, constraint: TemporalConstraint) -> "MarkovLogicNetwork":
        self.constraints.append(constraint)
        return self

    def extend(
        self,
        rules: Iterable[TemporalRule] = (),
        constraints: Iterable[TemporalConstraint] = (),
    ) -> "MarkovLogicNetwork":
        self.rules.extend(rules)
        self.constraints.extend(constraints)
        return self

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def num_formulas(self) -> int:
        return len(self.rules) + len(self.constraints)

    def formulas(self) -> list[WeightedFormula]:
        """Template formulas in display form (the nRockIt-style program listing)."""
        listing = [WeightedFormula(str(rule), rule.weight, "rule") for rule in self.rules]
        listing += [
            WeightedFormula(str(constraint), constraint.weight, "constraint")
            for constraint in self.constraints
        ]
        return listing

    def hard_formulas(self) -> list[WeightedFormula]:
        return [formula for formula in self.formulas() if formula.weight is None]

    def soft_formulas(self) -> list[WeightedFormula]:
        return [formula for formula in self.formulas() if formula.weight is not None]

    # ------------------------------------------------------------------ #
    # Grounding and scoring
    # ------------------------------------------------------------------ #
    def ground(self, graph: TemporalKnowledgeGraph) -> GroundingResult:
        """Ground this MLN against the evidence UTKG."""
        grounder = Grounder(
            graph, rules=self.rules, constraints=self.constraints, max_rounds=self.max_rounds
        )
        return grounder.ground()

    def log_potential(self, program: GroundProgram, assignment: Sequence[bool]) -> float:
        """The unnormalised log-probability ``Σᵢ wᵢ nᵢ(x)`` of a world.

        Hard clauses contribute ``-inf`` when violated (zero probability).
        """
        if not program.is_feasible(assignment):
            return -math.inf
        return program.objective(assignment)

    def world_probability_ratio(
        self,
        program: GroundProgram,
        first: Sequence[bool],
        second: Sequence[bool],
    ) -> float:
        """``P(first) / P(second)`` — the partition function cancels out."""
        first_potential = self.log_potential(program, first)
        second_potential = self.log_potential(program, second)
        if second_potential == -math.inf:
            return math.inf if first_potential > -math.inf else 1.0
        return math.exp(first_potential - second_potential)

    def __repr__(self) -> str:
        return (
            f"MarkovLogicNetwork(rules={len(self.rules)}, " f"constraints={len(self.constraints)})"
        )
