"""Marginal inference by Gibbs sampling (extension).

TeCoRe focuses on MAP inference, but the underlying MLN semantics also
defines marginal probabilities ``P(fact)``.  This Gibbs sampler is provided as
the natural extension (and as a diagnostic: facts whose marginal is far from
their MAP value sit near the decision boundary of the repair).

Hard clauses are respected by conditioning: a flip that would violate a hard
clause is never proposed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..errors import SolverError
from ..kg import TemporalFact
from ..logic.ground import GroundProgram


@dataclass(frozen=True, slots=True)
class MarginalResult:
    """Estimated marginal probabilities for every ground atom."""

    probabilities: tuple[float, ...]
    samples: int
    burn_in: int

    def probability_of(self, program: GroundProgram, fact: TemporalFact) -> float:
        atom = program.atom_for(fact)
        if atom is None:
            raise SolverError(f"fact {fact} is not part of the ground program")
        return self.probabilities[atom.index]


class GibbsSampler:
    """Gibbs sampling over the ground program's log-linear distribution."""

    def __init__(self, samples: int = 2_000, burn_in: int = 500, seed: int = 2017) -> None:
        if samples <= 0:
            raise SolverError("samples must be positive")
        self.samples = samples
        self.burn_in = burn_in
        self.seed = seed

    # ------------------------------------------------------------------ #
    def run(self, program: GroundProgram, initial: Sequence[bool] | None = None) -> MarginalResult:
        rng = random.Random(self.seed)
        if initial is not None:
            state = list(initial)
            if len(state) != program.num_atoms:
                raise SolverError("initial state size does not match the program")
        else:
            state = [True] * program.num_atoms
            state = self._make_feasible(program, state)

        occurrences: dict[int, list[int]] = {index: [] for index in range(program.num_atoms)}
        for clause_index, clause in enumerate(program.clauses):
            for atom_index, _ in clause.literals:
                occurrences[atom_index].append(clause_index)

        counts = [0] * program.num_atoms
        total_kept = 0
        for iteration in range(self.samples + self.burn_in):
            for index in range(program.num_atoms):
                self._resample(program, state, index, occurrences, rng)
            if iteration >= self.burn_in:
                total_kept += 1
                for index, value in enumerate(state):
                    if value:
                        counts[index] += 1
        probabilities = tuple(count / max(total_kept, 1) for count in counts)
        return MarginalResult(
            probabilities=probabilities, samples=self.samples, burn_in=self.burn_in
        )

    # ------------------------------------------------------------------ #
    def _local_energy(
        self,
        program: GroundProgram,
        state: list[bool],
        clause_indexes: list[int],
    ) -> tuple[float, bool]:
        """(soft weight satisfied, all hard clauses satisfied) for the local clauses."""
        weight = 0.0
        feasible = True
        for clause_index in clause_indexes:
            clause = program.clauses[clause_index]
            satisfied = clause.satisfied_by(state)
            if clause.is_hard:
                feasible = feasible and satisfied
            elif satisfied:
                weight += float(clause.weight or 0.0)
        return weight, feasible

    def _resample(
        self,
        program: GroundProgram,
        state: list[bool],
        index: int,
        occurrences: dict[int, list[int]],
        rng: random.Random,
    ) -> None:
        local = occurrences[index]
        state[index] = True
        weight_true, feasible_true = self._local_energy(program, state, local)
        state[index] = False
        weight_false, feasible_false = self._local_energy(program, state, local)
        if feasible_true and not feasible_false:
            state[index] = True
            return
        if feasible_false and not feasible_true:
            state[index] = False
            return
        if not feasible_true and not feasible_false:
            # Neither value satisfies the hard clauses touching this atom; keep
            # the value with higher soft weight (the chain will repair later).
            state[index] = weight_true >= weight_false
            return
        probability_true = 1.0 / (1.0 + math.exp(-(weight_true - weight_false)))
        state[index] = rng.random() < probability_true

    def _make_feasible(self, program: GroundProgram, state: list[bool]) -> list[bool]:
        for _ in range(program.num_clauses + 1):
            violations = program.hard_violations(state)
            if not violations:
                return state
            clause = violations[0]
            best_index, best_cost = None, math.inf
            for index, positive in clause.literals:
                cost = abs(program.atoms[index].fact.log_weight)
                if cost < best_cost:
                    best_index, best_cost = index, cost
            for index, positive in clause.literals:
                if index == best_index:
                    state[index] = positive
                    break
        return state


def marginals(
    program: GroundProgram, samples: int = 2_000, burn_in: int = 500, seed: int = 2017
) -> MarginalResult:
    """Convenience wrapper running a :class:`GibbsSampler`."""
    return GibbsSampler(samples=samples, burn_in=burn_in, seed=seed).run(program)
