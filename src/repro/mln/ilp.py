"""ILP encoding of MAP inference over a ground program.

MAP inference in an MLN is equivalent to weighted MaxSAT over the ground
clauses, which has the standard integer-linear-programming formulation used
by RockIt/nRockIt (there solved by Gurobi; here by HiGHS through scipy, or by
the pure-Python branch & bound):

* one binary variable ``xᵢ`` per ground atom;
* one binary variable ``z_c`` per *non-unit* soft clause;
* hard clause ``C``:  Σ_{i∈C⁺} xᵢ + Σ_{i∈C⁻} (1−xᵢ) ≥ 1;
* soft clause ``C`` with weight ``w``:  z_c ≤ Σ_{i∈C⁺} xᵢ + Σ_{i∈C⁻} (1−xᵢ),
  contributing ``w·z_c`` to the objective;
* unit soft clauses fold directly into the objective coefficient of their atom.

The encoding records a constant offset so the reported objective matches
:meth:`GroundProgram.objective` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import sparse

from ..errors import GroundingError
from ..logic.ground import GroundClause, GroundProgram


@dataclass
class ILPEncoding:
    """The matrices of the MAP ILP (maximisation form).

    Attributes
    ----------
    objective:
        Coefficients of ``maximise  objective · v`` over all variables
        (atoms first, then auxiliary clause variables).
    constraint_matrix, lower_bounds:
        Rows encode ``constraint_matrix · v ≥ lower_bounds``.
    offset:
        Constant added to the ILP objective so it equals the ground-program
        objective (satisfied soft weight).
    num_atoms, num_aux:
        Variable layout: ``v[:num_atoms]`` are atom indicators, the rest are
        auxiliary soft-clause indicators.
    aux_clauses:
        The soft clause each auxiliary variable stands for (by clause index).
    """

    objective: np.ndarray
    constraint_matrix: sparse.csr_matrix
    lower_bounds: np.ndarray
    offset: float
    num_atoms: int
    num_aux: int
    aux_clauses: list[int] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return self.num_atoms + self.num_aux

    @property
    def num_constraints(self) -> int:
        return int(self.constraint_matrix.shape[0])

    def assignment_from(self, values: Sequence[float]) -> tuple[bool, ...]:
        """Round the atom block of an ILP solution vector to booleans."""
        return tuple(bool(round(float(value))) for value in values[: self.num_atoms])

    def objective_value(self, values: Sequence[float]) -> float:
        """Objective (satisfied soft weight) of a full ILP solution vector."""
        return float(np.dot(self.objective, np.asarray(values, dtype=float))) + self.offset


def _clause_row(
    clause: GroundClause, num_variables: int, aux_index: int | None
) -> tuple[list[int], list[float], float]:
    """Row ``Σ coeffs·v ≥ 1 - negated_count (+ aux)`` for one clause.

    Returns (column indexes, coefficients, lower bound).
    """
    columns: list[int] = []
    coefficients: list[float] = []
    bound = 1.0
    for index, positive in clause.literals:
        columns.append(index)
        if positive:
            coefficients.append(1.0)
        else:
            coefficients.append(-1.0)
            bound -= 1.0
    if aux_index is not None:
        columns.append(aux_index)
        coefficients.append(-1.0)
        bound -= 1.0  # z - sat <= 0  <=>  sat - z >= 0; bound adjusted below.
    return columns, coefficients, bound


def encode(program: GroundProgram) -> ILPEncoding:
    """Build the MAP ILP for ``program``."""
    num_atoms = program.num_atoms
    if num_atoms == 0:
        raise GroundingError("cannot encode an empty ground program")

    # First pass: layout auxiliary variables for non-unit soft clauses.
    aux_clauses: list[int] = []
    for clause_index, clause in enumerate(program.clauses):
        if not clause.is_hard and not clause.is_unit:
            aux_clauses.append(clause_index)
    num_aux = len(aux_clauses)
    aux_position = {
        clause_index: num_atoms + offset for offset, clause_index in enumerate(aux_clauses)
    }

    objective = np.zeros(num_atoms + num_aux, dtype=float)
    offset = 0.0

    rows: list[int] = []
    columns: list[int] = []
    values: list[float] = []
    bounds: list[float] = []
    row_count = 0

    def add_row(cols: list[int], coeffs: list[float], lower: float) -> None:
        nonlocal row_count
        for column, coefficient in zip(cols, coeffs):
            rows.append(row_count)
            columns.append(column)
            values.append(coefficient)
        bounds.append(lower)
        row_count += 1

    for clause_index, clause in enumerate(program.clauses):
        if clause.is_hard:
            cols, coeffs, lower = _clause_row(clause, num_atoms + num_aux, None)
            add_row(cols, coeffs, lower)
            continue
        weight = float(clause.weight or 0.0)
        if clause.is_unit:
            index, positive = clause.literals[0]
            if positive:
                objective[index] += weight
            else:
                # w·sat(¬x) = w − w·x
                objective[index] -= weight
                offset += weight
            continue
        # Non-unit soft clause: auxiliary indicator z with z ≤ satisfaction count.
        aux = aux_position[clause_index]
        objective[aux] += weight
        cols, coeffs, lower = _clause_row(clause, num_atoms + num_aux, aux)
        # _clause_row built Σ lit − z ≥ bound where bound already accounts for
        # negated literals and the −1 for z; the correct requirement is
        # Σ lit − z ≥ −negatives, i.e. lower bound = (1 − negatives) − 1.
        add_row(cols, coeffs, lower)

    if row_count == 0:
        # No hard or non-unit clauses: add a trivially satisfied row so the
        # matrix has a valid shape for downstream solvers.
        add_row([0], [0.0], -1.0)

    matrix = sparse.csr_matrix((values, (rows, columns)), shape=(row_count, num_atoms + num_aux))
    return ILPEncoding(
        objective=objective,
        constraint_matrix=matrix,
        lower_bounds=np.asarray(bounds, dtype=float),
        offset=offset,
        num_atoms=num_atoms,
        num_aux=num_aux,
        aux_clauses=aux_clauses,
    )
