"""TeCoRe: Temporal Conflict Resolution in Knowledge Graphs (VLDB 2017) — reproduction.

The library detects and resolves temporal conflicts in uncertain temporal
knowledge graphs (UTKGs) by translating the graph, temporal inference rules
and temporal constraints into weighted first-order logic and computing the
most probable conflict-free world (MAP inference) with either a Markov Logic
Network back-end ("nRockIt") or a Probabilistic Soft Logic back-end ("nPSL").

Quickstart
----------
>>> from repro import TeCoRe
>>> from repro.datasets import ranieri_graph
>>> system = TeCoRe.from_pack("running-example", solver="nrockit")
>>> result = system.resolve(ranieri_graph())
>>> result.statistics.removed_facts
1

Package map
-----------
* :mod:`repro.kg` — temporal knowledge-graph substrate (terms, facts, store, IO);
* :mod:`repro.temporal` — discrete time, intervals, Allen's interval algebra;
* :mod:`repro.logic` — rules, constraints, Datalog-style parser, grounding;
* :mod:`repro.mln` / :mod:`repro.psl` — the two MAP inference engines;
* :mod:`repro.core` — the TeCoRe facade, translator, registry, reports;
* :mod:`repro.baselines`, :mod:`repro.datasets`, :mod:`repro.metrics` — the
  evaluation harness.
"""

from .core import (
    BatchResolution,
    DeltaStatistics,
    ResolutionResult,
    ResolutionSession,
    ResolutionStatistics,
    TeCoRe,
    available_solvers,
    detect_conflicts,
    render_graph_summary,
    render_report,
    resolve,
    resolve_batch,
)
from .errors import TecoreError
from .kg import IRI, Literal, TemporalFact, TemporalKnowledgeGraph, make_fact
from .logic import (
    ConstraintBuilder,
    ConstraintEditor,
    RuleBuilder,
    TemporalConstraint,
    TemporalRule,
    parse_constraint,
    parse_program,
    parse_rule,
)
from .temporal import AllenRelation, TimeDomain, TimeInterval

__version__ = "1.0.0"

__all__ = [
    "AllenRelation",
    "BatchResolution",
    "ConstraintBuilder",
    "ConstraintEditor",
    "DeltaStatistics",
    "IRI",
    "Literal",
    "ResolutionResult",
    "ResolutionSession",
    "ResolutionStatistics",
    "RuleBuilder",
    "TeCoRe",
    "TecoreError",
    "TemporalConstraint",
    "TemporalFact",
    "TemporalKnowledgeGraph",
    "TemporalRule",
    "TimeDomain",
    "TimeInterval",
    "__version__",
    "available_solvers",
    "detect_conflicts",
    "make_fact",
    "parse_constraint",
    "parse_program",
    "parse_rule",
    "render_graph_summary",
    "render_report",
    "resolve",
    "resolve_batch",
]
