"""PSL programs (template level) — the nPSL front of TeCoRe.

PSL restricts "the expressivity of the rules and constraints" to gain
scalability: rules must have conjunctive bodies (which every
:class:`~repro.logic.rule.TemporalRule` has by construction) and formulas are
interpreted over soft truth values.  The temporal/numerical extension the
paper calls **nPSL** is the ability to evaluate Allen and arithmetic
conditions during grounding — shared with the MLN path through
:mod:`repro.logic.grounding`.

This module mirrors :mod:`repro.mln.model` at the template level and performs
the PSL-specific expressivity validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ExpressivityError
from ..kg import TemporalKnowledgeGraph
from ..logic import Grounder, GroundingResult, TemporalConstraint, TemporalRule
from ..solvers import PSL_CAPABILITIES, check_expressivity


@dataclass
class PSLProgram:
    """A template PSL program: rules + constraints with PSL's restrictions."""

    rules: list[TemporalRule] = field(default_factory=list)
    constraints: list[TemporalConstraint] = field(default_factory=list)
    max_rounds: int = 5
    squared_hinges: bool = False

    # ------------------------------------------------------------------ #
    def add_rule(self, rule: TemporalRule) -> "PSLProgram":
        self._validate_rule(rule)
        self.rules.append(rule)
        return self

    def add_constraint(self, constraint: TemporalConstraint) -> "PSLProgram":
        self.constraints.append(constraint)
        return self

    def extend(
        self,
        rules: Iterable[TemporalRule] = (),
        constraints: Iterable[TemporalConstraint] = (),
    ) -> "PSLProgram":
        for rule in rules:
            self.add_rule(rule)
        for constraint in constraints:
            self.add_constraint(constraint)
        return self

    @property
    def num_formulas(self) -> int:
        return len(self.rules) + len(self.constraints)

    # ------------------------------------------------------------------ #
    def _validate_rule(self, rule: TemporalRule) -> None:
        """PSL rules must have conjunctive bodies and a single head atom.

        ``TemporalRule`` already guarantees this structurally, so the check
        mostly guards against future extensions (e.g. disjunctive heads).
        """
        if not rule.body:
            raise ExpressivityError(f"PSL rule {rule.name} must have a non-empty body")

    def ground(self, graph: TemporalKnowledgeGraph) -> GroundingResult:
        """Ground against the evidence UTKG and verify PSL expressivity."""
        grounder = Grounder(
            graph, rules=self.rules, constraints=self.constraints, max_rounds=self.max_rounds
        )
        result = grounder.ground()
        check_expressivity(result.program, PSL_CAPABILITIES)
        return result

    def __repr__(self) -> str:
        return f"PSLProgram(rules={len(self.rules)}, constraints={len(self.constraints)})"
