"""Hinge-loss Markov random fields (HL-MRFs).

A HL-MRF defines a density over continuous variables ``y ∈ [0, 1]ⁿ``:

    P(y) ∝ exp( − Σₖ wₖ · max(0, ℓₖ(y))^{pₖ} )

with linear functions ``ℓₖ``.  MAP inference is the convex program of
minimising the weighted sum of hinges subject to the hard constraints being
exactly satisfied.  This module builds the HL-MRF for a ground program and
evaluates its energy; the actual optimisation lives in
:mod:`repro.psl.admm` and :mod:`repro.psl.projected_gradient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import SolverError
from ..logic.ground import GroundProgram
from .lukasiewicz import HingePotential, program_to_potentials, total_penalty


@dataclass
class HingeLossMRF:
    """The ground HL-MRF of a program: potentials over ``[0,1]`` variables."""

    num_variables: int
    potentials: list[HingePotential] = field(default_factory=list)

    @classmethod
    def from_program(
        cls,
        program: GroundProgram,
        hard_weight: float = 1_000.0,
        squared: bool = False,
    ) -> "HingeLossMRF":
        """Build the HL-MRF for ``program``.

        ``squared`` switches the soft potentials to squared hinges (PSL's
        default is linear; squared trades sparsity of the solution for
        smoothness).  Hard clauses always stay linear so feasibility is a
        polyhedral condition.
        """
        potentials = program_to_potentials(program, hard_weight=hard_weight, squared=False)
        if squared:
            potentials = [
                HingePotential(
                    indexes=potential.indexes,
                    coefficients=potential.coefficients,
                    constant=potential.constant,
                    weight=potential.weight,
                    hard=potential.hard,
                    squared=not potential.hard,
                    origin=potential.origin,
                )
                for potential in potentials
            ]
        return cls(num_variables=program.num_atoms, potentials=potentials)

    # ------------------------------------------------------------------ #
    def soft_potentials(self) -> list[HingePotential]:
        return [potential for potential in self.potentials if not potential.hard]

    def hard_potentials(self) -> list[HingePotential]:
        return [potential for potential in self.potentials if potential.hard]

    def energy(self, truth_values: Sequence[float]) -> float:
        """Total weighted distance to satisfaction (lower is better)."""
        self._check_state(truth_values)
        return total_penalty(self.potentials, truth_values)

    def soft_energy(self, truth_values: Sequence[float]) -> float:
        """Weighted distance of the *soft* potentials only."""
        self._check_state(truth_values)
        return total_penalty(self.soft_potentials(), truth_values)

    def hard_violation(self, truth_values: Sequence[float]) -> float:
        """Maximum distance to satisfaction over the hard potentials."""
        self._check_state(truth_values)
        hard = self.hard_potentials()
        if not hard:
            return 0.0
        return max(potential.distance(truth_values) for potential in hard)

    def is_feasible(self, truth_values: Sequence[float], tolerance: float = 1e-6) -> bool:
        """True when every hard potential is (numerically) satisfied."""
        return self.hard_violation(truth_values) <= tolerance

    def initial_state(self) -> np.ndarray:
        """Starting point for the optimisers: everything fully true."""
        return np.ones(self.num_variables, dtype=float)

    def _check_state(self, truth_values: Sequence[float]) -> None:
        if len(truth_values) != self.num_variables:
            raise SolverError(
                f"state has {len(truth_values)} values for {self.num_variables} variables"
            )
