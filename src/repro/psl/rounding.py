"""Rounding continuous PSL truth values back to a discrete world.

PSL "computes a soft approximation of the discrete MAP state" (paper,
Section 3): the convex program yields truth values in ``[0, 1]``, which TeCoRe
must turn back into a conflict-free KG.  The procedure here is the standard
one:

1. threshold the soft values at 0.5;
2. repair any hard clause still violated by greedily flipping, inside each
   violated clause, the literal whose flip sacrifices the least evidence
   weight (for conflict clauses this means dropping the least confident
   fact — exactly the behaviour of the running example, where the weaker
   Napoli fact is removed).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InfeasibleProgramError
from ..logic.ground import GroundProgram


def threshold(truth_values: Sequence[float], cutoff: float = 0.5) -> list[bool]:
    """Plain thresholding of soft truth values."""
    return [float(value) >= cutoff for value in truth_values]


def repair_hard(program: GroundProgram, assignment: list[bool]) -> list[bool]:
    """Greedily repair hard-clause violations in ``assignment``.

    For each violated hard clause (taken in order) flip the literal whose atom
    carries the smallest absolute evidence weight.  Conflict clauses are
    all-negative, so a flip always satisfies the clause; the loop therefore
    terminates after at most one pass per clause.
    """
    state = list(assignment)
    for _ in range(program.num_clauses + 1):
        violations = program.hard_violations(state)
        if not violations:
            return state
        clause = violations[0]
        best_index = None
        best_cost = float("inf")
        for index, positive in clause.literals:
            cost = abs(program.atoms[index].fact.log_weight)
            if cost < best_cost:
                best_index, best_cost = index, cost
        if best_index is None:  # pragma: no cover - clauses are never empty
            break
        for index, positive in clause.literals:
            if index == best_index:
                state[index] = positive
                break
    if program.hard_violations(state):
        raise InfeasibleProgramError(
            "rounding could not produce an assignment satisfying the hard constraints"
        )
    return state


def round_solution(
    program: GroundProgram, truth_values: Sequence[float], cutoff: float = 0.5
) -> tuple[bool, ...]:
    """Threshold + hard repair, returning the final Boolean assignment."""
    assignment = threshold(truth_values, cutoff=cutoff)
    assignment = repair_hard(program, assignment)
    return tuple(assignment)
