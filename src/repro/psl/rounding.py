"""Rounding continuous PSL truth values back to a discrete world.

PSL "computes a soft approximation of the discrete MAP state" (paper,
Section 3): the convex program yields truth values in ``[0, 1]``, which TeCoRe
must turn back into a conflict-free KG.  The procedure here is the standard
one:

1. threshold the soft values at 0.5;
2. repair any hard clause still violated by greedily flipping, inside each
   violated clause, the literal whose flip sacrifices the least evidence
   weight (for conflict clauses this means dropping the least confident
   fact — exactly the behaviour of the running example, where the weaker
   Napoli fact is removed).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InfeasibleProgramError
from ..logic.ground import GroundProgram


def threshold(truth_values: Sequence[float], cutoff: float = 0.5) -> list[bool]:
    """Plain thresholding of soft truth values."""
    return [float(value) >= cutoff for value in truth_values]


def repair_hard(program: GroundProgram, assignment: list[bool]) -> list[bool]:
    """Greedily repair hard-clause violations in ``assignment``.

    For each violated hard clause (taken in order), flip the literal that
    leaves the fewest hard clauses violated afterwards, breaking ties toward
    the atom carrying the smallest absolute evidence weight (for conflict
    clauses this means dropping the least confident fact — exactly the
    behaviour of the running example, where the weaker Napoli fact is
    removed).  A violated clause has every literal falsified, so any flip
    satisfies it; minimising the *resulting* violation count is what keeps
    two hard clauses that share an atom with opposite satisfying polarities
    from ping-ponging that atom until the iteration bound.
    """
    state = list(assignment)
    # Atom → hard clauses containing it: a candidate flip only changes the
    # satisfaction of these, so the resulting violation count is evaluated
    # as a delta instead of rescanning the whole clause table per literal.
    touching: dict[int, list] = {}
    for clause in program.clauses:
        if clause.is_hard:
            for index, _ in clause.literals:
                touching.setdefault(index, []).append(clause)
    for _ in range(program.num_clauses + 1):
        violations = program.hard_violations(state)
        if not violations:
            return state
        total = len(violations)
        clause = violations[0]
        best = None
        best_key = None
        for index, positive in clause.literals:
            neighbours = touching.get(index, ())
            before = sum(1 for other in neighbours if not other.satisfied_by(state))
            state[index] = positive
            after = sum(1 for other in neighbours if not other.satisfied_by(state))
            state[index] = not positive
            cost = abs(program.atoms[index].fact.log_weight)
            key = (total - before + after, cost, index)
            if best_key is None or key < best_key:
                best, best_key = (index, positive), key
        if best is None:  # pragma: no cover - clauses are never empty
            break
        state[best[0]] = best[1]
    if program.hard_violations(state):
        raise InfeasibleProgramError(
            "rounding could not produce an assignment satisfying the hard constraints"
        )
    return state


def round_solution(
    program: GroundProgram, truth_values: Sequence[float], cutoff: float = 0.5
) -> tuple[bool, ...]:
    """Threshold + hard repair, returning the final Boolean assignment."""
    assignment = threshold(truth_values, cutoff=cutoff)
    assignment = repair_hard(program, assignment)
    return tuple(assignment)
