"""Łukasiewicz relaxation of ground clauses.

PSL interprets logical formulas over soft truth values in ``[0, 1]`` using the
Łukasiewicz t-(co)norms.  A ground clause ``l₁ ∨ … ∨ lₖ`` has truth value
``min(1, Σ value(lᵢ))`` and its *distance to satisfaction* is the hinge

    d(y) = max(0, 1 − Σ_{i∈C⁺} yᵢ − Σ_{i∈C⁻} (1 − yᵢ))
         = max(0, coefficients · y + constant)

which is the linear hinge potential of the corresponding hinge-loss Markov
random field.  This module converts ground clauses into those potentials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..logic.arrays import GroundProgramArrays
from ..logic.ground import GroundClause, GroundProgram


@dataclass(frozen=True, slots=True)
class HingePotential:
    """One hinge-loss potential ``weight · max(0, coefficients·y + constant)ᵖ``.

    ``indexes``/``coefficients`` give the sparse linear form; ``hard`` marks
    potentials that must be exactly zero at a feasible point (the relaxation
    of hard clauses).  ``squared`` selects the squared hinge (p = 2).
    """

    indexes: tuple[int, ...]
    coefficients: tuple[float, ...]
    constant: float
    weight: float
    hard: bool
    squared: bool = False
    origin: str = ""

    def distance(self, truth_values: Sequence[float]) -> float:
        """Distance to satisfaction at ``truth_values``."""
        total = self.constant
        for index, coefficient in zip(self.indexes, self.coefficients):
            total += coefficient * truth_values[index]
        value = max(0.0, total)
        return value * value if self.squared else value

    def penalty(self, truth_values: Sequence[float]) -> float:
        """Weighted distance (the potential's contribution to the MAP objective)."""
        return self.weight * self.distance(truth_values)

    def subgradient(self, truth_values: Sequence[float]) -> dict[int, float]:
        """Sparse subgradient of the *weighted* potential at ``truth_values``."""
        total = self.constant
        for index, coefficient in zip(self.indexes, self.coefficients):
            total += coefficient * truth_values[index]
        if total <= 0.0:
            return {}
        scale = self.weight * (2.0 * total if self.squared else 1.0)
        return {
            index: scale * coefficient
            for index, coefficient in zip(self.indexes, self.coefficients)
        }


def clause_to_potential(
    clause: GroundClause, hard_weight: float, squared: bool = False
) -> HingePotential:
    """Convert one ground clause into its Łukasiewicz hinge potential."""
    indexes: list[int] = []
    coefficients: list[float] = []
    constant = 1.0
    for index, positive in clause.literals:
        indexes.append(index)
        if positive:
            coefficients.append(-1.0)
        else:
            coefficients.append(1.0)
            constant -= 1.0
    return HingePotential(
        indexes=tuple(indexes),
        coefficients=tuple(coefficients),
        constant=constant,
        weight=hard_weight if clause.is_hard else float(clause.weight or 0.0),
        hard=clause.is_hard,
        squared=squared,
        origin=clause.origin,
    )


def program_to_potentials(
    program: GroundProgram, hard_weight: float = 1_000.0, squared: bool = False
) -> list[HingePotential]:
    """Convert every ground clause of ``program`` into a hinge potential."""
    return [clause_to_potential(clause, hard_weight, squared) for clause in program.clauses]


def total_penalty(potentials: Sequence[HingePotential], truth_values: Sequence[float]) -> float:
    """Σ weight·distance over all potentials (the HL-MRF energy)."""
    return float(sum(potential.penalty(truth_values) for potential in potentials))


def dense_subgradient(potentials: Sequence[HingePotential], truth_values: np.ndarray) -> np.ndarray:
    """Dense subgradient of the total penalty (for the projected-gradient solver)."""
    gradient = np.zeros_like(truth_values)
    for potential in potentials:
        for index, value in potential.subgradient(truth_values).items():
            gradient[index] += value
    return gradient


class PotentialMatrix:
    """Vectorised (flat-array) view of a set of hinge potentials.

    Both PSL optimisers iterate many times over all potentials; doing that in
    Python is what makes naive implementations slow.  This helper flattens the
    sparse potential structure into numpy arrays once, so each iteration is a
    handful of vectorised operations:

    * ``literal_potential`` / ``literal_variable`` / ``literal_coefficient`` —
      one entry per (potential, variable) incidence;
    * ``constants`` / ``weights`` / ``hard`` / ``squared`` / ``norms`` — one
      entry per potential.
    """

    def __init__(self, potentials: Sequence[HingePotential], num_variables: int) -> None:
        self.potentials = list(potentials)
        self.num_variables = num_variables
        self.num_potentials = len(self.potentials)
        literal_potential: list[int] = []
        literal_variable: list[int] = []
        literal_coefficient: list[float] = []
        for position, potential in enumerate(self.potentials):
            for index, coefficient in zip(potential.indexes, potential.coefficients):
                literal_potential.append(position)
                literal_variable.append(index)
                literal_coefficient.append(coefficient)
        self.literal_potential = np.asarray(literal_potential, dtype=np.int64)
        self.literal_variable = np.asarray(literal_variable, dtype=np.int64)
        self.literal_coefficient = np.asarray(literal_coefficient, dtype=float)
        self.constants = np.asarray(
            [potential.constant for potential in self.potentials], dtype=float
        )
        self.weights = np.asarray([potential.weight for potential in self.potentials], dtype=float)
        self.hard = np.asarray([potential.hard for potential in self.potentials], dtype=bool)
        self.squared = np.asarray([potential.squared for potential in self.potentials], dtype=bool)
        self.norms = np.bincount(
            self.literal_potential,
            weights=self.literal_coefficient**2,
            minlength=self.num_potentials,
        )
        #: How many potentials touch each variable (for consensus averaging).
        self.variable_counts = np.bincount(
            self.literal_variable, minlength=num_variables
        ).astype(float)

    @classmethod
    def from_arrays(
        cls,
        arrays: GroundProgramArrays,
        hard_weight: float = 1_000.0,
        squared: bool = False,
    ) -> "PotentialMatrix":
        """Build the flat-array view straight from :class:`GroundProgramArrays`.

        This skips the per-clause :class:`HingePotential` object explosion
        entirely: every field is derived from the CSR blocks with the same
        values, in the same order, as ``PotentialMatrix(program_to_potentials
        (program, ...), ...)`` would produce — so the downstream optimisers
        are bit-identical between the object and array paths.  ``squared``
        follows :meth:`HingeLossMRF.from_program`: soft potentials switch to
        squared hinges, hard potentials always stay linear.  The
        ``potentials`` object list is empty on this path.
        """
        matrix = cls.__new__(cls)
        matrix.potentials = []
        matrix.num_variables = arrays.num_atoms
        matrix.num_potentials = arrays.num_clauses
        matrix.literal_potential = arrays.literal_clauses
        matrix.literal_variable = arrays.literal_atoms
        # Positive literal → coefficient −1; negative → +1 and the constant
        # drops by 1 (the clause_to_potential normalisation, vectorized).
        matrix.literal_coefficient = np.where(arrays.literal_signs, -1.0, 1.0)
        negatives = np.bincount(
            arrays.literal_clauses,
            weights=(~arrays.literal_signs).astype(float),
            minlength=arrays.num_clauses,
        )
        matrix.constants = 1.0 - negatives
        matrix.weights = np.where(arrays.is_hard, hard_weight, arrays.weights)
        matrix.hard = arrays.is_hard.copy()
        matrix.squared = ~arrays.is_hard if squared else np.zeros(arrays.num_clauses, dtype=bool)
        matrix.norms = np.bincount(
            matrix.literal_potential,
            weights=matrix.literal_coefficient**2,
            minlength=matrix.num_potentials,
        )
        matrix.variable_counts = np.bincount(
            matrix.literal_variable, minlength=matrix.num_variables
        ).astype(float)
        return matrix

    def values(self, truth_values: np.ndarray) -> np.ndarray:
        """Per-potential linear values ``cᵀy + b``."""
        if self.num_potentials == 0:
            return np.zeros(0)
        products = self.literal_coefficient * truth_values[self.literal_variable]
        return (
            np.bincount(self.literal_potential, weights=products, minlength=self.num_potentials)
            + self.constants
        )

    def penalties(self, truth_values: np.ndarray) -> np.ndarray:
        """Per-potential weighted hinge losses."""
        hinges = np.maximum(0.0, self.values(truth_values))
        hinges = np.where(self.squared, hinges**2, hinges)
        return self.weights * hinges

    def subgradient(self, truth_values: np.ndarray) -> np.ndarray:
        """Dense subgradient of the total weighted penalty."""
        values = self.values(truth_values)
        active = values > 0.0
        scale = np.where(self.squared, 2.0 * values, 1.0) * self.weights * active
        per_literal = scale[self.literal_potential] * self.literal_coefficient
        return np.bincount(self.literal_variable, weights=per_literal, minlength=self.num_variables)
