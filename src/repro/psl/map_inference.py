"""MAP inference driver for the PSL path."""

from __future__ import annotations

from functools import partial
from typing import Callable

from ..errors import SolverNotAvailableError
from ..logic.ground import GroundProgram
from ..solvers import (
    MAPSolution,
    MAPSolver,
    check_expressivity,
    instantiate_solver,
    wrap_decomposed,
)
from .admm import ADMMSolver, ArrayADMMSolver
from .projected_gradient import ProjectedGradientSolver

#: Back-end registry: name → zero-argument factory.  ``admm-array`` runs the
#: same ADMM over a potential matrix lowered from the columnar arrays
#: (bit-identical iterates); ``admm`` stays as the differential baseline.
BACKENDS: dict[str, Callable[[], MAPSolver]] = {
    "admm": ADMMSolver,
    "admm-array": ArrayADMMSolver,
    "projected-gradient": ProjectedGradientSolver,
}

#: The canonical PSL optimiser.
DEFAULT_BACKEND = "admm"


def available_backends() -> list[str]:
    """Names of all PSL MAP back-ends."""
    return sorted(BACKENDS)


def make_solver(backend: str = DEFAULT_BACKEND, **kwargs) -> MAPSolver:
    """Instantiate a PSL back-end by name."""
    factory = BACKENDS.get(backend)
    if factory is None:
        raise SolverNotAvailableError(
            f"unknown PSL back-end {backend!r}; available: {available_backends()}"
        )
    return instantiate_solver(factory, f"PSL back-end {backend!r}", **kwargs)


def solve_map(
    program: GroundProgram,
    backend: str = DEFAULT_BACKEND,
    validate: bool = True,
    decompose: bool = False,
    jobs: int = 1,
    **kwargs,
) -> MAPSolution:
    """Run PSL MAP inference on ``program`` with the chosen back-end.

    ``decompose`` optimises the connected components of the hinge-loss MRF
    independently with ``jobs`` worker processes (1 = sequential); the
    components never share a potential, so the relaxation factorises.
    """
    solver = wrap_decomposed(partial(make_solver, backend, **kwargs), decompose, jobs)
    if validate:
        check_expressivity(program, solver.capabilities)
    return solver.solve(program)
