"""Probabilistic Soft Logic engine over hinge-loss MRFs (the nPSL path)."""

from .admm import ADMMSolver, ArrayADMMSolver
from .hlmrf import HingeLossMRF
from .lukasiewicz import (
    HingePotential,
    PotentialMatrix,
    clause_to_potential,
    program_to_potentials,
    total_penalty,
)
from .map_inference import (
    BACKENDS,
    DEFAULT_BACKEND,
    available_backends,
    make_solver,
    solve_map,
)
from .model import PSLProgram
from .projected_gradient import ProjectedGradientSolver
from .rounding import repair_hard, round_solution, threshold

__all__ = [
    "ADMMSolver",
    "ArrayADMMSolver",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "HingeLossMRF",
    "HingePotential",
    "PSLProgram",
    "PotentialMatrix",
    "ProjectedGradientSolver",
    "available_backends",
    "clause_to_potential",
    "make_solver",
    "program_to_potentials",
    "repair_hard",
    "round_solution",
    "solve_map",
    "threshold",
    "total_penalty",
]
