"""Consensus ADMM for HL-MRF MAP inference.

This is the optimisation algorithm of the PSL reference implementation
(Bach et al., 2015): every hinge potential gets a local copy of the variables
it touches, an augmented-Lagrangian term ties the copies to a global consensus
vector, and the three ADMM steps alternate until the primal and dual residuals
are small:

1. **local step** — each potential minimises
   ``w·max(0, cᵀy + b) + (ρ/2)·‖y − (z − u)‖²`` in closed form;
2. **consensus step** — ``z`` is the average of ``y + u`` over the potentials
   touching each variable, clipped to ``[0, 1]``;
3. **dual step** — ``u ← u + y − z``.

Hard potentials are handled as indicator functions (projection onto the
half-space ``cᵀy + b ≤ 0``).
"""

from __future__ import annotations

import time

import numpy as np

from ..logic.ground import GroundProgram
from ..solvers import MAPSolution, MAPSolver, PSL_CAPABILITIES, SolverCapabilities, SolverStats
from .hlmrf import HingeLossMRF
from .rounding import round_solution


class ADMMSolver(MAPSolver):
    """The nPSL MAP solver: consensus ADMM over the hinge-loss MRF.

    Parameters
    ----------
    rho:
        Augmented-Lagrangian penalty (step size).
    max_iterations:
        Iteration cap.
    tolerance:
        Convergence threshold on the primal and dual residual norms.
    squared:
        Use squared hinges for soft potentials.
    hard_weight:
        Only used when rounding needs to rank residual conflicts.
    """

    name = "npsl-admm"
    supports_warm_start = True

    def __init__(
        self,
        rho: float = 1.0,
        max_iterations: int = 500,
        tolerance: float = 1e-4,
        squared: bool = False,
        hard_weight: float = 1_000.0,
    ) -> None:
        self.rho = rho
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.squared = squared
        self.hard_weight = hard_weight

    @property
    def capabilities(self) -> SolverCapabilities:
        return PSL_CAPABILITIES

    # ------------------------------------------------------------------ #
    def solve(self, program: GroundProgram, warm_start=None) -> MAPSolution:
        started = time.perf_counter()
        mrf = HingeLossMRF.from_program(program, hard_weight=self.hard_weight, squared=self.squared)
        initial = None
        if warm_start is not None and len(warm_start) == program.num_atoms:
            # Warm start: seed the consensus vector with the previous soft
            # truth values so ADMM begins near the old optimum.
            initial = np.clip(np.asarray(warm_start, dtype=float), 0.0, 1.0)
        truth_values, iterations = self._optimise(mrf, initial=initial)
        assignment = round_solution(program, truth_values)
        elapsed = time.perf_counter() - started
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=iterations,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=False,
            objective_bound=float(program.max_soft_weight() - mrf.soft_energy(truth_values)),
        )
        return MAPSolution(
            assignment=assignment,
            objective=program.objective(assignment),
            stats=stats,
            truth_values=tuple(float(value) for value in truth_values),
        )

    # ------------------------------------------------------------------ #
    # ADMM machinery (vectorised across potentials)
    # ------------------------------------------------------------------ #
    def _optimise(
        self, mrf: HingeLossMRF, initial: np.ndarray | None = None
    ) -> tuple[np.ndarray, int]:
        from .lukasiewicz import PotentialMatrix

        consensus = initial.copy() if initial is not None else mrf.initial_state()
        if not mrf.potentials:
            return consensus, 0
        matrix = PotentialMatrix(mrf.potentials, mrf.num_variables)
        return self._admm(matrix, consensus)

    def _admm(self, matrix: "PotentialMatrix", consensus: np.ndarray) -> tuple[np.ndarray, int]:
        """Run the ADMM iterations over a prebuilt :class:`PotentialMatrix`.

        The loop touches only the matrix's flat arrays, so object-built and
        array-lowered matrices with equal contents produce bit-identical
        iterates (the array solver relies on this for its differential
        guarantee).
        """
        if matrix.num_potentials == 0:
            return consensus, 0

        # Flat per-literal state: each potential's local copy of the variables
        # it touches, plus the corresponding scaled dual variables.
        num_literals = matrix.literal_variable.shape[0]
        local = consensus[matrix.literal_variable].copy()
        duals = np.zeros(num_literals, dtype=float)
        counts = np.maximum(matrix.variable_counts, 1.0)
        norms = np.maximum(matrix.norms, 1e-12)
        weights = matrix.weights

        iterations_run = 0
        for iteration in range(1, self.max_iterations + 1):
            iterations_run = iteration

            # 1. Local steps: y_k = v_k − scale_k · c_k with v_k = z_k − u_k.
            reference = consensus[matrix.literal_variable] - duals
            reference_values = (
                np.bincount(
                    matrix.literal_potential,
                    weights=matrix.literal_coefficient * reference,
                    minlength=matrix.num_potentials,
                )
                + matrix.constants
            )
            projection_scale = reference_values / norms
            # Linear hinge interior candidate: scale = w/ρ, valid only while the
            # hinge stays active there; otherwise project onto the boundary.
            interior_scale = weights / self.rho
            interior_values = reference_values - interior_scale * norms
            linear_case = np.where(interior_values >= 0.0, interior_scale, projection_scale)
            squared_case = (2.0 * weights * reference_values) / (self.rho + 2.0 * weights * norms)
            scale = np.where(
                matrix.hard, projection_scale, np.where(matrix.squared, squared_case, linear_case)
            )
            scale = np.where(reference_values <= 0.0, 0.0, scale)
            local = reference - scale[matrix.literal_potential] * matrix.literal_coefficient

            # 2. Consensus step: average of (local + dual) per variable, clipped.
            previous_consensus = consensus.copy()
            accumulator = np.bincount(
                matrix.literal_variable, weights=local + duals, minlength=matrix.num_variables
            )
            consensus = np.clip(accumulator / counts, 0.0, 1.0)

            # 3. Dual updates and residuals (standard ADMM absolute+relative
            # stopping criteria, so convergence detection scales with problem
            # size instead of requiring the full iteration budget).
            consensus_slice = consensus[matrix.literal_variable]
            difference = local - consensus_slice
            duals += difference
            primal_residual = float(np.linalg.norm(difference))
            dual_residual = float(self.rho * np.linalg.norm(consensus - previous_consensus))
            size = np.sqrt(max(num_literals, 1))
            primal_epsilon = size * self.tolerance + 1e-3 * max(
                float(np.linalg.norm(local)), float(np.linalg.norm(consensus_slice))
            )
            dual_epsilon = size * self.tolerance + 1e-3 * float(self.rho * np.linalg.norm(duals))
            if primal_residual < primal_epsilon and dual_residual < dual_epsilon:
                break
        return consensus, iterations_run


class ArrayADMMSolver(ADMMSolver):
    """ADMM over a :class:`PotentialMatrix` lowered directly from the
    columnar ground-program arrays.

    Identical optimisation to :class:`ADMMSolver` — the matrix holds the
    same values in the same order (see :meth:`PotentialMatrix.from_arrays`),
    and the shared :meth:`_admm` loop only reads those arrays — so the
    consensus iterates, final truth values, and rounded assignment are
    bit-identical to the object path.  What changes is construction cost:
    no per-clause ``HingePotential`` objects, no Python flattening loops.
    """

    name = "npsl-admm-array"
    supports_warm_start = True

    def solve(self, program: GroundProgram, warm_start=None) -> MAPSolution:
        from ..logic.arrays import GroundProgramArrays
        from .lukasiewicz import PotentialMatrix

        started = time.perf_counter()
        arrays = GroundProgramArrays.from_program(program)
        matrix = PotentialMatrix.from_arrays(
            arrays, hard_weight=self.hard_weight, squared=self.squared
        )
        if warm_start is not None and len(warm_start) == program.num_atoms:
            consensus = np.clip(np.asarray(warm_start, dtype=float), 0.0, 1.0)
        else:
            consensus = np.ones(program.num_atoms, dtype=float)
        truth_values, iterations = self._admm(matrix, consensus)
        assignment = round_solution(program, truth_values)
        elapsed = time.perf_counter() - started
        soft_energy = float(matrix.penalties(truth_values)[~matrix.hard].sum())
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=iterations,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=False,
            objective_bound=float(program.max_soft_weight() - soft_energy),
        )
        return MAPSolution(
            assignment=assignment,
            objective=arrays.objective(assignment),
            stats=stats,
            truth_values=tuple(float(value) for value in truth_values),
        )
