"""Projected subgradient descent for HL-MRF MAP inference.

A simpler (and often perfectly adequate) alternative to ADMM: minimise the
total weighted hinge loss by subgradient steps with a diminishing step size,
projecting onto the box ``[0, 1]ⁿ`` after every step.  Hard potentials are
folded in with a large weight; the returned point is the best (lowest-energy)
iterate seen.
"""

from __future__ import annotations

import time

import numpy as np

from ..logic.ground import GroundProgram
from ..solvers import MAPSolution, MAPSolver, PSL_CAPABILITIES, SolverCapabilities, SolverStats
from .hlmrf import HingeLossMRF
from .lukasiewicz import PotentialMatrix
from .rounding import round_solution


class ProjectedGradientSolver(MAPSolver):
    """Projected subgradient descent over the hinge-loss MRF energy."""

    name = "npsl-pgd"

    def __init__(
        self,
        max_iterations: int = 400,
        step_size: float = 0.1,
        tolerance: float = 1e-6,
        hard_weight: float = 1_000.0,
        squared: bool = False,
    ) -> None:
        self.max_iterations = max_iterations
        self.step_size = step_size
        self.tolerance = tolerance
        self.hard_weight = hard_weight
        self.squared = squared

    @property
    def capabilities(self) -> SolverCapabilities:
        return PSL_CAPABILITIES

    def solve(self, program: GroundProgram) -> MAPSolution:
        started = time.perf_counter()
        mrf = HingeLossMRF.from_program(program, hard_weight=self.hard_weight, squared=self.squared)
        matrix = PotentialMatrix(mrf.potentials, mrf.num_variables)
        state = mrf.initial_state()
        best_state = state.copy()
        best_energy = float(matrix.penalties(state).sum()) if mrf.potentials else 0.0
        iterations_run = 0

        for iteration in range(1, self.max_iterations + 1):
            iterations_run = iteration
            gradient = matrix.subgradient(state)
            gradient_norm = float(np.linalg.norm(gradient))
            if gradient_norm <= self.tolerance:
                break
            step = self.step_size / np.sqrt(iteration)
            state = np.clip(state - step * gradient / max(gradient_norm, 1.0), 0.0, 1.0)
            energy = float(matrix.penalties(state).sum())
            if energy < best_energy - 1e-12:
                best_energy = energy
                best_state = state.copy()

        assignment = round_solution(program, best_state)
        elapsed = time.perf_counter() - started
        stats = SolverStats(
            solver=self.name,
            runtime_seconds=elapsed,
            iterations=iterations_run,
            atoms=program.num_atoms,
            clauses=program.num_clauses,
            optimal=False,
        )
        return MAPSolution(
            assignment=assignment,
            objective=program.objective(assignment),
            stats=stats,
            truth_values=tuple(float(value) for value in best_state),
        )
