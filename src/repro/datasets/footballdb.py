"""Synthetic FootballDB generator.

The paper's FootballDB dataset was crawled from footballdb.com and "contains
two important relations: playsFor and birthDate", with ">13K temporal facts
for the playsFor relation and >6K facts for the birthDate relation".  The
crawl is not available offline; this generator produces a synthetic dataset
with the same schema, the same relative cardinalities (roughly two playsFor
career segments per player), realistic career timelines, and — when a noise
ratio is requested — the paper's "highly noisy setting" in which erroneous
facts are planted deterministically and remembered as ground truth.

At ``scale=1.0`` the generator matches the paper's reported sizes
(≈6.5K players ⇒ >6K birthDate and >13K playsFor facts); smaller scales keep
the same shape for quick tests and benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import ClassVar

from ..errors import DatasetError
from ..kg import TemporalKnowledgeGraph, make_fact
from ..temporal import TimeDomain, TimeInterval
from .noise import NoisyDataset, inject_order_noise, inject_overlap_noise, inject_value_noise

#: Team pool: synthetic franchise names (the constraint checks only need
#: distinct identifiers, not real rosters).
TEAM_NAMES: tuple[str, ...] = tuple(
    f"Team{city}"
    for city in (
        "Austin", "Boston", "Chicago", "Dallas", "Denver", "Detroit", "Houston",
        "Indianapolis", "Jacksonville", "KansasCity", "LasVegas", "LosAngeles",
        "Miami", "Minneapolis", "Nashville", "NewOrleans", "NewYork", "Oakland",
        "Philadelphia", "Phoenix", "Pittsburgh", "Portland", "Sacramento",
        "SanDiego", "SanFrancisco", "Seattle", "StLouis", "TampaBay",
        "Washington", "Cleveland", "Cincinnati", "Buffalo",
    )
)

#: Default time domain for football careers.
FOOTBALL_DOMAIN = TimeDomain(1940, 2020, granularity="year")


@dataclass(frozen=True, slots=True)
class FootballDBConfig:
    """Generator parameters.

    Attributes
    ----------
    scale:
        1.0 reproduces the paper's cardinalities (>6K players); 0.01 gives a
        laptop-quick 65-player graph with the same shape.
    players:
        Explicit player count; overrides ``scale`` when given.
    noise_ratio:
        Fraction of *additional* erroneous facts relative to the clean fact
        count (1.0 = "as many erroneous facts as correct ones").
    segments_mean:
        Average number of playsFor career segments per player.
    seed:
        RNG seed — generation is fully deterministic.
    """

    scale: float = 0.01
    players: int | None = None
    noise_ratio: float = 0.0
    segments_mean: float = 2.1
    seed: int = 2017

    #: Player count at scale 1.0 (gives >6K birthDate and >13K playsFor facts).
    FULL_SCALE_PLAYERS: ClassVar[int] = 6_500

    def player_count(self) -> int:
        if self.players is not None:
            return self.players
        return max(1, int(round(self.FULL_SCALE_PLAYERS * self.scale)))


def generate_footballdb(config: FootballDBConfig | None = None) -> NoisyDataset:
    """Generate a synthetic FootballDB UTKG (optionally with planted noise)."""
    config = config or FootballDBConfig()
    if config.noise_ratio < 0:
        raise DatasetError("noise_ratio must be non-negative")
    rng = random.Random(config.seed)
    graph = TemporalKnowledgeGraph(name="footballdb", domain=FOOTBALL_DOMAIN)

    players = config.player_count()
    for player_index in range(players):
        player = f"Player{player_index:05d}"
        birth_year = rng.randint(1950, 1995)
        graph.add(
            make_fact(
                player,
                "birthDate",
                birth_year,
                TimeInterval(birth_year, FOOTBALL_DOMAIN.end),
                round(rng.uniform(0.85, 1.0), 2),
            )
        )
        # Career: consecutive, non-overlapping segments starting at age 18-23.
        segments = max(1, int(round(rng.gauss(config.segments_mean, 0.8))))
        year = birth_year + rng.randint(18, 23)
        for _ in range(segments):
            if year >= FOOTBALL_DOMAIN.end - 1:
                break
            duration = rng.randint(1, 6)
            end_year = min(year + duration, FOOTBALL_DOMAIN.end)
            team = rng.choice(TEAM_NAMES)
            graph.add(
                make_fact(
                    player,
                    "playsFor",
                    team,
                    TimeInterval(year, end_year),
                    round(rng.uniform(0.55, 0.99), 2),
                )
            )
            year = end_year + 1 + rng.randint(0, 1)

    dataset = NoisyDataset(graph=graph)
    dataset.clean_facts = graph.facts()

    if config.noise_ratio > 0:
        clean_count = len(dataset.clean_facts)
        noise_target = int(round(clean_count * config.noise_ratio))
        # Match the paper's conflict sources: overlapping engagements,
        # contradicting birth dates, and careers starting before birth.
        overlap_count = int(noise_target * 0.6)
        value_count = int(noise_target * 0.25)
        order_count = noise_target - overlap_count - value_count
        inject_overlap_noise(dataset, "playsFor", TEAM_NAMES, overlap_count, rng)
        inject_value_noise(dataset, "birthDate", value_count, rng)
        inject_order_noise(dataset, "birthDate", "playsFor", order_count, rng)
    return dataset
