"""Noise injection for uncertain temporal KGs.

The paper evaluates TeCoRe "in a highly noisy setting where there are as many
erroneous temporal facts as the correct ones" and reports finding 19,734
conflicting facts in a 243,157-fact UTKG.  Real extraction noise is not
available offline, so this module *plants* it deterministically:

* **overlap noise** — for a functional-over-time predicate (coach, playsFor,
  spouse …) add a second object whose validity interval overlaps an existing
  fact, triggering disjointness constraints such as c2;
* **value noise** — for single-valued predicates (birthDate, bornIn) add a
  contradicting value with an overlapping interval;
* **order noise** — violate before-style constraints (e.g. an educatedAt
  interval starting before the birth year).

Every injected fact is recorded so repairs can be scored against ground truth
(:mod:`repro.metrics`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import DatasetError, InvalidFactError
from ..kg import TemporalFact, TemporalKnowledgeGraph, make_fact
from ..temporal import TimeInterval


@dataclass
class NoisyDataset:
    """A generated UTKG together with its planted-noise ground truth."""

    graph: TemporalKnowledgeGraph
    clean_facts: list[TemporalFact] = field(default_factory=list)
    noise_facts: list[TemporalFact] = field(default_factory=list)

    @property
    def noise_ratio(self) -> float:
        total = len(self.clean_facts) + len(self.noise_facts)
        return len(self.noise_facts) / total if total else 0.0

    def clean_graph(self) -> TemporalKnowledgeGraph:
        """The graph restricted to its clean facts (the ideal repair target)."""
        noise_keys = {fact.statement_key for fact in self.noise_facts}
        return self.graph.filter(
            lambda fact: fact.statement_key not in noise_keys,
            name=f"{self.graph.name}-clean",
        )

    def summary(self) -> dict[str, float]:
        return {
            "facts": float(len(self.graph)),
            "clean_facts": float(len(self.clean_facts)),
            "noise_facts": float(len(self.noise_facts)),
            "noise_ratio": self.noise_ratio,
        }


def _alternative_object(existing: str, pool: Sequence[str], rng: random.Random) -> str:
    """A pool element different from ``existing`` (raises on degenerate pools)."""
    candidates = [value for value in pool if value != existing]
    if not candidates:
        raise DatasetError("cannot generate a conflicting object from a singleton pool")
    return rng.choice(candidates)


def _noise_confidence(rng: random.Random, low: float = 0.35, high: float = 0.85) -> float:
    """Confidence of an injected erroneous fact (noisy extractions still score well)."""
    return round(rng.uniform(low, high), 2)


def inject_overlap_noise(
    dataset: NoisyDataset,
    predicate: str,
    object_pool: Sequence[str],
    count: int,
    rng: random.Random,
) -> list[TemporalFact]:
    """Add ``count`` facts that overlap an existing ``predicate`` fact with a new object."""
    base_facts = dataset.graph.by_predicate(predicate)
    if not base_facts:
        return []
    injected: list[TemporalFact] = []
    attempts = 0
    while len(injected) < count and attempts < count * 20:
        attempts += 1
        base = rng.choice(base_facts)
        other = _alternative_object(str(base.object), object_pool, rng)
        shift = rng.randint(-1, 1)
        length = max(1, base.interval.duration + rng.randint(-1, 1))
        start = base.interval.start + shift
        fake = make_fact(
            str(base.subject),
            predicate,
            other,
            TimeInterval(start, start + length - 1),
            _noise_confidence(rng),
        )
        if fake in dataset.graph:
            continue
        try:
            dataset.graph.add(fake)
        except InvalidFactError:
            continue  # interval fell outside the graph's time domain
        dataset.noise_facts.append(fake)
        injected.append(fake)
    return injected


def inject_value_noise(
    dataset: NoisyDataset,
    predicate: str,
    count: int,
    rng: random.Random,
    value_shift: tuple[int, int] = (1, 5),
) -> list[TemporalFact]:
    """Add contradicting values for a single-valued predicate (e.g. birthDate)."""
    base_facts = dataset.graph.by_predicate(predicate)
    if not base_facts:
        return []
    injected: list[TemporalFact] = []
    attempts = 0
    while len(injected) < count and attempts < count * 20:
        attempts += 1
        base = rng.choice(base_facts)
        try:
            value = int(str(base.object).strip('"'))
        except ValueError:
            continue
        delta = rng.randint(*value_shift) * rng.choice((-1, 1))
        fake_value = value + delta
        fake = make_fact(
            str(base.subject),
            predicate,
            fake_value,
            TimeInterval(base.interval.start + delta, base.interval.end),
            _noise_confidence(rng),
        )
        if fake in dataset.graph:
            continue
        try:
            dataset.graph.add(fake)
        except InvalidFactError:
            continue  # interval fell outside the graph's time domain
        dataset.noise_facts.append(fake)
        injected.append(fake)
    return injected


def inject_order_noise(
    dataset: NoisyDataset,
    earlier_predicate: str,
    later_predicate: str,
    count: int,
    rng: random.Random,
) -> list[TemporalFact]:
    """Add ``later_predicate`` facts that start *before* the subject's
    ``earlier_predicate`` interval, violating before-style constraints."""
    earlier_facts = dataset.graph.by_predicate(earlier_predicate)
    later_facts = dataset.graph.by_predicate(later_predicate)
    if not earlier_facts or not later_facts:
        return []
    earlier_by_subject = {fact.subject: fact for fact in earlier_facts}
    injected: list[TemporalFact] = []
    attempts = 0
    while len(injected) < count and attempts < count * 20:
        attempts += 1
        template = rng.choice(later_facts)
        anchor = earlier_by_subject.get(template.subject)
        if anchor is None:
            continue
        # Place the fake interval entirely before the anchor's start.
        end = anchor.interval.start - rng.randint(1, 3)
        start = end - max(0, template.interval.duration - 1)
        fake = make_fact(
            str(template.subject),
            later_predicate,
            str(template.object).strip('"'),
            TimeInterval(start, end),
            _noise_confidence(rng),
        )
        if fake in dataset.graph:
            continue
        try:
            dataset.graph.add(fake)
        except InvalidFactError:
            continue  # interval fell outside the graph's time domain
        dataset.noise_facts.append(fake)
        injected.append(fake)
    return injected


def make_noisy(
    graph: TemporalKnowledgeGraph,
    seed: int = 2017,
) -> NoisyDataset:
    """Wrap an existing clean graph as a :class:`NoisyDataset` (no noise yet)."""
    dataset = NoisyDataset(graph=graph)
    dataset.clean_facts = graph.facts()
    return dataset
