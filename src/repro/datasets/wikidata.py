"""Synthetic Wikidata-like temporal KG generator.

Section 4 of the paper reports extracting "over 6.3 million temporal facts"
from Wikidata, naming the relations playsFor (>4 million facts), educatedAt
(>6K), memberOf (>23K), occupation (>4.5K) and spouse (>20K).  A full-size
dump is far beyond an offline reproduction, so this generator preserves the
*relation mix* — each relation's share of the total — and scales the overall
size down by a configurable factor; scaling curves measured on it keep their
shape because the per-relation proportions (and hence the constraint
surface) match the paper's inventory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import DatasetError
from ..kg import TemporalKnowledgeGraph, make_fact
from ..temporal import TimeDomain, TimeInterval
from .noise import NoisyDataset, inject_overlap_noise, inject_value_noise

#: The paper's per-relation fact counts (Section 4).  The listed relations sum
#: to well below 6.3M; the remainder is grouped under "other" so the totals
#: match the reported inventory.
PAPER_RELATION_COUNTS: dict[str, int] = {
    "playsFor": 4_000_000,
    "memberOf": 23_000,
    "spouse": 20_000,
    "educatedAt": 6_000,
    "occupation": 4_500,
    "other": 2_246_500,
}

#: Total the paper reports for the Wikidata extraction.
PAPER_TOTAL_FACTS: int = 6_300_000

WIKIDATA_DOMAIN = TimeDomain(1900, 2020, granularity="year")

_CLUBS = tuple(f"Club{i:03d}" for i in range(120))
_ORGANISATIONS = tuple(f"Org{i:03d}" for i in range(60))
_SCHOOLS = tuple(f"University{i:02d}" for i in range(40))
_OCCUPATIONS = ("politician", "actor", "footballer", "writer", "scientist", "musician")
_PEOPLE_POOL = 10_000


@dataclass(frozen=True, slots=True)
class WikidataConfig:
    """Generator parameters (``scale`` is relative to the 6.3M-fact inventory)."""

    scale: float = 0.0005
    noise_ratio: float = 0.0
    include_other: bool = False
    seed: int = 2017

    def target_counts(self) -> dict[str, int]:
        counts = {
            relation: max(1, int(round(count * self.scale)))
            for relation, count in PAPER_RELATION_COUNTS.items()
        }
        if not self.include_other:
            counts.pop("other", None)
        return counts


def _person(index: int) -> str:
    return f"Q{100000 + index}"


def generate_wikidata(config: WikidataConfig | None = None) -> NoisyDataset:
    """Generate a scaled-down Wikidata-like UTKG with the paper's relation mix."""
    config = config or WikidataConfig()
    if config.scale <= 0:
        raise DatasetError("scale must be positive")
    rng = random.Random(config.seed)
    graph = TemporalKnowledgeGraph(name="wikidata", domain=WIKIDATA_DOMAIN)
    counts = config.target_counts()

    birth_years: dict[str, int] = {}

    def birth_year_of(person: str) -> int:
        year = birth_years.get(person)
        if year is None:
            year = rng.randint(1920, 1995)
            birth_years[person] = year
            graph.add(
                make_fact(
                    person,
                    "birthDate",
                    year,
                    TimeInterval(year, WIKIDATA_DOMAIN.end),
                    round(rng.uniform(0.9, 1.0), 2),
                )
            )
        return year

    def random_interval(person: str, min_age: int = 16, max_length: int = 10) -> TimeInterval:
        birth = birth_year_of(person)
        start = min(birth + rng.randint(min_age, 40), WIKIDATA_DOMAIN.end - 1)
        end = min(start + rng.randint(0, max_length), WIKIDATA_DOMAIN.end)
        return TimeInterval(start, end)

    generators = {
        "playsFor": lambda person: make_fact(
            person,
            "playsFor",
            rng.choice(_CLUBS),
            random_interval(person, 16, 6),
            round(rng.uniform(0.6, 0.99), 2),
        ),
        "memberOf": lambda person: make_fact(
            person,
            "memberOf",
            rng.choice(_ORGANISATIONS),
            random_interval(person, 18, 15),
            round(rng.uniform(0.6, 0.99), 2),
        ),
        "spouse": lambda person: make_fact(
            person,
            "spouse",
            _person(rng.randrange(_PEOPLE_POOL)),
            random_interval(person, 20, 30),
            round(rng.uniform(0.7, 0.99), 2),
        ),
        "educatedAt": lambda person: make_fact(
            person,
            "educatedAt",
            rng.choice(_SCHOOLS),
            random_interval(person, 6, 8),
            round(rng.uniform(0.7, 0.99), 2),
        ),
        "occupation": lambda person: make_fact(
            person,
            "occupation",
            rng.choice(_OCCUPATIONS),
            random_interval(person, 18, 40),
            round(rng.uniform(0.7, 0.99), 2),
        ),
        "other": lambda person: make_fact(
            person,
            "relatedTo",
            _person(rng.randrange(_PEOPLE_POOL)),
            random_interval(person, 0, 50),
            round(rng.uniform(0.5, 0.99), 2),
        ),
    }

    for relation, target in counts.items():
        produce = generators[relation]
        added = 0
        attempts = 0
        while added < target and attempts < target * 20:
            attempts += 1
            person = _person(rng.randrange(_PEOPLE_POOL))
            fact = produce(person)
            if fact in graph:
                continue
            graph.add(fact)
            added += 1

    dataset = NoisyDataset(graph=graph)
    dataset.clean_facts = graph.facts()

    if config.noise_ratio > 0:
        noise_target = int(round(len(dataset.clean_facts) * config.noise_ratio))
        overlap_plays = int(noise_target * 0.5)
        overlap_spouse = int(noise_target * 0.3)
        value_count = noise_target - overlap_plays - overlap_spouse
        inject_overlap_noise(dataset, "playsFor", _CLUBS, overlap_plays, rng)
        inject_overlap_noise(
            dataset, "spouse", [_person(i) for i in range(200)], overlap_spouse, rng
        )
        inject_value_noise(dataset, "birthDate", value_count, rng)
    return dataset


def paper_relation_shares() -> dict[str, float]:
    """Each relation's share of the paper's 6.3M-fact inventory."""
    return {
        relation: count / PAPER_TOTAL_FACTS for relation, count in PAPER_RELATION_COUNTS.items()
    }
