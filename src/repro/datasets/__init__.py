"""Datasets and workload generators (running example, FootballDB, Wikidata)."""

from .footballdb import FOOTBALL_DOMAIN, FootballDBConfig, TEAM_NAMES, generate_footballdb
from .loader import DatasetEntry, available_datasets, describe_datasets, load_dataset
from .noise import (
    NoisyDataset,
    inject_order_noise,
    inject_overlap_noise,
    inject_value_noise,
    make_noisy,
)
from .ranieri import (
    RANIERI_CLUB_FACTS,
    RANIERI_DOMAIN,
    RANIERI_EXPECTED_KEPT,
    RANIERI_EXPECTED_REMOVED,
    RANIERI_FACTS,
    ranieri_extended_graph,
    ranieri_graph,
)
from .wikidata import (
    PAPER_RELATION_COUNTS,
    PAPER_TOTAL_FACTS,
    WikidataConfig,
    generate_wikidata,
    paper_relation_shares,
)

__all__ = [
    "DatasetEntry",
    "FOOTBALL_DOMAIN",
    "FootballDBConfig",
    "NoisyDataset",
    "PAPER_RELATION_COUNTS",
    "PAPER_TOTAL_FACTS",
    "RANIERI_CLUB_FACTS",
    "RANIERI_DOMAIN",
    "RANIERI_EXPECTED_KEPT",
    "RANIERI_EXPECTED_REMOVED",
    "RANIERI_FACTS",
    "TEAM_NAMES",
    "WikidataConfig",
    "available_datasets",
    "describe_datasets",
    "generate_footballdb",
    "generate_wikidata",
    "inject_order_noise",
    "inject_overlap_noise",
    "inject_value_noise",
    "load_dataset",
    "make_noisy",
    "paper_relation_shares",
    "ranieri_extended_graph",
    "ranieri_graph",
]
