"""The paper's running example: coach Claudio Ranieri (Figure 1).

Two variants are provided:

* :func:`ranieri_graph` — exactly the five facts of Figure 1;
* :func:`ranieri_extended_graph` — Figure 1 plus the club-location facts that
  let rule f2 (worksFor ∧ locatedIn → livesIn) fire during the demo walk-through.
"""

from __future__ import annotations

from ..kg import TemporalKnowledgeGraph
from ..temporal import TimeDomain

#: The time domain of the running example (years).
RANIERI_DOMAIN = TimeDomain(1900, 2100, granularity="year")

#: The five facts of Figure 1, in the paper's order and with its confidences.
RANIERI_FACTS: tuple[tuple, ...] = (
    ("CR", "coach", "Chelsea", (2000, 2004), 0.9),
    ("CR", "coach", "Leicester", (2015, 2017), 0.7),
    ("CR", "playsFor", "Palermo", (1984, 1986), 0.5),
    ("CR", "birthDate", 1951, (1951, 2017), 1.0),
    ("CR", "coach", "Napoli", (2001, 2003), 0.6),
)

#: The facts Figure 7 reports as the conflict-free MAP result (facts 1-4).
RANIERI_EXPECTED_KEPT: tuple[tuple, ...] = RANIERI_FACTS[:4]

#: The fact removed by MAP inference because of constraint c2 (fact 5).
RANIERI_EXPECTED_REMOVED: tuple = RANIERI_FACTS[4]

#: Additional club metadata used by the f2 walk-through.
RANIERI_CLUB_FACTS: tuple[tuple, ...] = (
    ("Chelsea", "locatedIn", "London", (1905, 2020), 1.0),
    ("Leicester", "locatedIn", "LeicesterCity", (1905, 2020), 1.0),
    ("Palermo", "locatedIn", "PalermoCity", (1900, 2020), 1.0),
    ("Napoli", "locatedIn", "Naples", (1926, 2020), 1.0),
)


def ranieri_graph() -> TemporalKnowledgeGraph:
    """The UTKG of Figure 1 (five facts about Claudio Ranieri)."""
    graph = TemporalKnowledgeGraph(name="ranieri", domain=RANIERI_DOMAIN)
    graph.add_all(RANIERI_FACTS)
    return graph


def ranieri_extended_graph() -> TemporalKnowledgeGraph:
    """Figure 1 plus club locations, so rules f1 and f2 both fire."""
    graph = ranieri_graph()
    graph.name = "ranieri-extended"
    graph.add_all(RANIERI_CLUB_FACTS)
    return graph
