"""Dataset registry.

The demo UI lets users "select temporal kgs" from a predefined list; this
registry is the API equivalent.  Each entry is a named factory producing a
:class:`~repro.datasets.noise.NoisyDataset` with documented parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DatasetError
from .footballdb import FootballDBConfig, generate_footballdb
from .noise import NoisyDataset, make_noisy
from .ranieri import ranieri_extended_graph, ranieri_graph
from .wikidata import WikidataConfig, generate_wikidata


@dataclass(frozen=True, slots=True)
class DatasetEntry:
    """One selectable dataset."""

    name: str
    description: str
    factory: Callable[..., NoisyDataset]


def _ranieri_factory(**_: object) -> NoisyDataset:
    return make_noisy(ranieri_graph())


def _ranieri_extended_factory(**_: object) -> NoisyDataset:
    return make_noisy(ranieri_extended_graph())


def _footballdb_factory(
    scale: float = 0.01, noise_ratio: float = 0.0, seed: int = 2017, **_: object
) -> NoisyDataset:
    return generate_footballdb(FootballDBConfig(scale=scale, noise_ratio=noise_ratio, seed=seed))


def _wikidata_factory(
    scale: float = 0.0005, noise_ratio: float = 0.0, seed: int = 2017, **_: object
) -> NoisyDataset:
    return generate_wikidata(WikidataConfig(scale=scale, noise_ratio=noise_ratio, seed=seed))


_REGISTRY: dict[str, DatasetEntry] = {
    "ranieri": DatasetEntry(
        "ranieri", "the paper's Figure 1 running example (5 facts)", _ranieri_factory
    ),
    "ranieri-extended": DatasetEntry(
        "ranieri-extended",
        "running example plus club locations (rules f1/f2 both fire)",
        _ranieri_extended_factory,
    ),
    "footballdb": DatasetEntry(
        "footballdb",
        "synthetic FootballDB (playsFor + birthDate); scale=1.0 matches the paper",
        _footballdb_factory,
    ),
    "wikidata": DatasetEntry(
        "wikidata",
        "synthetic Wikidata-like KG with the paper's relation mix, scaled down",
        _wikidata_factory,
    ),
}


def available_datasets() -> list[str]:
    """Names of all registered datasets."""
    return sorted(_REGISTRY)


def describe_datasets() -> list[DatasetEntry]:
    """All registry entries, sorted by name."""
    return [_REGISTRY[name] for name in available_datasets()]


def load_dataset(name: str, **parameters) -> NoisyDataset:
    """Instantiate a registered dataset by name with optional parameters."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise DatasetError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return entry.factory(**parameters)
