"""Executing traces against a live, instrumented resolution service.

The harness drives a :class:`~repro.verify.workloads.Trace` through a real
:class:`~repro.serve.server.ResolutionService` — the batcher, the session
pool, the per-session locks, and the metrics all run exactly as in
production — from one OS thread per trace client, and returns the
:class:`~repro.verify.history.History` the attached recorder observed.
Requests go through ``service.handle`` directly rather than over a socket:
the serving logic and its synchronisation are fully exercised (``handle``
*is* what every HTTP connection thread calls) while the harness stays fast
enough to record hundreds of seeded histories per CI run.  The
trace-driven benchmark (``benchmarks/bench_serve.py``) covers the HTTP
transport on top of the same generator.

Logical-to-real session mapping: trace operations reference sessions by
index; the owning client's ``session_create`` resolves the index to the
server-assigned id and publishes it through a per-session event, which
non-owning clients wait on before targeting the session.  That wait is the
only cross-client synchronisation — everything else interleaves freely,
which is the point.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Optional

from ..serve.server import ResolutionService, ServerConfig
from .history import History, HistoryRecorder
from .workloads import Trace, TraceOp, WorkloadConfig, generate_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.tecore import TeCoRe

#: How long a client waits for another client's session_create (seconds).
SESSION_WAIT_SECONDS = 30.0


def _encode_body(document: Optional[dict[str, Any]]) -> bytes:
    return json.dumps(document or {}).encode("utf-8")


class SessionDirectory:
    """Thread-safe logical-session-index → server-session-id mapping."""

    def __init__(self, sessions: int) -> None:
        self._ids: dict[int, str] = {}
        self._events = {index: threading.Event() for index in range(sessions)}

    def publish(self, index: int, session_id: Optional[str]) -> None:
        if session_id is not None:
            self._ids[index] = session_id
        self._events[index].set()

    def resolve(self, index: int) -> str:
        if not self._events[index].wait(SESSION_WAIT_SECONDS):
            return f"deadbeef{index:04x}"  # never issued: the request will 404
        return self._ids.get(index, f"deadbeef{index:04x}")


class _TraceClient(threading.Thread):
    """One trace client: replays its program against the service."""

    def __init__(
        self,
        client_id: int,
        program: list[TraceOp],
        service: ResolutionService,
        directory: SessionDirectory,
        barrier: threading.Barrier,
    ) -> None:
        super().__init__(name=f"trace-client-{client_id}", daemon=True)
        self.client_id = client_id
        self.program = program
        self.service = service
        self.directory = directory
        self.barrier = barrier
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.barrier.wait(timeout=SESSION_WAIT_SECONDS)
            for op in self.program:
                if op.delay > 0:
                    time.sleep(op.delay)
                self._issue(op)
        except BaseException as exc:  # noqa: BLE001 - surfaced by record_trace
            self.error = exc

    def _issue(self, op: TraceOp) -> None:
        if op.kind == "resolve":
            body = op.body or {}
            if op.include_graphs and not op.malformed:
                body = {"graph": body, "include_graphs": True}
            self.service.handle("POST", "/resolve", _encode_body(body))
            return
        if op.kind == "session_create":
            assert op.session is not None
            status, payload = self.service.handle("POST", "/sessions", _encode_body(op.body))
            session_id = payload.get("session_id") if status == 201 else None
            self.directory.publish(op.session, session_id)
            return
        assert op.session is not None
        sid = self.directory.resolve(op.session)
        if op.kind == "session_edit":
            self.service.handle("POST", f"/sessions/{sid}/edits", _encode_body(op.body))
        elif op.kind == "session_read":
            query = "?include_graphs=1" if op.include_graphs else ""
            self.service.handle("GET", f"/sessions/{sid}/result{query}", b"")
        elif op.kind == "session_delete":
            self.service.handle("DELETE", f"/sessions/{sid}", b"")
        else:  # pragma: no cover - generator never emits other kinds
            raise ValueError(f"unknown trace op kind {op.kind!r}")


def harness_server_config(trace: Trace, **overrides: Any) -> ServerConfig:
    """A :class:`ServerConfig` sized so the checker's assumptions hold.

    ``max_sessions`` must exceed the trace's logical session count —
    otherwise LRU eviction makes unexplained 404s legal and the checker
    would need ``lru_evictions=True``, weakening what a clean run proves.
    """
    sized: dict[str, Any] = {
        "max_sessions": max(64, trace.config.sessions + 1),
        "batch_delay": 0.002,
    }
    sized.update(overrides)
    return ServerConfig(**sized)


def record_trace(
    system: "TeCoRe",
    trace: Trace,
    config: Optional[ServerConfig] = None,
    metadata: Optional[dict[str, Any]] = None,
) -> History:
    """Execute one trace against a fresh instrumented service.

    Returns the recorded history; raises if any client thread died (the
    serving tier itself never raises into clients — a client failure is a
    harness bug, not a serving violation).
    """
    recorder = HistoryRecorder()
    service = ResolutionService(system, config or harness_server_config(trace), recorder=recorder)
    directory = SessionDirectory(trace.config.sessions)
    barrier = threading.Barrier(len(trace.programs))
    clients = [
        _TraceClient(client_id, program, service, directory, barrier)
        for client_id, program in enumerate(trace.programs)
    ]
    try:
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=SESSION_WAIT_SECONDS * 2)
    finally:
        service.close()
    for client in clients:
        if client.is_alive():
            raise RuntimeError(f"trace client {client.client_id} did not finish")
        if client.error is not None:
            raise RuntimeError(
                f"trace client {client.client_id} failed: {client.error}"
            ) from client.error
    history_metadata = {
        "workload": asdict(trace.config),
        "total_ops": trace.total_ops,
        **(metadata or {}),
    }
    return recorder.history(history_metadata)


def record_workload(
    system: "TeCoRe",
    workload: WorkloadConfig,
    config: Optional[ServerConfig] = None,
) -> History:
    """Generate the seeded trace for ``workload`` on the paper's running
    example graph and record its execution (the CLI/CI entry point)."""
    from ..datasets.ranieri import ranieri_extended_graph

    trace = generate_trace(ranieri_extended_graph(), workload)
    return record_trace(system, trace, config=config)
