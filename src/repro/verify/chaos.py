"""Chaos runs: SIGKILL `tecore serve` mid-workload, restart, certify.

The strongest durability claim the serving tier makes is end-to-end: run a
real ``tecore serve`` **subprocess** with ``--wal-dir`` under a seeded
fault schedule, drive a seeded trace over real HTTP, SIGKILL the process
while requests are in flight, restart it on the same log directory, let
the clients finish — and the *combined* client-visible history (before and
after the crash, pending operations included) must still be serializable
per :mod:`repro.verify.checker`.  :func:`run_chaos` orchestrates exactly
that and returns a :class:`ChaosReport`; ``tecore chaos`` is its CLI face.

Client-side recording: unlike the in-process harness, the recorder here
lives in the *clients* — each HTTP attempt is one
:class:`~repro.verify.history.Operation`, and an attempt whose connection
dies without a response (the process was killed under it) stays
``completed=None``.  That is precisely the evidence shape the checker's
crash-history rules are defined on.

Retry discipline (shared with ``benchmarks/bench_serve.py`` through
:func:`request_with_retry` / :class:`RetryPolicy`):

* a **responded** 503/504 is retried with capped exponential backoff,
  honouring the server's ``Retry-After`` hint — the service guarantees it
  answers those *before* applying any mutation, so a retry is safe;
* a **connection-level** failure is never blindly retried for mutating
  operations (at-most-once: the request may have been applied and WAL'd
  even though the response was lost); the operation is left pending and
  the client re-establishes its connection against the restarted server.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..errors import TecoreError
from .faults import seeded_schedule
from .harness import SessionDirectory
from .history import History, HistoryRecorder
from .workloads import TraceOp, WorkloadConfig, generate_trace

#: Mutating operation kinds — never resent after a connection-level failure.
_MUTATING_KINDS = ("session_create", "session_edit", "session_delete", "resolve")

#: How long a client keeps probing for the restarted server (seconds).
RECONNECT_SECONDS = 60.0


# --------------------------------------------------------------------------- #
# Retry policy (shared with the HTTP trace benchmark)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for responded 503/504s."""

    max_retries: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    statuses: tuple[int, ...] = (503, 504)

    def delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        """Backoff before retry ``attempt`` (0-based), honouring Retry-After.

        The server's hint sets a *floor* (it knows how saturated it is);
        the exponential curve sets the growth; ``max_delay`` caps both.
        """
        backoff = min(self.max_delay, self.base_delay * (2**attempt))
        if retry_after is not None:
            backoff = max(backoff, min(self.max_delay, retry_after))
        return backoff


DEFAULT_RETRY_POLICY = RetryPolicy()


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


def request_with_retry(
    connection: http.client.HTTPConnection,
    method: str,
    path: str,
    document: Optional[dict[str, Any]] = None,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    on_attempt: Optional[Callable[[int, dict[str, Any]], None]] = None,
) -> tuple[int, dict[str, Any], int]:
    """Issue one JSON request, retrying responded 503/504s with backoff.

    Returns ``(status, payload, retries)`` where ``status``/``payload``
    come from the final attempt.  Connection-level errors propagate to the
    caller — only *answered* overload statuses are retried, which the
    service guarantees carry no partial effect.  ``on_attempt`` observes
    every attempt (for client-side history recording).
    """
    body = json.dumps(document) if document is not None else None
    retries = 0
    while True:
        connection.request(method, path, body=body, headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        payload = json.loads(response.read())
        retry_after = _parse_retry_after(response.getheader("Retry-After"))
        if on_attempt is not None:
            on_attempt(response.status, payload)
        if response.status in policy.statuses and retries < policy.max_retries:
            time.sleep(policy.delay(retries, retry_after))
            retries += 1
            continue
        return response.status, payload, retries


# --------------------------------------------------------------------------- #
# The managed `tecore serve` subprocess
# --------------------------------------------------------------------------- #


class ServeProcess:
    """A ``tecore serve`` subprocess bound to a WAL directory."""

    def __init__(
        self,
        wal_dir: Path,
        port: int,
        pack: str = "running-example",
        solver: str = "nrockit",
        host: str = "127.0.0.1",
        faults: Optional[str] = None,
        request_deadline: Optional[float] = None,
        workers: int = 0,
        extra_args: Optional[list[str]] = None,
    ) -> None:
        self.wal_dir = Path(wal_dir)
        self.host = host
        self.port = port
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--pack",
            pack,
            "--solver",
            solver,
            "--host",
            host,
            "--port",
            str(port),
            "--wal-dir",
            str(wal_dir),
        ]
        if request_deadline is not None:
            command += ["--request-deadline", str(request_deadline)]
        if workers:
            command += ["--workers", str(workers)]
        if faults:
            command += ["--faults", faults]
        command += list(extra_args or ())
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def wait_healthy(self, timeout: float = 60.0) -> dict[str, Any]:
        """Poll ``GET /health`` until the server answers (or die trying)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[BaseException] = None
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                output = (self.process.stdout.read() or "") if self.process.stdout else ""
                raise TecoreError(
                    f"tecore serve exited with {self.process.returncode} "
                    f"before becoming healthy: {output.strip()[-500:]}"
                )
            try:
                connection = http.client.HTTPConnection(self.host, self.port, timeout=5.0)
                try:
                    connection.request("GET", "/healthz")
                    response = connection.getresponse()
                    payload = json.loads(response.read())
                    if response.status == 200:
                        return payload
                finally:
                    connection.close()
            except (OSError, http.client.HTTPException, ValueError) as error:
                last_error = error
            time.sleep(0.1)
        raise TecoreError(
            f"tecore serve on port {self.port} not healthy after {timeout:g}s "
            f"(last error: {last_error})"
        )

    def stats(self) -> dict[str, Any]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=10.0)
        try:
            connection.request("GET", "/stats")
            return json.loads(connection.getresponse().read())
        finally:
            connection.close()

    def healthz(self) -> dict[str, Any]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=10.0)
        try:
            connection.request("GET", "/healthz")
            return json.loads(connection.getresponse().read())
        finally:
            connection.close()

    def kill(self) -> None:
        """SIGKILL — no shutdown hooks, no final fsync, mid-instruction."""
        self.process.kill()
        self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()


def free_port(host: str = "127.0.0.1") -> int:
    """Pick a currently-free TCP port (the restart must reuse it)."""
    import socket

    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


# --------------------------------------------------------------------------- #
# Chaos clients
# --------------------------------------------------------------------------- #


class _ChaosClient(threading.Thread):
    """One trace client that records its own history and survives restarts."""

    def __init__(
        self,
        client_id: int,
        program: list[TraceOp],
        address: tuple[str, int],
        directory: SessionDirectory,
        recorder: HistoryRecorder,
        barrier: threading.Barrier,
        policy: RetryPolicy,
    ) -> None:
        super().__init__(name=f"chaos-client-{client_id}", daemon=True)
        self.client_id = client_id
        self.program = program
        self.address = address
        self.directory = directory
        self.recorder = recorder
        self.barrier = barrier
        self.policy = policy
        self.retries = 0
        self.disconnects = 0
        self.error: Optional[BaseException] = None
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- connection management ------------------------------------------- #

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(*self.address, timeout=RECONNECT_SECONDS)
        return self._connection

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:  # pragma: no cover - close on a dead socket
                pass
            self._connection = None

    def _await_server(self) -> None:
        """Block until the (re)started server answers /health (unrecorded)."""
        deadline = time.monotonic() + RECONNECT_SECONDS
        while time.monotonic() < deadline:
            try:
                connection = self._connect()
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                response.read()
                if response.status == 200:
                    return
            except (OSError, http.client.HTTPException, ValueError):
                self._drop_connection()
            time.sleep(0.2)
        raise TecoreError(
            f"chaos client {self.client_id}: server did not come back "
            f"within {RECONNECT_SECONDS:g}s"
        )

    # -- the program ------------------------------------------------------ #

    def run(self) -> None:
        try:
            self.barrier.wait(timeout=RECONNECT_SECONDS)
            for op in self.program:
                if op.delay > 0:
                    time.sleep(op.delay)
                self._issue(op)
        except BaseException as exc:  # noqa: BLE001 - surfaced by run_chaos
            self.error = exc
        finally:
            self._drop_connection()

    def _issue(self, op: TraceOp) -> None:
        method, path, body, recorded, kind, sid = self._wire_form(op)
        status, payload = self._attempt_with_retries(method, path, body, recorded, kind, sid)
        if op.kind == "session_create":
            assert op.session is not None
            session_id = (payload or {}).get("session_id") if status == 201 else None
            self.directory.publish(op.session, session_id)

    def _wire_form(self, op: TraceOp) -> tuple[
        str, str, Optional[dict[str, Any]], Optional[dict[str, Any]], str, Optional[str]
    ]:
        """Wire form plus the request document the history records.

        The recorded document follows the server-side recorder's
        convention exactly (the checker keys on it) — notably a
        ``session_read``'s ``include_graphs`` flag lives in the query
        string on the wire but in the request document in the history.
        """
        if op.kind == "resolve":
            body = op.body or {}
            if op.include_graphs and not op.malformed:
                body = {"graph": body, "include_graphs": True}
            return "POST", "/resolve", body, body, "resolve", None
        if op.kind == "session_create":
            return "POST", "/sessions", op.body, op.body, "session_create", None
        assert op.session is not None
        sid = self.directory.resolve(op.session)
        if op.kind == "session_edit":
            path = f"/sessions/{sid}/edits"
            return "POST", path, op.body, op.body, "session_edit", sid
        if op.kind == "session_read":
            query = "?include_graphs=1" if op.include_graphs else ""
            path = f"/sessions/{sid}/result{query}"
            recorded = {"include_graphs": bool(op.include_graphs)}
            return "GET", path, None, recorded, "session_read", sid
        if op.kind == "session_delete":
            return "DELETE", f"/sessions/{sid}", None, None, "session_delete", sid
        raise ValueError(f"unknown trace op kind {op.kind!r}")

    def _attempt_with_retries(
        self,
        method: str,
        path: str,
        body: Optional[dict[str, Any]],
        recorded: Optional[dict[str, Any]],
        kind: str,
        sid: Optional[str],
    ) -> tuple[Optional[int], Optional[dict[str, Any]]]:
        """One logical operation: every HTTP attempt is its own recorded op.

        A responded 503/504 closes its attempt and schedules a retry; a
        connection-level failure leaves the attempt **pending** (the killed
        process may or may not have applied it), reconnects, and — at-most-
        once — does not resend mutating kinds.
        """
        attempt = 0
        while True:
            operation = self.recorder.begin(kind, request=recorded, session_id=sid)
            try:
                connection = self._connect()
                status, payload, _ = request_with_retry(
                    connection,
                    method,
                    path,
                    body,
                    policy=RetryPolicy(max_retries=0),
                )
            except (OSError, http.client.HTTPException, ValueError):
                # No response: the op stays pending in the history.
                self.disconnects += 1
                self._drop_connection()
                self._await_server()
                if kind in _MUTATING_KINDS or attempt >= self.policy.max_retries:
                    return None, None
                attempt += 1
                continue
            self.recorder.complete(operation, status, payload)
            retry_after = _parse_retry_after((payload or {}).get("retry_after_seconds"))
            if status in self.policy.statuses and attempt < self.policy.max_retries:
                self.retries += 1
                time.sleep(self.policy.delay(attempt, retry_after))
                attempt += 1
                continue
            return status, payload


# --------------------------------------------------------------------------- #
# The chaos run
# --------------------------------------------------------------------------- #


@dataclass
class ChaosConfig:
    """Shape of one chaos run (everything derives from ``seed``)."""

    seed: int = 2017
    clients: int = 3
    ops_per_client: int = 8
    sessions: int = 2
    #: SIGKILL once this many client-visible operations have completed.
    kill_after: int = 8
    #: Explicit fault spec for the pre-crash server (see faults.parse_fault_spec);
    #: ``None`` derives a schedule from ``seed`` with ``fault_count`` rules.
    faults: Optional[str] = None
    fault_count: int = 2
    request_deadline: float = 15.0
    pack: str = "running-example"
    solver: str = "nrockit"
    zipf_alpha: float = 1.1
    noise: str = "mixed"
    #: Resolver worker processes of the served system (0 = in-process).
    workers: int = 0
    #: What the SIGKILL hits: "server" (the whole process, then restart)
    #: or "worker" (one resolver worker; the front-end stays up and must
    #: respawn it from a shard-scoped WAL replay).  "worker" needs
    #: ``workers >= 1``.
    kill: str = "server"


@dataclass
class ChaosReport:
    """What one chaos run did and whether its history is serializable."""

    seed: int
    port: int
    wal_dir: str
    fault_spec: str
    total_ops: int
    completed_ops: int
    pending_ops: int
    retries: int
    disconnects: int
    killed_after: int
    recovered_sessions: int
    workers: int = 0
    kill: str = "server"
    worker_respawns: int = 0
    serializable: Optional[bool] = None
    violations: list[dict[str, Any]] = field(default_factory=list)
    checker_stats: dict[str, Any] = field(default_factory=dict)
    history_path: Optional[str] = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "port": self.port,
            "wal_dir": self.wal_dir,
            "fault_spec": self.fault_spec,
            "total_ops": self.total_ops,
            "completed_ops": self.completed_ops,
            "pending_ops": self.pending_ops,
            "retries": self.retries,
            "disconnects": self.disconnects,
            "killed_after": self.killed_after,
            "recovered_sessions": self.recovered_sessions,
            "workers": self.workers,
            "kill": self.kill,
            "worker_respawns": self.worker_respawns,
            "serializable": self.serializable,
            "violations": self.violations,
            "checker_stats": self.checker_stats,
            "history_path": self.history_path,
        }


def _fault_spec(config: ChaosConfig) -> str:
    if config.faults is not None:
        return config.faults
    injector = seeded_schedule(config.seed, faults=config.fault_count)
    return ",".join(rule.spec() for rule in injector.rules)


def _completed_ops(recorder: HistoryRecorder) -> int:
    return sum(1 for op in recorder.history().operations if op.completed is not None)


def run_chaos(
    config: ChaosConfig,
    wal_dir: Optional[str | Path] = None,
    history_path: Optional[str | Path] = None,
    check: bool = True,
) -> tuple[ChaosReport, History]:
    """Run the full kill-restart-certify cycle; returns (report, history).

    Phases: start ``tecore serve --wal-dir`` under the seeded fault
    schedule → drive the seeded trace from ``config.clients`` HTTP clients
    → SIGKILL after ``config.kill_after`` completed operations → restart
    the server (fault-free) on the same port and WAL directory → let the
    clients finish → snapshot the combined history and (optionally) check
    it for serializability violations.

    With ``config.kill == "worker"`` (requires ``workers >= 1``) the
    SIGKILL hits one *resolver worker* instead of the server: the
    front-end stays up, detects the death, respawns the worker, and
    replays only its session shard from the live log before re-admitting
    traffic — the clients observe at most a burst of retryable 503s and
    (for mutations in flight on the dying worker) dropped connections,
    and the combined history must still be serializable.
    """
    from ..datasets.ranieri import ranieri_extended_graph

    if config.kill not in ("server", "worker"):
        raise ValueError(f"kill must be 'server' or 'worker', got {config.kill!r}")
    if config.kill == "worker" and config.workers < 1:
        raise ValueError("kill='worker' needs a sharded server (workers >= 1)")

    workload = WorkloadConfig(
        seed=config.seed,
        clients=config.clients,
        ops_per_client=config.ops_per_client,
        sessions=config.sessions,
        zipf_alpha=config.zipf_alpha,
        noise=config.noise,
        malformed_ratio=0.0,
    )
    trace = generate_trace(ranieri_extended_graph(), workload)

    owned_dir = None
    if wal_dir is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="tecore-chaos-")
        wal_dir = owned_dir.name
    wal_dir = Path(wal_dir)
    wal_dir.mkdir(parents=True, exist_ok=True)

    port = free_port()
    spec = _fault_spec(config)
    recorder = HistoryRecorder()
    directory = SessionDirectory(trace.config.sessions)
    barrier = threading.Barrier(len(trace.programs))
    clients = [
        _ChaosClient(
            client_id,
            program,
            ("127.0.0.1", port),
            directory,
            recorder,
            barrier,
            DEFAULT_RETRY_POLICY,
        )
        for client_id, program in enumerate(trace.programs)
    ]

    server = ServeProcess(
        wal_dir,
        port,
        pack=config.pack,
        solver=config.solver,
        faults=spec,
        request_deadline=config.request_deadline,
        workers=config.workers,
    )
    recovered_sessions = 0
    killed_after = 0
    worker_respawns = 0
    try:
        server.wait_healthy()
        for client in clients:
            client.start()

        # SIGKILL once enough client-visible work has completed (or all
        # clients drained first — then the kill still exercises recovery
        # of a quiescent log).
        while _completed_ops(recorder) < config.kill_after and any(
            client.is_alive() for client in clients
        ):
            time.sleep(0.02)
        killed_after = _completed_ops(recorder)

        if config.kill == "worker":
            # SIGKILL one resolver worker; the front-end stays up and must
            # respawn it after a shard-scoped replay of the live log.
            health = server.healthz()
            pids = [pid for pid in health.get("worker_pids", []) if pid]
            if not pids:
                raise TecoreError("sharded server reported no worker pids")
            os.kill(pids[config.seed % len(pids)], signal.SIGKILL)
            deadline = time.monotonic() + RECONNECT_SECONDS
            while time.monotonic() < deadline:
                health = server.healthz()
                worker_respawns = int(health.get("respawns", 0))
                if (health.get("workers_ready") == config.workers and worker_respawns >= 1):
                    break
                time.sleep(0.1)
            else:
                raise TecoreError(
                    "front-end did not respawn the killed worker within " f"{RECONNECT_SECONDS:g}s"
                )
            replay = server.stats().get("sharding", {}).get("last_replay", {})
            recovered_sessions = int(replay.get("sessions_restored", 0))
        else:
            server.kill()

            # Restart, fault-free, on the same port and WAL directory; the
            # clients' reconnect loops pick it up from /healthz.
            server = ServeProcess(
                wal_dir,
                port,
                pack=config.pack,
                solver=config.solver,
                faults=None,
                request_deadline=config.request_deadline,
                workers=config.workers,
            )
            health = server.wait_healthy()
            recovered_sessions = int(health.get("recovered_sessions", 0))

        for client in clients:
            client.join(timeout=RECONNECT_SECONDS * 2)
        for client in clients:
            if client.is_alive():
                raise TecoreError(f"chaos client {client.client_id} did not finish")
            if client.error is not None:
                raise TecoreError(
                    f"chaos client {client.client_id} failed: {client.error}"
                ) from client.error
    finally:
        server.terminate()

    history = recorder.history(
        {
            "workload": "chaos",
            "seed": config.seed,
            "fault_spec": spec,
            "killed_after_ops": killed_after,
            "recovered_sessions": recovered_sessions,
            "transport": "http-subprocess",
            "workers": config.workers,
            "kill": config.kill,
        }
    )
    if history_path is not None:
        history.save(history_path)

    report = ChaosReport(
        seed=config.seed,
        port=port,
        wal_dir=str(wal_dir),
        fault_spec=spec,
        total_ops=len(history),
        completed_ops=sum(1 for op in history if op.completed is not None),
        pending_ops=sum(1 for op in history if op.completed is None),
        retries=sum(client.retries for client in clients),
        disconnects=sum(client.disconnects for client in clients),
        killed_after=killed_after,
        recovered_sessions=recovered_sessions,
        workers=config.workers,
        kill=config.kill,
        worker_respawns=worker_respawns,
        history_path=str(history_path) if history_path is not None else None,
    )

    if check:
        from ..core import TeCoRe
        from ..logic import load_pack
        from .checker import SerializabilityChecker

        pack = load_pack(config.pack)
        system = TeCoRe(
            rules=list(pack.rules),
            constraints=list(pack.constraints),
            solver=config.solver,
        )
        result = SerializabilityChecker(system).check(history)
        report.serializable = result.ok
        report.violations = [violation.to_dict() for violation in result.violations]
        report.checker_stats = dict(result.stats)

    if owned_dir is not None:
        owned_dir.cleanup()
    return report, history
