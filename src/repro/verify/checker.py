"""Black-box serializability checking of recorded serving histories.

Given a :class:`~repro.verify.history.History`, the checker decides whether
the serving tier *could* have been a correctly synchronised single-copy
resolution system — without ever looking inside it.  The specification is
executable: the library's own one-shot resolver and
:class:`~repro.core.session.ResolutionSession` are the oracle, and the
serving guarantee under test is the bit-for-bit reproducibility contract
(responses must equal what a fresh, sequential replay produces, modulo the
wall-clock timing fields stripped by
:func:`~repro.serve.protocol.stable_view`).

Three obligations are checked:

1. **Coalescing soundness** — every coalesced group must consist of
   ``/resolve`` operations whose request graphs are content-identical
   (equal :func:`~repro.serve.protocol.graph_content_key`), and members
   requesting the same response shape must have received bit-identical
   payloads.  A group mixing different graphs is precisely the
   collapsed-forwarding bug class: distinct requests silently answered
   from one solve.
2. **Resolve correctness** — every successful ``/resolve`` response must
   equal the oracle's answer for its own request graph (cached per content
   key; resolution is a pure function of graph content).
3. **Session serializability** — for every session, there must exist a
   *serialization*: a total order of its successful operations that (a)
   extends the real-time happens-before order of the history (one logical
   clock; ``a`` precedes ``b`` iff ``a``'s response was delivered before
   ``b`` was invoked), and (b) when replayed through a fresh
   ``ResolutionSession``, reproduces every observed response exactly.
   The search backtracks over the linear extensions, visiting candidates
   in completion order (the server's lock-acquisition order correlates
   with response order, so clean histories need almost no backtracking)
   and memoising visited ``(remaining-ops, evidence-digest)`` states via
   :meth:`~repro.core.session.ResolutionSession.state_digest`.

When no serialization exists the checker reports a **minimal violating
sub-history**: the shortest quiescent-cut prefix that still fails, with
removable reads dropped.  Quiescent cuts (points where every earlier
operation completed before every later one was invoked) are the only sound
prefixes — cutting through a concurrency window could orphan an omitted
edit that a retained response legitimately depends on.  Both reductions
preserve the witness-restriction property, so a failing sub-history is
self-contained evidence of the violation and replayable on its own
(``tecore verify --history``).

Failed operations constrain the search too: a ``404`` on a session that
was observably deleted *after* the failed call returned is impossible for
a correct server (``lru_evictions=True`` relaxes this when the session
pool may evict), and success after an observed delete is unserializable
because the delete response pins the session's final fact and edit counts.

**Crash histories.** An operation with ``completed is None`` was in flight
when the recorded process died (see :mod:`repro.verify.faults` and the
WAL recovery of :mod:`repro.serve.recovery`).  Such *pending* operations
get the textbook linearizability treatment: a pending edit may take
effect at any legal point of the serialization **or not at all** (the
crash may have hit before or after its write-ahead record became
durable), it has no response to reproduce, and a pending delete whose
tombstone survived legally explains later 404s on its session.  This is
what lets one combined pre-crash + post-recovery history be certified as
a single serializable whole.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..serve.protocol import (
    ProtocolError,
    decode_edits,
    decode_graph,
    encode_result,
    graph_content_key,
    stable_view,
)
from .history import History, Operation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.session import ResolutionSession
    from ..core.tecore import TeCoRe


def canonical(payload: dict[str, Any]) -> Any:
    """A comparison form of a response: timings stripped, JSON-normalised.

    The JSON round-trip makes in-memory payloads (which may hold tuples)
    comparable with payloads reloaded from saved history files.
    """
    return json.loads(json.dumps(stable_view(payload), sort_keys=True))


@dataclass
class Violation:
    """One checked obligation the history provably breaks."""

    kind: str
    description: str
    op_ids: list[int] = field(default_factory=list)
    expected: Any = None
    observed: Any = None
    #: Minimal self-contained violating sub-history (``History.to_dict``
    #: form), replayable via ``tecore verify --history``.
    sub_history: Optional[dict[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "description": self.description,
            "op_ids": self.op_ids,
            "expected": self.expected,
            "observed": self.observed,
            "sub_history": self.sub_history,
        }


@dataclass
class CheckReport:
    """The outcome of checking one history."""

    violations: list[Violation] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        stats = ", ".join(f"{key}={value}" for key, value in sorted(self.stats.items()))
        if self.ok:
            return f"serializable ({stats})"
        kinds = ", ".join(sorted({violation.kind for violation in self.violations}))
        return f"{len(self.violations)} violation(s): {kinds} ({stats})"


class SearchBudgetExceeded(Exception):
    """The serialization search exceeded its step budget (inconclusive)."""


@dataclass
class _Mismatch:
    """Diagnostics of the deepest point a serialization attempt reached."""

    depth: int
    op_id: int
    expected: Any
    observed: Any
    prefix: list[int]


class _SessionSearch:
    """Backtracking search for one session's serialization witness.

    State restoration is replay-from-scratch: ``ResolutionSession`` has no
    undo, so after a failed branch the chosen prefix is re-applied to a
    fresh session (cheap at harness scale, and bit-identical by the
    incremental-resolution guarantees the oracle itself relies on).
    """

    def __init__(
        self,
        system: "TeCoRe",
        sid: str,
        create: Operation,
        middle: list[Operation],
        delete: Optional[Operation],
        budget: int,
        pending: Optional[list[Operation]] = None,
    ) -> None:
        self.system = system
        self.sid = sid
        self.create = create
        self.middle = list(middle)
        self.delete = delete
        #: In-flight edits (no response recorded — the process crashed with
        #: the request open).  Textbook pending-operation semantics: each
        #: may take effect at any legal point of the serialization *or not
        #: at all* (the crash may have hit before or after the mutation
        #: became durable), and there is no response to reproduce.
        self.pending = list(pending or ())
        self._optional_ids = {op.op_id for op in self.pending}
        self.budget = budget
        self.steps = 0
        self.best: Optional[_Mismatch] = None
        self.session: Optional["ResolutionSession"] = None
        sequence = [create, *self.middle, *self.pending] + ([delete] if delete else [])
        self._preds = {
            op.op_id: frozenset(
                other.op_id for other in sequence if other is not op and other.happens_before(op)
            )
            for op in sequence
        }
        self._memo: set[tuple[frozenset, tuple]] = set()

    # ------------------------------------------------------------------ #
    def run(self) -> bool:
        mismatch = self._check_create()
        if mismatch is not None:
            self.best = mismatch
            return False
        remaining = {op.op_id: op for op in self.middle}
        for op in self.pending:
            remaining[op.op_id] = op
        if self.delete is not None:
            remaining[self.delete.op_id] = self.delete
        return self._dfs(remaining, [])

    # ------------------------------------------------------------------ #
    def _fresh_session(self) -> "ResolutionSession":
        request = self.create.request or {}
        graph = decode_graph(request, default_name="session")
        cache_size = request.get("cache_size", 8192)
        return self.system.session(
            graph,
            warm_start=bool(request.get("warm_start")),
            cache_size=cache_size if isinstance(cache_size, int) and cache_size >= 1 else 8192,
        )

    def _check_create(self) -> Optional[_Mismatch]:
        try:
            self.session = self._fresh_session()
        except Exception as exc:  # noqa: BLE001 - any replay failure is a finding
            return _Mismatch(
                depth=0,
                op_id=self.create.op_id,
                expected="a replayable session_create request",
                observed=f"replay raised: {exc}",
                prefix=[],
            )
        include = bool((self.create.request or {}).get("include_graphs"))
        expected = canonical(
            {
                "session_id": self.sid,
                "result": encode_result(self.session.result, include_graphs=include),
            }
        )
        observed = canonical(self.create.response or {})
        if expected != observed:
            return _Mismatch(
                depth=0,
                op_id=self.create.op_id,
                expected=expected,
                observed=observed,
                prefix=[],
            )
        return None

    def _rebuild(self, chosen: list[Operation]) -> None:
        """Restore the session to the state after the chosen prefix."""
        self.session = self._fresh_session()
        for op in chosen:
            if op.kind == "session_edit":
                adds, removes = decode_edits(op.request or {})
                self.session.apply(adds=adds, removes=removes)

    # ------------------------------------------------------------------ #
    def _try(self, op: Operation, chosen: list[Operation]) -> tuple[bool, bool, Any, Any]:
        """Replay one candidate next op: (matched, state_mutated, exp, obs)."""
        include = bool((op.request or {}).get("include_graphs"))
        assert self.session is not None
        if op.kind == "session_edit":
            try:
                adds, removes = decode_edits(op.request or {})
            except ProtocolError as exc:
                return False, False, "a decodable edit request", f"undecodable: {exc}"
            try:
                result = self.session.apply(adds=adds, removes=removes)
            except Exception as exc:  # noqa: BLE001 - any replay failure is a finding
                return False, True, "a replayable edit", f"replay raised: {exc}"
            expected = canonical(
                {
                    "session_id": self.sid,
                    "result": encode_result(result, include_graphs=include),
                }
            )
            return expected == canonical(op.response or {}), True, expected, canonical(
                op.response or {}
            )
        if op.kind == "session_read":
            expected = canonical(
                {
                    "session_id": self.sid,
                    "result": encode_result(self.session.result, include_graphs=include),
                }
            )
            return expected == canonical(op.response or {}), False, expected, canonical(
                op.response or {}
            )
        # session_delete: the response pins the session's final state.  The
        # edit counter is whatever the serialization actually placed before
        # the delete — including any pending edits whose effect survived a
        # crash (recovery replays them and counts them exactly once).
        expected = canonical(
            {
                "session_id": self.sid,
                "deleted": True,
                "facts": len(self.session.graph),
                "edits_applied": sum(1 for placed in chosen if placed.kind == "session_edit"),
            }
        )
        return expected == canonical(op.response or {}), False, expected, canonical(
            op.response or {}
        )

    def _place_pending(
        self, op: Operation, remaining: dict[int, Operation], chosen: list[Operation]
    ) -> bool:
        """Try the optional branch where a pending edit's effect survived.

        No response to check — the client never got one.  An edit that
        raises here would have raised identically live (and during
        recovery), i.e. it never mutates state, so placing it is a no-op
        and the unplaced branch already covers it."""
        assert self.session is not None
        try:
            adds, removes = decode_edits(op.request or {})
            self.session.apply(adds=adds, removes=removes)
        except Exception:  # noqa: BLE001 - undecodable/invalid: effect impossible
            return False
        del remaining[op.op_id]
        chosen.append(op)
        if self._dfs(remaining, chosen):
            return True
        chosen.pop()
        remaining[op.op_id] = op
        self._rebuild(chosen)
        return False

    def _dfs(self, remaining: dict[int, Operation], chosen: list[Operation]) -> bool:
        # Pending ops are optional: a serialization may leave any of them
        # unplaced (their effect died with the crash), so only required ops
        # have to be consumed for the search to succeed.
        if all(op.op_id in self._optional_ids for op in remaining.values()):
            return True
        assert self.session is not None
        state_key = (frozenset(remaining), self.session.state_digest())
        if state_key in self._memo:
            return False
        # Completion order first: the server answered in lock-acquisition
        # order, so on a correct history the first candidate almost always
        # extends to a witness (pending ops sort last).
        order = sorted(
            remaining.values(),
            key=lambda op: (op.completed is None, op.completed or op.invoked),
        )
        for op in order:
            if self._preds[op.op_id] & remaining.keys():
                continue  # a real-time predecessor is still unplaced
            if self.delete is not None and op is self.delete:
                required_left = sum(
                    1 for other in remaining.values() if other.op_id not in self._optional_ids
                )
                if required_left > 1:
                    continue  # every successful op must precede the delete
            self.steps += 1
            if self.steps > self.budget:
                raise SearchBudgetExceeded(
                    f"session {self.sid}: exceeded {self.budget} search steps"
                )
            if op.op_id in self._optional_ids:
                if self._place_pending(op, remaining, chosen):
                    return True
                continue
            matched, mutated, expected, observed = self._try(op, chosen)
            if matched:
                del remaining[op.op_id]
                chosen.append(op)
                if self._dfs(remaining, chosen):
                    return True
                chosen.pop()
                remaining[op.op_id] = op
                if mutated:
                    self._rebuild(chosen)
            else:
                depth = len(chosen) + 1
                if self.best is None or depth > self.best.depth:
                    self.best = _Mismatch(
                        depth=depth,
                        op_id=op.op_id,
                        expected=expected,
                        observed=observed,
                        prefix=[placed.op_id for placed in chosen],
                    )
                if mutated:
                    self._rebuild(chosen)
        self._memo.add(state_key)
        return False


class SerializabilityChecker:
    """Check recorded histories against the sequential resolution oracle.

    Parameters
    ----------
    system:
        The same :class:`~repro.core.tecore.TeCoRe` configuration the
        recorded service ran with (rules, constraints, solver, threshold
        must match — the oracle replays through it).
    max_search_steps:
        Budget per session serialization search; exceeding it reports a
        ``search_budget_exhausted`` violation instead of looping.
    lru_evictions:
        The recorded service ran with a session pool small enough to evict
        live sessions; unexplained 404s are then legal and not flagged.

    One instance may check many histories; the resolve oracle cache is
    shared across calls (resolution is pure in the graph content).
    """

    def __init__(
        self,
        system: "TeCoRe",
        max_search_steps: int = 100_000,
        lru_evictions: bool = False,
    ) -> None:
        self._system = system
        self.max_search_steps = max_search_steps
        self.lru_evictions = lru_evictions
        self._resolve_cache: dict[tuple, Any] = {}

    # ------------------------------------------------------------------ #
    def check(self, history: History) -> CheckReport:
        """Check every obligation; returns all violations found."""
        violations: list[Violation] = []
        stats = {
            "operations": len(history.operations),
            "groups": len(history.groups),
            "cache_hits": len(history.cache_hits),
            "search_steps": 0,
        }
        violations.extend(self._check_groups(history))
        resolve_violations, resolves_checked = self._check_resolves(history)
        violations.extend(resolve_violations)
        stats["resolves_checked"] = resolves_checked
        session_ids = history.session_ids()
        stats["sessions_checked"] = len(session_ids)
        for sid in session_ids:
            session_violations, steps = self._check_session(history, sid)
            violations.extend(session_violations)
            stats["search_steps"] += steps
        return CheckReport(violations=violations, stats=stats)

    # ------------------------------------------------------------------ #
    # Obligation 1: coalescing soundness
    # ------------------------------------------------------------------ #
    def _check_groups(self, history: History) -> list[Violation]:
        violations: list[Violation] = []
        seen: set[int] = set()
        cache_hit_ids = set(history.cache_hits)
        for group in history.groups:
            members: list[Operation] = []
            for op_id in group:
                if op_id in seen:
                    violations.append(
                        Violation(
                            kind="coalescing",
                            description=f"operation {op_id} appears in more than one "
                            "coalesced group (one submission, one flush)",
                            op_ids=[op_id],
                        )
                    )
                seen.add(op_id)
                if op_id in cache_hit_ids:
                    violations.append(
                        Violation(
                            kind="coalescing",
                            description=f"operation {op_id} was reported both as a "
                            "cache hit and as a flushed group member",
                            op_ids=[op_id],
                        )
                    )
                try:
                    members.append(history.by_id(op_id))
                except KeyError:
                    violations.append(
                        Violation(
                            kind="coalescing",
                            description=f"coalesced group references unknown operation {op_id}",
                            op_ids=list(group),
                        )
                    )
            keys: list[tuple[Operation, tuple]] = []
            for op in members:
                if op.kind != "resolve":
                    violations.append(
                        Violation(
                            kind="coalescing",
                            description=f"non-resolve operation {op.op_id} "
                            f"({op.kind}) inside a coalesced group",
                            op_ids=list(group),
                        )
                    )
                    continue
                if op.request is None:
                    violations.append(
                        Violation(
                            kind="coalescing",
                            description=f"coalesced operation {op.op_id} has no "
                            "decodable request graph",
                            op_ids=list(group),
                        )
                    )
                    continue
                try:
                    keys.append((op, graph_content_key(decode_graph(op.request))))
                except ProtocolError as exc:
                    violations.append(
                        Violation(
                            kind="coalescing",
                            description=f"coalesced operation {op.op_id} has a "
                            f"malformed request graph: {exc}",
                            op_ids=list(group),
                        )
                    )
            distinct = {key for _, key in keys}
            if len(distinct) > 1:
                names = sorted({str(key[0]) for key in distinct})
                violations.append(
                    Violation(
                        kind="coalescing",
                        description="coalesced group mixes content-distinct request "
                        f"graphs ({', '.join(names)}): distinct requests were "
                        "answered from one solve",
                        op_ids=[op.op_id for op, _ in keys],
                        sub_history=self._sub_history(
                            [op for op, _ in keys],
                            groups=[[op.op_id for op, _ in keys]],
                            note="coalesced group with mixed content keys",
                        ),
                    )
                )
            by_flag: dict[bool, tuple[int, Any]] = {}
            for op, _ in keys:
                if not op.ok:
                    continue
                flag = bool((op.request or {}).get("include_graphs"))
                observed = canonical(op.response or {})
                previous = by_flag.get(flag)
                if previous is None:
                    by_flag[flag] = (op.op_id, observed)
                elif previous[1] != observed:
                    violations.append(
                        Violation(
                            kind="coalescing",
                            description=f"coalesced operations {previous[0]} and "
                            f"{op.op_id} requested the same response shape but "
                            "received different payloads",
                            op_ids=[previous[0], op.op_id],
                            expected=previous[1],
                            observed=observed,
                        )
                    )
        return violations

    # ------------------------------------------------------------------ #
    # Obligation 2: resolve correctness against the oracle
    # ------------------------------------------------------------------ #
    def _check_resolves(self, history: History) -> tuple[list[Violation], int]:
        violations: list[Violation] = []
        checked = 0
        for op in history.operations:
            if op.kind != "resolve" or not op.ok:
                continue
            if op.request is None:
                violations.append(
                    Violation(
                        kind="resolve_mismatch",
                        description=f"resolve {op.op_id} succeeded without a "
                        "decodable request body",
                        op_ids=[op.op_id],
                    )
                )
                continue
            try:
                graph = decode_graph(op.request)
            except ProtocolError as exc:
                violations.append(
                    Violation(
                        kind="resolve_mismatch",
                        description=f"resolve {op.op_id} succeeded on a malformed "
                        f"graph document: {exc}",
                        op_ids=[op.op_id],
                    )
                )
                continue
            include = bool(op.request.get("include_graphs"))
            key = (graph_content_key(graph), include)
            expected = self._resolve_cache.get(key)
            if expected is None:
                expected = canonical(
                    encode_result(self._system.resolve(graph), include_graphs=include)
                )
                self._resolve_cache[key] = expected
            checked += 1
            observed = canonical(op.response or {})
            if observed != expected:
                violations.append(
                    Violation(
                        kind="resolve_mismatch",
                        description=f"resolve {op.op_id} returned a payload that "
                        "differs from the sequential oracle for its request graph",
                        op_ids=[op.op_id],
                        expected=expected,
                        observed=observed,
                        sub_history=self._sub_history([op], note="resolve oracle mismatch"),
                    )
                )
        return violations, checked

    # ------------------------------------------------------------------ #
    # Obligation 3: per-session serializability
    # ------------------------------------------------------------------ #
    def _check_session(self, history: History, sid: str) -> tuple[list[Violation], int]:
        violations: list[Violation] = []
        ops = [op for op in history.operations if op.session_id == sid]
        creates = [
            op
            for op in history.operations
            if op.kind == "session_create"
            and op.ok
            and (op.response or {}).get("session_id") == sid
        ]
        if len(creates) > 1:
            violations.append(
                Violation(
                    kind="duplicate_session_id",
                    description=f"session id {sid} was issued by "
                    f"{len(creates)} create operations",
                    op_ids=[op.op_id for op in creates],
                )
            )
            return violations, 0
        create = creates[0] if creates else None
        ok_ops = [op for op in ops if op.ok]
        if create is None:
            if ok_ops:
                violations.append(
                    Violation(
                        kind="phantom_session",
                        description=f"operations succeeded on session {sid} "
                        "which no create operation issued",
                        op_ids=[op.op_id for op in ok_ops],
                    )
                )
            return violations, 0
        deletes = [op for op in ok_ops if op.kind == "session_delete"]
        if len(deletes) > 1:
            violations.append(
                Violation(
                    kind="double_delete",
                    description=f"session {sid} was deleted successfully "
                    f"{len(deletes)} times (ids are never reissued)",
                    op_ids=[op.op_id for op in deletes],
                )
            )
            return violations, 0
        delete = deletes[0] if deletes else None
        # In-flight ops (no response — the process crashed with the request
        # open).  Pending edits are optional placements for the search;
        # a pending delete may have tombstoned the session durably even
        # though no client ever saw its response.
        pending = [op for op in ops if op.completed is None and op.kind == "session_edit"]
        pending_deletes = [op for op in ops if op.completed is None and op.kind == "session_delete"]
        if not self.lru_evictions:
            for op in ops:
                if op.status != 404:
                    continue
                if delete is None or op.happens_before(delete):
                    if any(
                        op.completed is None or pd.invoked < op.completed for pd in pending_deletes
                    ):
                        # A crashed DELETE whose tombstone survived explains
                        # the 404: its effect lands anywhere after its
                        # invocation, which overlaps this op.
                        continue
                    violations.append(
                        Violation(
                            kind="spurious_not_found",
                            description=f"operation {op.op_id} got 404 on session "
                            f"{sid} although the session was live for the "
                            "operation's whole duration",
                            op_ids=[op.op_id] + ([delete.op_id] if delete else []),
                        )
                    )
        middle = [op for op in ok_ops if op.kind in ("session_edit", "session_read")]
        search = _SessionSearch(
            self._system,
            sid,
            create,
            middle,
            delete,
            self.max_search_steps,
            pending=pending,
        )
        try:
            feasible = search.run()
        except SearchBudgetExceeded as exc:
            violations.append(
                Violation(
                    kind="search_budget_exhausted",
                    description=str(exc),
                    op_ids=[op.op_id for op in [create, *middle] if op is not None],
                )
            )
            return violations, search.steps
        if feasible:
            return violations, search.steps
        minimal = self._minimise_session(sid, create, middle, delete, pending)
        best = search.best
        detail = ""
        if best is not None:
            detail = (
                f"; deepest attempt placed {best.depth - 1} op(s) then failed on "
                f"operation {best.op_id}"
            )
        violations.append(
            Violation(
                kind="unserializable",
                description=f"no legal serialization of session {sid} reproduces "
                f"the observed responses{detail}",
                op_ids=[op.op_id for op in minimal],
                expected=best.expected if best is not None else None,
                observed=best.observed if best is not None else None,
                sub_history=self._sub_history(
                    minimal, note=f"minimal violating sub-history of session {sid}"
                ),
            )
        )
        return violations, search.steps

    def _session_fails(
        self,
        sid: str,
        create: Operation,
        subset: list[Operation],
    ) -> bool:
        """Does this sub-history (create + subset) provably fail too?"""
        middle = [
            op
            for op in subset
            if op.kind in ("session_edit", "session_read") and op.completed is not None
        ]
        pending = [op for op in subset if op.kind == "session_edit" and op.completed is None]
        deletes = [op for op in subset if op.kind == "session_delete" and op.completed is not None]
        search = _SessionSearch(
            self._system,
            sid,
            create,
            middle,
            deletes[0] if deletes else None,
            self.max_search_steps,
            pending=pending,
        )
        try:
            return not search.run()
        except SearchBudgetExceeded:
            return False  # cannot *prove* the smaller set fails; keep the larger

    def _minimise_session(
        self,
        sid: str,
        create: Operation,
        middle: list[Operation],
        delete: Optional[Operation],
        pending: Optional[list[Operation]] = None,
    ) -> list[Operation]:
        """Shrink a failing session history to minimal self-contained evidence.

        Only quiescent-cut prefixes and read removals are tried: both
        preserve "any witness of the full history restricts to a witness
        of the sub-history", so a failing sub-history is genuine evidence.
        """
        sequence = sorted(
            [create, *middle, *(pending or [])] + ([delete] if delete else []),
            key=lambda op: op.invoked,
        )
        best = sequence
        for cut in range(1, len(sequence)):
            prefix, suffix = sequence[:cut], sequence[cut:]
            if any(op.completed is None for op in prefix):
                break  # an unfinished op can never precede a quiescent cut
            if max(op.completed for op in prefix) >= min(op.invoked for op in suffix):
                continue  # not quiescent: some prefix op overlaps the suffix
            if create not in prefix:
                continue
            if self._session_fails(sid, create, [op for op in prefix if op is not create]):
                best = prefix
                break
        for op in [op for op in reversed(best) if op.kind == "session_read"]:
            trial = [kept for kept in best if kept is not op]
            if self._session_fails(sid, create, [kept for kept in trial if kept is not create]):
                best = trial
        return best

    # ------------------------------------------------------------------ #
    @staticmethod
    def _sub_history(
        operations: list[Operation],
        groups: Optional[list[list[int]]] = None,
        note: str = "",
    ) -> dict[str, Any]:
        return History(
            operations=sorted(operations, key=lambda op: op.invoked),
            groups=groups or [],
            cache_hits=[],
            metadata={"note": note} if note else {},
        ).to_dict()


def check_history(system: "TeCoRe", history: History, **kwargs: Any) -> CheckReport:
    """One-shot convenience: check ``history`` against ``system``'s oracle."""
    return SerializabilityChecker(system, **kwargs).check(history)
