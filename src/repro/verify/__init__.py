"""Concurrency-correctness harness for the serving tier.

Black-box serializability checking over recorded operation histories, plus
the trace-driven workload machinery that produces those histories under
realistic concurrency (hot-key skew, burst arrivals, adversarial edit
noise).  Three layers, each usable on its own:

* :mod:`repro.verify.history` — the evidence: client-visible operations on
  one logical clock, coalesced-group membership, cache hits, and the JSON
  on-disk format regression fixtures are stored in;
* :mod:`repro.verify.checker` — the judgement: does a legal serialization
  of the history exist whose sequential replay (through the library's own
  resolver and sessions as the oracle) reproduces every observed response
  bit-for-bit?  On failure, a minimal violating sub-history;
* :mod:`repro.verify.workloads` / :mod:`repro.verify.harness` — the
  pressure: seeded multi-client schedules executed against a live
  instrumented :class:`~repro.serve.server.ResolutionService`;
* :mod:`repro.verify.faults` / :mod:`repro.verify.chaos` — the violence:
  deterministic fault injection over the serving seams, and end-to-end
  kill-restart-certify runs against a real ``tecore serve`` subprocess
  (``tecore chaos``).

Driven by ``tecore verify`` (CI smoke and nightly soak), ``tests/verify``,
and the trace mode of ``benchmarks/bench_serve.py``.  See
``docs/verification.md`` for the full story.
"""

from .chaos import (
    ChaosConfig,
    ChaosReport,
    RetryPolicy,
    request_with_retry,
    run_chaos,
)
from .checker import (
    CheckReport,
    SearchBudgetExceeded,
    SerializabilityChecker,
    Violation,
    check_history,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultRule,
    InjectedCrash,
    parse_fault_spec,
    seeded_schedule,
)
from .history import (
    HISTORY_FORMAT_VERSION,
    History,
    HistoryRecorder,
    Operation,
)
from .harness import (
    SessionDirectory,
    harness_server_config,
    record_trace,
    record_workload,
)
from .workloads import (
    NOISE_MODELS,
    Trace,
    TraceOp,
    WorkloadConfig,
    generate_trace,
    zipf_weights,
)

__all__ = [
    "FAULT_KINDS",
    "HISTORY_FORMAT_VERSION",
    "NOISE_MODELS",
    "ChaosConfig",
    "ChaosReport",
    "CheckReport",
    "FaultInjector",
    "FaultRule",
    "History",
    "HistoryRecorder",
    "InjectedCrash",
    "Operation",
    "RetryPolicy",
    "SearchBudgetExceeded",
    "SerializabilityChecker",
    "SessionDirectory",
    "Trace",
    "TraceOp",
    "Violation",
    "WorkloadConfig",
    "check_history",
    "generate_trace",
    "harness_server_config",
    "parse_fault_spec",
    "record_trace",
    "record_workload",
    "request_with_retry",
    "run_chaos",
    "seeded_schedule",
    "zipf_weights",
]
