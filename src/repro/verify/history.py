"""Client-visible operation histories of the resolution service.

The concurrency-correctness harness treats the serving tier as a black box:
the only admissible evidence is what clients can observe — which requests
they issued, which responses they received, and in what *real-time order*
(one request completing before another is invoked is an ordering every
client can witness with a wall clock).  This module defines that evidence.

History model
-------------
A :class:`History` is a finite set of :class:`Operation` records over a
single logical clock: every invocation and every response draws one tick
from a shared monotonic counter, so ``a.completed < b.invoked`` is exactly
the *happens-before* relation of the history — operation ``b`` was issued
after operation ``a``'s response had already been delivered.  Operations
whose intervals overlap are **concurrent**: a correct serialization may
order them either way.

Recorded operation kinds (one per client-visible endpoint):

========================  ====================================================
``resolve``               ``POST /resolve`` (stateless, batched/coalesced)
``session_create``        ``POST /sessions``
``session_edit``          ``POST /sessions/{id}/edits``
``session_read``          ``GET /sessions/{id}/result``
``session_delete``        ``DELETE /sessions/{id}``
========================  ====================================================

Beyond the request/response pairs the history also captures two serving-tier
decisions that carry correctness obligations of their own (see
:mod:`repro.verify.checker`): the **coalesced groups** each batch flush
collapsed onto a single solve, and which submissions were answered from the
**response cache** — both reported through the
:class:`~repro.serve.batcher.BatchObserver` seam with operation ids as tags.

The on-disk format (``History.save``/``History.load``) is plain JSON with a
``version`` field, so violating histories can be committed as regression
fixtures and replayed bit-for-bit by ``tecore verify --history``.  See
``docs/verification.md`` for the full format reference.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

#: Version stamp of the JSON history format.
HISTORY_FORMAT_VERSION = 1

#: Every operation kind the recorder emits.
OPERATION_KINDS = (
    "resolve",
    "session_create",
    "session_edit",
    "session_read",
    "session_delete",
)

#: Kinds routed to ``/sessions/{id}`` (carry a ``session_id``).
SESSION_KINDS = ("session_edit", "session_read", "session_delete")


@dataclass
class Operation:
    """One client-visible request/response pair.

    ``invoked`` and ``completed`` are ticks of the history's single logical
    clock; ``completed is None`` marks an operation still in flight when the
    history was snapshotted (its response is unconstrained).  ``request`` is
    the decoded JSON request body (``None`` when the body was malformed —
    the serving tier still answers such requests, with a 400).
    """

    op_id: int
    kind: str
    invoked: int
    request: Optional[dict[str, Any]] = None
    session_id: Optional[str] = None
    completed: Optional[int] = None
    status: Optional[int] = None
    response: Optional[dict[str, Any]] = None
    #: Resolver worker index that served the operation under sharded
    #: serving (``tecore serve --workers N``); None in-process.  Purely
    #: diagnostic provenance — the checker never reads it.
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        """Completed with a success status (the response binds the checker)."""
        return self.status is not None and self.status < 400

    def happens_before(self, other: "Operation") -> bool:
        """Real-time order: this response was delivered before ``other`` began."""
        return self.completed is not None and self.completed < other.invoked

    def to_dict(self) -> dict[str, Any]:
        entry = {
            "op_id": self.op_id,
            "kind": self.kind,
            "invoked": self.invoked,
            "request": self.request,
            "session_id": self.session_id,
            "completed": self.completed,
            "status": self.status,
            "response": self.response,
        }
        if self.worker is not None:
            entry["worker"] = self.worker
        return entry

    @classmethod
    def from_dict(cls, entry: dict[str, Any]) -> "Operation":
        return cls(
            op_id=int(entry["op_id"]),
            kind=str(entry["kind"]),
            invoked=int(entry["invoked"]),
            request=entry.get("request"),
            session_id=entry.get("session_id"),
            completed=entry.get("completed"),
            status=entry.get("status"),
            response=entry.get("response"),
            worker=entry.get("worker"),
        )


@dataclass
class History:
    """A recorded set of operations plus the batcher's serving decisions.

    ``groups`` lists, per batch flush, the op-ids of every coalesced group
    (singletons included) in resolve order; ``cache_hits`` lists the op-ids
    answered straight from the response cache.  ``metadata`` is free-form
    provenance (workload seed, config, recording wall-clock) carried through
    save/load untouched.
    """

    operations: list[Operation] = field(default_factory=list)
    groups: list[list[int]] = field(default_factory=list)
    cache_hits: list[int] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def by_id(self, op_id: int) -> Operation:
        """Look an operation up by id (ids are dense but not positional
        after sub-history extraction)."""
        for operation in self.operations:
            if operation.op_id == op_id:
                return operation
        raise KeyError(f"history has no operation {op_id}")

    def session_ids(self) -> list[str]:
        """Every session id touched, in first-appearance order."""
        seen: dict[str, None] = {}
        for operation in self.operations:
            sid = operation.session_id
            if sid is None and operation.kind == "session_create" and operation.ok:
                sid = (operation.response or {}).get("session_id")
            if isinstance(sid, str):
                seen.setdefault(sid)
        return list(seen)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": HISTORY_FORMAT_VERSION,
            "metadata": self.metadata,
            "operations": [operation.to_dict() for operation in self.operations],
            "groups": self.groups,
            "cache_hits": self.cache_hits,
        }

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "History":
        version = document.get("version")
        if version != HISTORY_FORMAT_VERSION:
            raise ValueError(
                f"unsupported history format version {version!r} "
                f"(expected {HISTORY_FORMAT_VERSION})"
            )
        return cls(
            operations=[Operation.from_dict(entry) for entry in document["operations"]],
            groups=[[int(op_id) for op_id in group] for group in document.get("groups", [])],
            cache_hits=[int(op_id) for op_id in document.get("cache_hits", [])],
            metadata=dict(document.get("metadata", {})),
        )

    def save(self, path: str | Path) -> None:
        """Write the history as JSON (the regression-fixture format)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> "History":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class HistoryRecorder:
    """Thread-safe recorder wired into :class:`~repro.serve.server.ResolutionService`.

    One instance serves simultaneously as the service's operation log
    (``begin``/``complete`` around every dispatch) and as the batcher's
    :class:`~repro.serve.batcher.BatchObserver` (coalesced-group and
    cache-hit notifications arrive tagged with op-ids).  All mutation is
    under one lock; the logical clock ticks once per invocation and once
    per response, giving the total order the checker's happens-before
    relation is defined on.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clock = 0
        self._operations: list[Operation] = []
        self._groups: list[list[int]] = []
        self._cache_hits: list[int] = []

    # -- service seam --------------------------------------------------- #
    def begin(
        self,
        kind: str,
        request: Optional[dict[str, Any]] = None,
        session_id: Optional[str] = None,
    ) -> Operation:
        """Open an operation at the next clock tick (called pre-dispatch)."""
        with self._lock:
            self._clock += 1
            operation = Operation(
                op_id=len(self._operations),
                kind=kind,
                invoked=self._clock,
                request=request,
                session_id=session_id,
            )
            self._operations.append(operation)
            return operation

    def complete(self, operation: Operation, status: int, response: dict[str, Any]) -> None:
        """Close an operation with its response at the next clock tick."""
        with self._lock:
            self._clock += 1
            operation.completed = self._clock
            operation.status = status
            operation.response = response

    # -- BatchObserver seam ---------------------------------------------- #
    def on_cache_hit(self, tag: Any) -> None:
        with self._lock:
            self._cache_hits.append(tag)

    def on_flush(self, groups: list[list[Any]]) -> None:
        with self._lock:
            for group in groups:
                tags = [tag for tag in group if tag is not None]
                if tags:
                    self._groups.append(tags)

    # -- snapshot --------------------------------------------------------- #
    def history(self, metadata: Optional[dict[str, Any]] = None) -> History:
        """Snapshot the recording (safe while the service keeps running)."""
        with self._lock:
            return History(
                operations=list(self._operations),
                groups=[list(group) for group in self._groups],
                cache_hits=list(self._cache_hits),
                metadata=dict(metadata or {}),
            )
