"""Deterministic fault injection for the serving tier.

The serve modules expose named **seams** — call points that, when a
:class:`FaultInjector` is attached, invoke :meth:`FaultInjector.fire`
with the seam name before proceeding:

==================  =========================================================
seam                where it fires
==================  =========================================================
``server.dispatch``  entry of every routed request (request thread)
``session.apply``    before a session edit is applied (under the session lock)
``pool.create``      before a session's initial resolve
``pool.evict``       as an LRU eviction drops an entry (under the pool lock)
``batcher.submit``   before a one-shot resolve is queued (request thread)
``batcher.solve``    before a batch is resolved (flush worker; an error here
                     is delivered to every waiter in the batch)
``wal.append``       before a log frame is written (under the WAL lock)
``wal.sync``         before an fsync
``wal.commit``       after a record is durable per the fsync policy
==================  =========================================================

A :class:`FaultRule` binds a fault *kind* to a seam with an arrival window:
the rule fires on the ``at``-th arrival at its seam (1-based) and keeps
firing for ``count`` consecutive arrivals.  Kinds:

* ``crash``          — raise :class:`InjectedCrash` (a ``BaseException``:
  it deliberately escapes the service's ``except Exception`` request guard,
  simulating the process dying at exactly that point — the request thread
  never answers, just like a SIGKILL between two instructions);
* ``fsync_delay``    — sleep ``delay`` seconds (a stalling disk);
* ``disk_full``      — raise ``OSError(ENOSPC)`` (meaningful at ``wal.*``
  seams, where the log maps it to a 503 without applying the mutation);
* ``solver_slow``    — sleep ``delay`` seconds (a degenerate MAP instance);
* ``solver_fail``    — raise :class:`~repro.errors.TecoreError` (a solver
  back-end blowing up; served as 500);
* ``queue_saturate`` — raise
  :class:`~repro.serve.batcher.ServiceOverloadedError` (backpressure as if
  the queue were full; served as 503 with Retry-After).

Schedules are **deterministic**: a rule list is explicit, and
:func:`seeded_schedule` derives one from a seed via ``random.Random`` — the
same seed always yields the same faults at the same arrival counts, so a
failing chaos run is replayable bit-for-bit.  Every firing is recorded in
:attr:`FaultInjector.fired` for assertions and reports.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import TecoreError


class InjectedCrash(BaseException):
    """A simulated process death at an injection point.

    Derives from ``BaseException`` on purpose: the service's request
    handler catches ``Exception`` to keep connections alive, and a crash
    must not be survivable — it propagates out of ``handle`` exactly the
    way a killed process stops mid-instruction.
    """

    def __init__(self, point: str, arrival: int) -> None:
        super().__init__(f"injected crash at {point} (arrival #{arrival})")
        self.point = point
        self.arrival = arrival


FAULT_KINDS = (
    "crash",
    "fsync_delay",
    "disk_full",
    "solver_slow",
    "solver_fail",
    "queue_saturate",
)

#: Seams a seeded schedule draws from, per fault kind (kept meaningful:
#: disk faults hit the log, solver faults hit the flush worker, …).
_KIND_SEAMS = {
    "crash": ("wal.append", "wal.commit", "session.apply", "server.dispatch"),
    "fsync_delay": ("wal.sync",),
    "disk_full": ("wal.append",),
    "solver_slow": ("batcher.solve",),
    "solver_fail": ("batcher.solve",),
    "queue_saturate": ("batcher.submit",),
}


@dataclass(frozen=True)
class FaultRule:
    """Fire ``kind`` on arrivals ``at .. at+count-1`` at seam ``point``."""

    point: str
    kind: str
    at: int = 1
    count: int = 1
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})")
        if self.at < 1:
            raise ValueError(f"'at' is a 1-based arrival index, got {self.at}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def spec(self) -> str:
        """The ``kind@point:at[xcount]`` form :func:`parse_fault_spec` reads."""
        suffix = f"x{self.count}" if self.count != 1 else ""
        return f"{self.kind}@{self.point}:{self.at}{suffix}"


def parse_fault_spec(spec: str) -> list[FaultRule]:
    """Parse a comma-separated CLI fault schedule.

    Each item is ``kind@point[:at][xcount]`` — e.g.
    ``crash@wal.append:3`` (crash on the third log append) or
    ``solver_slow@batcher.solve:1x5`` (stall the first five batches).
    """
    rules = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "@" not in item:
            raise ValueError(f"fault spec {item!r} needs the form kind@point[:at][xcount]")
        kind, _, where = item.partition("@")
        at, count = 1, 1
        if ":" in where:
            where, _, position = where.partition(":")
            if "x" in position:
                position, _, repeat = position.partition("x")
                count = int(repeat)
            at = int(position)
        if not where:
            raise ValueError(f"fault spec {item!r} names no injection point")
        rules.append(FaultRule(point=where, kind=kind, at=at, count=count))
    return rules


@dataclass(frozen=True)
class FiredFault:
    """One injected fault occurrence (for assertions and chaos reports)."""

    point: str
    kind: str
    arrival: int


class FaultInjector:
    """Seeded, thread-safe fault schedule over the serving seams.

    Duck-typed on ``fire(point, **info)`` so the serve modules never import
    this package — an attached injector is just "an object with fire".
    Arrival counting is per seam and global across threads, which is what
    makes a schedule meaningful under concurrency: "the 3rd WAL append"
    is well-defined because appends are serialised by the WAL lock.
    """

    def __init__(self, rules: Iterable[FaultRule] = ()) -> None:
        self.rules = list(rules)
        self._lock = threading.Lock()
        self._arrivals: dict[str, int] = {}
        self.fired: list[FiredFault] = []

    def arrivals(self, point: str) -> int:
        with self._lock:
            return self._arrivals.get(point, 0)

    def fire(self, point: str, **info: Any) -> None:
        """Count one arrival at ``point`` and execute any due fault."""
        with self._lock:
            arrival = self._arrivals.get(point, 0) + 1
            self._arrivals[point] = arrival
            due = [
                rule
                for rule in self.rules
                if rule.point == point and rule.at <= arrival < rule.at + rule.count
            ]
            for rule in due:
                self.fired.append(FiredFault(point, rule.kind, arrival))
        for rule in due:
            self._execute(rule, point, arrival)

    def _execute(self, rule: FaultRule, point: str, arrival: int) -> None:
        if rule.kind == "crash":
            raise InjectedCrash(point, arrival)
        if rule.kind == "disk_full":
            raise OSError(errno.ENOSPC, f"injected disk full at {point}")
        if rule.kind == "solver_fail":
            raise TecoreError(f"injected solver failure at {point}")
        if rule.kind == "queue_saturate":
            from ..serve.batcher import ServiceOverloadedError

            raise ServiceOverloadedError(f"injected queue saturation at {point}")
        if rule.kind in ("fsync_delay", "solver_slow"):
            time.sleep(rule.delay)

    def summary(self) -> dict[str, Any]:
        with self._lock:
            return {
                "rules": [rule.spec() for rule in self.rules],
                "fired": [
                    {"point": hit.point, "kind": hit.kind, "arrival": hit.arrival}
                    for hit in self.fired
                ],
                "arrivals": dict(self._arrivals),
            }


def seeded_schedule(
    seed: int,
    faults: int = 3,
    kinds: Sequence[str] = FAULT_KINDS,
    max_arrival: int = 20,
    delay: float = 0.02,
) -> FaultInjector:
    """Derive a deterministic fault schedule from a seed.

    Draws ``faults`` rules with kinds from ``kinds``, each bound to a
    kind-appropriate seam (see the module table) at a uniform arrival in
    ``[1, max_arrival]``.  The same seed always produces the same
    schedule — replayability is the whole point of seeding.
    """
    rng = random.Random(seed)
    rules = []
    for _ in range(faults):
        kind = rng.choice(list(kinds))
        point = rng.choice(_KIND_SEAMS[kind])
        rules.append(FaultRule(point=point, kind=kind, at=rng.randint(1, max_arrival), delay=delay))
    return FaultInjector(rules)
