"""Static (time-ignoring) conflict resolution baseline.

The paper's introduction motivates TeCoRe by the failure mode of existing
debugging approaches: lacking temporal awareness, they treat "statements that
refer to objects at different points in time" as inconsistent — e.g. the two
coaching spells (Chelsea 2000–2004, Leicester 2015–2017) look contradictory to
a static functional-predicate check even though they never overlap.

This baseline implements exactly that behaviour: it applies the constraints
*as if every fact held at all times* (all intervals are collapsed to a single
shared interval before checking), then repairs greedily.  Benchmark A3
contrasts it with the temporal resolvers to quantify the over-removal.
"""

from __future__ import annotations

import time
from typing import Iterable

from ..kg import TemporalFact, TemporalKnowledgeGraph
from ..logic import TemporalConstraint, find_conflicts
from ..temporal import TimeInterval
from .greedy import BaselineResult


class StaticResolver:
    """Conflict resolution that ignores validity time entirely."""

    name = "static"

    def __init__(self, collapse_interval: TimeInterval | None = None) -> None:
        #: The single interval every fact is collapsed to before checking.
        self.collapse_interval = collapse_interval or TimeInterval(0, 0)

    # ------------------------------------------------------------------ #
    def collapse(self, graph: TemporalKnowledgeGraph) -> TemporalKnowledgeGraph:
        """Copy of ``graph`` with every validity interval replaced by one instant."""
        collapsed = TemporalKnowledgeGraph(name=f"{graph.name}-static")
        for fact in graph:
            collapsed.add(fact.with_interval(self.collapse_interval))
        return collapsed

    def resolve(
        self,
        graph: TemporalKnowledgeGraph,
        constraints: Iterable[TemporalConstraint],
    ) -> BaselineResult:
        started = time.perf_counter()
        constraints = list(constraints)
        collapsed = self.collapse(graph)
        violations = find_conflicts(collapsed, constraints)

        # Map collapsed facts back to the original statements they came from.
        original_by_triple: dict[tuple, list[TemporalFact]] = {}
        for fact in graph:
            key = (str(fact.subject), str(fact.predicate), str(fact.object))
            original_by_triple.setdefault(key, []).append(fact)

        removed: dict[tuple, TemporalFact] = {}
        for violation in violations:
            candidates: list[TemporalFact] = []
            for collapsed_fact in violation.facts:
                key = (
                    str(collapsed_fact.subject),
                    str(collapsed_fact.predicate),
                    str(collapsed_fact.object),
                )
                candidates.extend(original_by_triple.get(key, []))
            surviving = [fact for fact in candidates if fact.statement_key not in removed]
            if len(surviving) < len(candidates):
                continue
            if not surviving:
                continue
            weakest = min(surviving, key=lambda fact: (fact.confidence, fact.statement_key))
            removed[weakest.statement_key] = weakest

        consistent = graph.filter(
            lambda fact: fact.statement_key not in removed,
            name=f"{graph.name}-static-consistent",
        )
        elapsed = time.perf_counter() - started
        return BaselineResult(
            name=self.name,
            consistent_graph=consistent,
            removed_facts=tuple(removed.values()),
            violations_found=len(violations),
            runtime_seconds=elapsed,
        )
