"""Baseline conflict-resolution strategies used in the comparisons."""

from .greedy import BaselineResult, DropLowestResolver, GreedyResolver
from .static_resolver import StaticResolver

__all__ = [
    "BaselineResult",
    "DropLowestResolver",
    "GreedyResolver",
    "StaticResolver",
]
