"""Greedy weight-based conflict resolution baseline.

A simple, fast repair strategy to compare the MAP solvers against: detect all
constraint violations, then repeatedly drop the lowest-confidence fact that
participates in the largest number of unresolved conflicts until none remain.
No optimality guarantee — the point of the comparison (benchmarks A1/E6) is
to show how much the joint MAP formulation buys over local greedy choices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..kg import TemporalFact, TemporalKnowledgeGraph
from ..logic import TemporalConstraint, find_conflicts


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline repair."""

    name: str
    consistent_graph: TemporalKnowledgeGraph
    removed_facts: tuple[TemporalFact, ...]
    violations_found: int
    runtime_seconds: float
    details: tuple[tuple[str, float], ...] = field(default_factory=tuple)

    @property
    def removed_count(self) -> int:
        return len(self.removed_facts)


class GreedyResolver:
    """Drop lowest-confidence / highest-degree facts until conflict-free."""

    name = "greedy"

    def resolve(
        self,
        graph: TemporalKnowledgeGraph,
        constraints: Iterable[TemporalConstraint],
    ) -> BaselineResult:
        started = time.perf_counter()
        constraints = list(constraints)
        violations = find_conflicts(graph, constraints)
        initial_violations = len(violations)

        removed: dict[tuple, TemporalFact] = {}
        pending = list(violations)
        while pending:
            degree: dict[tuple, int] = {}
            facts: dict[tuple, TemporalFact] = {}
            for violation in pending:
                for fact in violation.facts:
                    key = fact.statement_key
                    degree[key] = degree.get(key, 0) + 1
                    facts[key] = fact
            # Victim: most conflicts first, then lowest confidence, then key for determinism.
            victim_key = min(
                degree,
                key=lambda key: (-degree[key], facts[key].confidence, key),
            )
            removed[victim_key] = facts[victim_key]
            pending = [
                violation
                for violation in pending
                if all(fact.statement_key != victim_key for fact in violation.facts)
            ]

        consistent = graph.filter(
            lambda fact: fact.statement_key not in removed,
            name=f"{graph.name}-greedy-consistent",
        )
        elapsed = time.perf_counter() - started
        return BaselineResult(
            name=self.name,
            consistent_graph=consistent,
            removed_facts=tuple(removed.values()),
            violations_found=initial_violations,
            runtime_seconds=elapsed,
        )


class DropLowestResolver:
    """Pairwise baseline: in every violated pair, drop the lower-confidence fact.

    Cruder than :class:`GreedyResolver`: it does not consider how many
    conflicts a fact participates in, it just locally removes the weaker
    partner of every conflict, which can delete more facts than necessary.
    """

    name = "drop-lowest"

    def resolve(
        self,
        graph: TemporalKnowledgeGraph,
        constraints: Iterable[TemporalConstraint],
    ) -> BaselineResult:
        started = time.perf_counter()
        violations = find_conflicts(graph, list(constraints))
        removed: dict[tuple, TemporalFact] = {}
        for violation in violations:
            surviving = [fact for fact in violation.facts if fact.statement_key not in removed]
            if len(surviving) < len(violation.facts):
                continue  # already resolved by an earlier removal
            weakest = min(surviving, key=lambda fact: (fact.confidence, fact.statement_key))
            removed[weakest.statement_key] = weakest
        consistent = graph.filter(
            lambda fact: fact.statement_key not in removed,
            name=f"{graph.name}-droplowest-consistent",
        )
        elapsed = time.perf_counter() - started
        return BaselineResult(
            name=self.name,
            consistent_graph=consistent,
            removed_facts=tuple(removed.values()),
            violations_found=len(violations),
            runtime_seconds=elapsed,
        )
