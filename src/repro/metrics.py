"""Repair-quality metrics.

When a dataset generator plants known-erroneous facts (the "highly noisy
setting" of the paper, benchmark E6), the repair produced by a resolver can be
scored against that ground truth:

* **precision** — fraction of removed facts that were actually erroneous;
* **recall** — fraction of erroneous facts that were removed;
* **F1** — their harmonic mean.

The module also provides agreement metrics between two solvers' MAP states
(used when comparing the exact MLN path with the PSL approximation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .kg import TemporalFact


@dataclass(frozen=True, slots=True)
class RepairQuality:
    """Precision / recall / F1 of a repair against planted noise."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def as_dict(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": float(self.true_positives),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
        }


def _keys(facts: Iterable[TemporalFact]) -> set[tuple]:
    return {fact.statement_key for fact in facts}


def repair_quality(
    removed: Iterable[TemporalFact],
    planted_noise: Iterable[TemporalFact],
) -> RepairQuality:
    """Score the set of removed facts against the planted-noise ground truth."""
    removed_keys = _keys(removed)
    noise_keys = _keys(planted_noise)
    true_positives = len(removed_keys & noise_keys)
    false_positives = len(removed_keys - noise_keys)
    false_negatives = len(noise_keys - removed_keys)
    return RepairQuality(true_positives, false_positives, false_negatives)


def retention_rate(kept: Sequence[TemporalFact], original: Sequence[TemporalFact]) -> float:
    """Fraction of the original facts present in the repaired graph."""
    if not original:
        return 1.0
    kept_keys = _keys(kept)
    return sum(1 for fact in original if fact.statement_key in kept_keys) / len(original)


def assignment_agreement(first: Sequence[bool], second: Sequence[bool]) -> float:
    """Fraction of atoms on which two MAP assignments agree."""
    if len(first) != len(second):
        raise ValueError(f"assignments have different lengths ({len(first)} vs {len(second)})")
    if not first:
        return 1.0
    return sum(1 for a, b in zip(first, second) if a == b) / len(first)


def jaccard(first: Iterable[TemporalFact], second: Iterable[TemporalFact]) -> float:
    """Jaccard similarity of two fact sets (by statement key)."""
    first_keys, second_keys = _keys(first), _keys(second)
    union = first_keys | second_keys
    if not union:
        return 1.0
    return len(first_keys & second_keys) / len(union)
