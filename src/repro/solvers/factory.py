"""Shared back-end factory invocation with precise option diagnostics.

Every solver registry (MLN, PSL, and the unified core registry) instantiates
back-ends from user-supplied keyword options.  A bare ``factory(**kwargs)``
raises a generic ``TypeError`` naming neither the back-end nor the offending
options — and a blanket ``except TypeError`` around the call would also
swallow genuine bugs inside a constructor.  :func:`instantiate_solver`
therefore validates the options against the factory's *signature* first:
only a signature mismatch becomes a :class:`SolverNotAvailableError` (naming
the back-end and the rejected options); any ``TypeError`` raised while the
constructor body runs propagates untouched.
"""

from __future__ import annotations

import inspect
from typing import Callable, TypeVar

from ..errors import SolverNotAvailableError

T = TypeVar("T")


def instantiate_solver(factory: Callable[..., T], description: str, **kwargs) -> T:
    """Call ``factory(**kwargs)``, wrapping signature mismatches.

    ``description`` names the back-end in the error, e.g. ``"MLN back-end
    'ilp'"``.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - non-introspectable factory
        signature = None
    if signature is not None:
        try:
            signature.bind(**kwargs)
        except TypeError as error:
            raise SolverNotAvailableError(
                f"{description} rejected options {sorted(kwargs)}: {error}"
            ) from error
    return factory(**kwargs)
