"""The ProbFOL solver abstraction.

The TeCoRe architecture runs on top of interchangeable probabilistic
first-order-logic (ProbFOL) systems — the demo uses nRockIt (MLNs) and the PSL
solver, and notes that "any off-the-shelf probabilistic first-order logic
system ... can be seamlessly integrated ... by extending the translator".

This module defines what such a back-end must provide: a
:class:`MAPSolver` that takes a ground program and returns a
:class:`MAPSolution` (the most probable world), plus the
:class:`SolverCapabilities` descriptor the translator uses to verify that the
input fits the solver's expressivity.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import SolverError
from ..kg import TemporalFact
from ..logic.ground import GroundProgram
from .capabilities import SolverCapabilities


@dataclass(frozen=True, slots=True)
class SolverStats:
    """Diagnostics reported by a MAP run."""

    solver: str
    runtime_seconds: float
    iterations: int = 0
    atoms: int = 0
    clauses: int = 0
    optimal: bool = False
    objective_bound: Optional[float] = None
    extra: tuple[tuple[str, float], ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class MAPSolution:
    """The most probable world returned by a solver.

    Attributes
    ----------
    assignment:
        One Boolean per ground atom, indexed like ``program.atoms``.
    objective:
        Total satisfied soft weight of the assignment.
    truth_values:
        For continuous solvers (PSL), the pre-rounding soft truth values;
        Boolean solvers repeat the assignment as 0.0/1.0.
    stats:
        Runtime / iteration diagnostics.
    """

    assignment: tuple[bool, ...]
    objective: float
    stats: SolverStats
    truth_values: tuple[float, ...] = ()

    def kept_facts(self, program: GroundProgram) -> list[TemporalFact]:
        """Facts set to true in the MAP state."""
        return [atom.fact for atom, value in zip(program.atoms, self.assignment) if value]

    def removed_facts(self, program: GroundProgram) -> list[TemporalFact]:
        """Evidence facts set to false in the MAP state (the repairs)."""
        return [
            atom.fact
            for atom, value in zip(program.atoms, self.assignment)
            if not value and atom.is_evidence
        ]

    def derived_kept_facts(self, program: GroundProgram) -> list[TemporalFact]:
        """Non-evidence (rule-derived) facts set to true in the MAP state."""
        return [
            atom.fact
            for atom, value in zip(program.atoms, self.assignment)
            if value and not atom.is_evidence
        ]


class MAPSolver(abc.ABC):
    """Interface every MAP back-end implements."""

    #: Short identifier used by the solver registry and reports.
    name: str = "abstract"

    #: True when :meth:`solve` accepts a ``warm_start`` keyword — a sequence
    #: of soft truth values in ``[0, 1]`` (one per atom) used to seed the
    #: search (initial assignment, incumbent, or consensus vector).  Warm
    #: starts never change what a solver *accepts*, only where it starts;
    #: exact back-ends still return an optimum.
    supports_warm_start: bool = False

    @property
    @abc.abstractmethod
    def capabilities(self) -> SolverCapabilities:
        """Expressivity descriptor used by the translator's input checks."""

    @abc.abstractmethod
    def solve(self, program: GroundProgram) -> MAPSolution:
        """Compute the MAP state of ``program``."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _check_feasibility(self, program: GroundProgram, assignment: Sequence[bool]) -> None:
        violations = program.hard_violations(assignment)
        if violations:
            raise SolverError(
                f"{self.name}: produced an assignment violating "
                f"{len(violations)} hard clause(s); first: {violations[0]}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
