"""ProbFOL solver abstraction: interfaces, capabilities, results."""

from .base import MAPSolution, MAPSolver, SolverStats
from .capabilities import (
    LOCAL_SEARCH_CAPABILITIES,
    MLN_CAPABILITIES,
    PSL_CAPABILITIES,
    SolverCapabilities,
    check_expressivity,
)

__all__ = [
    "LOCAL_SEARCH_CAPABILITIES",
    "MAPSolution",
    "MAPSolver",
    "MLN_CAPABILITIES",
    "PSL_CAPABILITIES",
    "SolverCapabilities",
    "SolverStats",
    "check_expressivity",
]
