"""ProbFOL solver abstraction: interfaces, capabilities, results."""

from .base import MAPSolution, MAPSolver, SolverStats
from .capabilities import (
    LOCAL_SEARCH_CAPABILITIES,
    MLN_CAPABILITIES,
    PSL_CAPABILITIES,
    SolverCapabilities,
    check_expressivity,
)
from .decomposed import DecomposedSolver, wrap_decomposed
from .factory import instantiate_solver

__all__ = [
    "DecomposedSolver",
    "LOCAL_SEARCH_CAPABILITIES",
    "MAPSolution",
    "MAPSolver",
    "MLN_CAPABILITIES",
    "PSL_CAPABILITIES",
    "SolverCapabilities",
    "SolverStats",
    "check_expressivity",
    "instantiate_solver",
    "wrap_decomposed",
]
