"""Component-decomposed MAP solving.

:class:`DecomposedSolver` wraps any :class:`~repro.solvers.base.MAPSolver`
factory: it splits the ground program into the connected components of its
interaction graph (:mod:`repro.logic.decompose`), solves each component with
the wrapped back-end — sequentially or on a ``multiprocessing`` pool — and
merges the per-component solutions into one global MAP state.

The wrapper is exact for exact back-ends: components never share a clause,
so the global optimum is the union of the component optima.  For stochastic
or continuous back-ends (MaxWalkSAT, PSL) the decomposition typically
*improves* solution quality, because each subproblem is tiny.

For ``jobs > 1`` the factory must be picklable (a module-level callable or a
``functools.partial`` over one), since it is shipped to the worker processes
together with each component's sub-program.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable

from ..errors import SolverError
from ..logic.decompose import decompose
from ..logic.ground import GroundProgram
from .base import MAPSolution, MAPSolver
from .capabilities import SolverCapabilities


def _solve_component(payload: tuple[Callable[[], MAPSolver], GroundProgram]) -> MAPSolution:
    """Pool worker: build a fresh back-end and solve one component."""
    factory, program = payload
    return factory().solve(program)


def wrap_decomposed(
    factory: Callable[[], MAPSolver], decompose: bool = True, jobs: int = 1
) -> MAPSolver:
    """``DecomposedSolver`` over ``factory`` when ``decompose``, else ``factory()``.

    The single place the decompose/jobs configuration turns into a back-end —
    shared by the MLN and PSL ``solve_map`` drivers and the TeCoRe facade.
    """
    if decompose:
        return DecomposedSolver(factory, jobs=jobs)
    return factory()


class DecomposedSolver(MAPSolver):
    """Solve a ground program component-by-component with a wrapped back-end.

    Parameters
    ----------
    factory:
        Zero-argument callable producing the back-end to run on each
        component (e.g. ``ILPMapSolver`` or
        ``functools.partial(make_solver, "nrockit", time_limit=10)``).
    jobs:
        Number of worker processes.  ``1`` (the default) solves components
        sequentially in-process, reusing a single back-end instance; values
        above one dispatch components to a ``multiprocessing`` pool.
    """

    name = "decomposed"

    def __init__(self, factory: Callable[[], MAPSolver], jobs: int = 1) -> None:
        if jobs < 1:
            raise SolverError(f"jobs must be >= 1, got {jobs}")
        self.factory = factory
        self.jobs = jobs
        self._inner = factory()
        self._pool = None
        self.name = f"decomposed({self._inner.name})"

    @property
    def capabilities(self) -> SolverCapabilities:
        """Expressivity is exactly the wrapped back-end's."""
        return self._inner.capabilities

    # ------------------------------------------------------------------ #
    def solve(self, program: GroundProgram) -> MAPSolution:
        started = time.perf_counter()
        decomposition = decompose(program)
        if decomposition.is_trivial:
            # One component covering every atom: decomposition is a no-op,
            # hand the untouched program straight to the back-end.
            return self._inner.solve(program)

        subprograms = [component.program for component in decomposition.components]
        if self.jobs > 1 and len(subprograms) > 1:
            solutions = self._solve_parallel(subprograms)
        else:
            solutions = [self._inner.solve(subprogram) for subprogram in subprograms]

        merged = decomposition.merge(solutions)
        self._check_feasibility(program, merged.assignment)
        # Report wall-clock time of the whole decomposed solve (the merged
        # stats carry the summed per-component solve time, which under a
        # pool can exceed wall time).
        stats = replace(
            merged.stats,
            solver=self.name,
            runtime_seconds=time.perf_counter() - started,
            extra=merged.stats.extra + (("jobs", float(self.jobs)),),
        )
        return replace(merged, stats=stats)

    def _solve_parallel(self, subprograms: list[GroundProgram]) -> list[MAPSolution]:
        """Fan components out to a process pool (order-preserving).

        The pool is created lazily on first use and reused across ``solve``
        calls, so batched serving (``TeCoRe.resolve_batch``) pays worker
        startup once, not per graph.  ``ProcessPoolExecutor`` (rather than
        ``multiprocessing.Pool``) is used because it raises
        ``BrokenProcessPool`` when a worker dies instead of hanging.
        """
        from concurrent.futures.process import BrokenProcessPool

        payloads = [(self.factory, subprogram) for subprogram in subprograms]
        # Large components dominate; a modest chunksize amortises IPC while
        # keeping the pool load-balanced.
        chunksize = max(1, len(payloads) // (self.jobs * 8))
        try:
            if self._pool is None:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return list(self._pool.map(_solve_component, payloads, chunksize=chunksize))
        except (OSError, ImportError, BrokenProcessPool):
            # Restricted environments (no fork/semaphores) or a killed
            # worker: drop the pool and degrade to the sequential path
            # rather than failing the solve.
            self.close()
            return [self._inner.solve(subprogram) for subprogram in subprograms]

    def close(self) -> None:
        """Release the worker pool (also runs on garbage collection)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "DecomposedSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown timing
        try:
            self.close()
        except Exception:
            pass
