"""Solver expressivity descriptors and input validation.

The paper: "Special care is taken to verify that the input adheres to the
expressivity of the solver."  The MLN path accepts arbitrary weighted ground
clauses; the PSL path is restricted to rules with conjunctive bodies (which
ground to clauses with at most one positive literal) and trades exactness for
scalability.  :func:`check_expressivity` performs that verification before a
program is handed to a back-end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExpressivityError
from ..logic.ground import GroundProgram


@dataclass(frozen=True, slots=True)
class SolverCapabilities:
    """What a back-end can handle and how it behaves."""

    name: str
    exact: bool
    supports_hard_constraints: bool = True
    supports_negative_clauses: bool = True
    max_positive_literals_per_clause: int | None = None
    max_clause_length: int | None = None
    supports_numeric_conditions: bool = True
    scalable: bool = False
    description: str = ""


#: nRockIt-style MLN back-ends: fully expressive, exact, not scalable.
MLN_CAPABILITIES = SolverCapabilities(
    name="mln",
    exact=True,
    supports_hard_constraints=True,
    supports_negative_clauses=True,
    max_positive_literals_per_clause=None,
    max_clause_length=None,
    supports_numeric_conditions=True,
    scalable=False,
    description="Markov Logic Network with numerical constraints (exact MAP via ILP)",
)

#: nPSL-style back-ends: Łukasiewicz relaxation, scalable, approximate.
PSL_CAPABILITIES = SolverCapabilities(
    name="psl",
    exact=False,
    supports_hard_constraints=True,
    supports_negative_clauses=True,
    max_positive_literals_per_clause=1,
    max_clause_length=None,
    supports_numeric_conditions=True,
    scalable=True,
    description="Probabilistic Soft Logic over hinge-loss MRFs (convex MAP, rounded)",
)

#: Local-search back-ends: anytime, approximate, no optimality guarantee.
LOCAL_SEARCH_CAPABILITIES = SolverCapabilities(
    name="local-search",
    exact=False,
    supports_hard_constraints=True,
    supports_negative_clauses=True,
    scalable=True,
    description="stochastic local search (MaxWalkSAT) over the ground program",
)


def check_expressivity(program: GroundProgram, capabilities: SolverCapabilities) -> None:
    """Raise :class:`ExpressivityError` when ``program`` exceeds ``capabilities``.

    Checks performed:

    * hard clauses only if the solver supports them;
    * clauses with negative literals only if supported;
    * the number of positive literals per clause (PSL rules have conjunctive
      bodies, so their clausal form has at most one positive literal);
    * overall clause length, when bounded.
    """
    for clause in program.clauses:
        if clause.is_hard and not capabilities.supports_hard_constraints:
            raise ExpressivityError(
                f"solver {capabilities.name!r} does not support hard constraints "
                f"(clause from {clause.origin!r})"
            )
        positives = sum(1 for _, positive in clause.literals if positive)
        negatives = len(clause.literals) - positives
        if negatives and not capabilities.supports_negative_clauses:
            raise ExpressivityError(
                f"solver {capabilities.name!r} does not support negated literals "
                f"(clause from {clause.origin!r})"
            )
        if (
            capabilities.max_positive_literals_per_clause is not None
            and positives > capabilities.max_positive_literals_per_clause
        ):
            raise ExpressivityError(
                f"solver {capabilities.name!r} allows at most "
                f"{capabilities.max_positive_literals_per_clause} positive literal(s) "
                f"per clause, but clause from {clause.origin!r} has {positives}"
            )
        if (
            capabilities.max_clause_length is not None
            and len(clause.literals) > capabilities.max_clause_length
        ):
            raise ExpressivityError(
                f"solver {capabilities.name!r} allows clauses of length at most "
                f"{capabilities.max_clause_length}, got {len(clause.literals)} "
                f"from {clause.origin!r}"
            )
