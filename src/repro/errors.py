"""Exception hierarchy for the TeCoRe reproduction.

All library-raised exceptions derive from :class:`TecoreError` so callers can
catch a single base class.  Sub-classes are grouped by subsystem: data model,
logic layer, translation, and solving.
"""

from __future__ import annotations


class TecoreError(Exception):
    """Base class for every error raised by the library."""


class TemporalError(TecoreError):
    """Invalid temporal value, interval, or time-domain operation."""


class InvalidIntervalError(TemporalError):
    """An interval was constructed with an end point before its start point."""


class TimeDomainError(TemporalError):
    """A time point falls outside the declared discrete time domain."""


class KGError(TecoreError):
    """Base class for knowledge-graph data-model errors."""


class InvalidTermError(KGError):
    """A term (IRI, literal, blank node) is malformed."""


class InvalidFactError(KGError):
    """A temporal fact (quad) is malformed, e.g. confidence out of range."""


class ParseError(TecoreError):
    """Raised when parsing serialised graphs, rules, or constraints fails."""

    def __init__(self, message: str, line: int | None = None, source: str | None = None):
        self.line = line
        self.source = source
        location = ""
        if source is not None:
            location += f" in {source}"
        if line is not None:
            location += f" at line {line}"
        super().__init__(f"{message}{location}")


class LogicError(TecoreError):
    """Base class for first-order-logic layer errors."""


class UnificationError(LogicError):
    """Two terms or atoms could not be unified."""


class GroundingError(LogicError):
    """A rule or constraint could not be grounded against a graph."""


class UnsafeRuleError(LogicError):
    """A rule uses a head variable that does not appear in its body."""


class TranslationError(TecoreError):
    """The translator could not map the input onto a solver program."""


class ProgramLintError(TecoreError):
    """Static analysis found gating findings in a rule program.

    Raised by the ``lint="strict"`` / ``lint="warn"`` modes of
    :class:`~repro.core.tecore.TeCoRe` and by the serve tier's boot-time
    validation.  The offending :class:`~repro.analysis.LintReport` is
    attached as :attr:`report`.
    """

    def __init__(self, message: str, report: object = None):
        self.report = report
        super().__init__(message)


class ExpressivityError(TranslationError):
    """The input uses features outside the chosen solver's expressivity.

    The paper notes that the TeCoRe translator takes "special care ... to
    verify that the input adheres to the expressivity of the solver"; this
    error is how that verification reports failures.
    """


class SolverError(TecoreError):
    """A probabilistic-FOL solver failed to produce a MAP state."""


class InfeasibleProgramError(SolverError):
    """The hard constraints admit no consistent world (MAP infeasible)."""


class SolverNotAvailableError(SolverError):
    """A requested solver backend is not registered or cannot run."""


class DatasetError(TecoreError):
    """A dataset generator or loader received invalid parameters."""
