"""Ground (propositional) programs.

Grounding a UTKG together with its inference rules and constraints produces a
*ground program*: one Boolean variable per temporal fact (evidence or
derived) and a set of weighted ground clauses.  MAP inference over this
program is exactly weighted MaxSAT, which is how both back-ends consume it:

* the MLN path solves it exactly (ILP / branch & bound) or approximately
  (MaxWalkSAT);
* the PSL path relaxes the Boolean variables to ``[0, 1]`` and replaces each
  clause by its Łukasiewicz hinge loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import GroundingError
from ..kg import TemporalFact

#: Weight substituted for zero-weight soft clauses.  A weight of exactly zero
#: carries no information but would make the clause indistinguishable from a
#: hard clause in encoders keyed on truthiness; the epsilon keeps the clause
#: soft (and the objective finite) while perturbing sums by well under any
#: confidence resolution.  Every grounding engine and solver lowering must
#: route zero weights through :func:`nonzero_weight` so programs built by
#: different paths stay float-for-float identical.
ZERO_WEIGHT_EPSILON = 1e-9


def nonzero_weight(weight: Optional[float]) -> Optional[float]:
    """Normalise a soft-clause weight: exact zero becomes the shared epsilon.

    ``None`` (hard) and non-zero weights pass through unchanged.  This is the
    single definition of the zero-weight rewrite used by every grounding
    engine, the incremental session's objective walk, and the array lowering.
    """
    return ZERO_WEIGHT_EPSILON if weight == 0 else weight


class ClauseKind(str, Enum):
    """Provenance of a ground clause (used in reports and ablations)."""

    EVIDENCE = "evidence"
    RULE = "rule"
    CONSTRAINT = "constraint"
    PRIOR = "prior"


@dataclass(frozen=True, slots=True)
class GroundAtom:
    """A propositional variable standing for one temporal fact.

    Attributes
    ----------
    index:
        Position in the program's atom table (also the solver variable index).
    fact:
        The temporal fact this atom asserts.
    is_evidence:
        True when the fact came from the input UTKG (as opposed to being
        derived by an inference rule during grounding).
    derived_by:
        Name of the rule that derived the fact, when not evidence.
    """

    index: int
    fact: TemporalFact
    is_evidence: bool
    derived_by: Optional[str] = None

    def __str__(self) -> str:
        origin = "evidence" if self.is_evidence else f"derived:{self.derived_by}"
        return f"x{self.index}[{origin}] {self.fact}"


@dataclass(frozen=True, slots=True)
class GroundClause:
    """A weighted disjunction of literals over ground atoms.

    ``literals`` is a sequence of ``(atom_index, positive)`` pairs; the clause
    is satisfied when at least one literal evaluates to true.  ``weight`` is
    ``None`` for hard clauses.
    """

    literals: tuple[tuple[int, bool], ...]
    weight: Optional[float]
    kind: ClauseKind
    origin: str = ""

    def __post_init__(self) -> None:
        if not self.literals:
            raise GroundingError(f"empty ground clause from {self.origin!r}")
        if self.weight is not None and self.weight <= 0 and len(self.literals) > 1:
            raise GroundingError(
                f"non-unit soft clause from {self.origin!r} must have positive weight"
            )

    @property
    def is_hard(self) -> bool:
        return self.weight is None

    @property
    def is_unit(self) -> bool:
        return len(self.literals) == 1

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the clause under a Boolean assignment (indexed by atom)."""
        return any(assignment[index] == positive for index, positive in self.literals)

    def __str__(self) -> str:
        parts = " ∨ ".join(
            ("" if positive else "¬") + f"x{index}" for index, positive in self.literals
        )
        weight = "hard" if self.weight is None else f"{self.weight:g}"
        return f"({parts}) [{weight}, {self.kind.value}:{self.origin}]"


@dataclass
class GroundProgram:
    """The full propositional MAP problem produced by the grounder."""

    atoms: list[GroundAtom] = field(default_factory=list)
    clauses: list[GroundClause] = field(default_factory=list)
    _atom_index: dict[tuple, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_atom(
        self,
        fact: TemporalFact,
        is_evidence: bool,
        derived_by: Optional[str] = None,
    ) -> GroundAtom:
        """Register a fact as a ground atom (idempotent on the statement key)."""
        key = fact.statement_key
        existing = self._atom_index.get(key)
        if existing is not None:
            atom = self.atoms[existing]
            # Evidence status is sticky: once a fact is known to be evidence it
            # stays evidence even if a rule also derives it.  The deriving
            # rule's name is kept through the upgrade so summary()/reports can
            # still attribute the atom to the rule that (also) produced it.
            if is_evidence and not atom.is_evidence:
                upgraded = GroundAtom(atom.index, fact, True, atom.derived_by)
                self.atoms[existing] = upgraded
                return upgraded
            return atom
        atom = GroundAtom(len(self.atoms), fact, is_evidence, derived_by)
        self.atoms.append(atom)
        self._atom_index[key] = atom.index
        return atom

    def atom_for(self, fact: TemporalFact) -> Optional[GroundAtom]:
        """Look up the atom of a fact (by statement key), if registered."""
        index = self._atom_index.get(fact.statement_key)
        return self.atoms[index] if index is not None else None

    def add_clause(
        self,
        literals: Iterable[tuple[int, bool]],
        weight: Optional[float],
        kind: ClauseKind,
        origin: str = "",
    ) -> GroundClause:
        """Add a weighted clause over existing atom indexes.

        Soft unit clauses with negative weight are normalised by flipping the
        literal (``w·sat(l) ≡ const + (−w)·sat(¬l)``), so downstream encoders
        only ever see positive soft weights.
        """
        items = tuple(literals)
        for index, _ in items:
            if index < 0 or index >= len(self.atoms):
                raise GroundingError(f"clause references unknown atom index {index}")
        if weight is not None and weight < 0:
            if len(items) != 1:
                raise GroundingError(
                    f"negative-weight non-unit clause from {origin!r} is not representable"
                )
            index, positive = items[0]
            items = ((index, not positive),)
            weight = -weight
        # Zero-weight clauses carry no information; substitute the shared
        # epsilon so they stay soft (see ZERO_WEIGHT_EPSILON).
        weight = nonzero_weight(weight)
        clause = GroundClause(items, weight, kind, origin)
        self.clauses.append(clause)
        return clause

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.atoms)

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def evidence_atoms(self) -> list[GroundAtom]:
        return [atom for atom in self.atoms if atom.is_evidence]

    def derived_atoms(self) -> list[GroundAtom]:
        return [atom for atom in self.atoms if not atom.is_evidence]

    def hard_clauses(self) -> list[GroundClause]:
        return [clause for clause in self.clauses if clause.is_hard]

    def soft_clauses(self) -> list[GroundClause]:
        return [clause for clause in self.clauses if not clause.is_hard]

    def clauses_of_kind(self, kind: ClauseKind) -> list[GroundClause]:
        return [clause for clause in self.clauses if clause.kind is kind]

    def iter_facts(self) -> Iterator[TemporalFact]:
        return (atom.fact for atom in self.atoms)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def objective(self, assignment: Sequence[bool]) -> float:
        """Sum of satisfied soft-clause weights under ``assignment``."""
        if len(assignment) != len(self.atoms):
            raise GroundingError(
                f"assignment has {len(assignment)} values for {len(self.atoms)} atoms"
            )
        return sum(
            clause.weight
            for clause in self.clauses
            if clause.weight is not None and clause.satisfied_by(assignment)
        )

    def hard_violations(self, assignment: Sequence[bool]) -> list[GroundClause]:
        """Hard clauses violated by ``assignment`` (empty list ⇒ feasible)."""
        return [
            clause
            for clause in self.clauses
            if clause.is_hard and not clause.satisfied_by(assignment)
        ]

    def is_feasible(self, assignment: Sequence[bool]) -> bool:
        """True when no hard clause is violated."""
        return not self.hard_violations(assignment)

    def max_soft_weight(self) -> float:
        """Sum of *all* soft-clause weights (upper bound on the objective).

        Every stored soft weight is positive by construction —
        :meth:`add_clause` flips negative unit clauses and rewrites exact
        zeros to :data:`ZERO_WEIGHT_EPSILON` — so summing all of them is the
        same as summing the positive ones.
        """
        return sum(clause.weight for clause in self.clauses if clause.weight is not None)

    def canonical_signature(self) -> tuple:
        """Order-independent content signature of the program.

        Atoms are identified by statement key (plus evidence status and
        deriving rule) and clauses by their literals rewritten to statement
        keys, so two programs built by different grounding engines — or with
        different atom numbering — compare equal exactly when they encode the
        same MAP problem.  Used by the differential tests and the grounding
        benchmark to prove the indexed engine matches the naive one.
        """
        atom_entries = sorted(
            (atom.fact.statement_key, atom.is_evidence, atom.derived_by or "")
            for atom in self.atoms
        )
        clause_entries = sorted(
            (
                (
                    tuple(
                        sorted(
                            (self.atoms[index].fact.statement_key, positive)
                            for index, positive in clause.literals
                        )
                    ),
                    clause.weight,
                    clause.kind.value,
                    clause.origin,
                )
                for clause in self.clauses
            ),
            # Hard clauses carry weight=None, which float comparison chokes
            # on when two clauses tie on their literals; order them first.
            key=lambda entry: (entry[0], entry[1] is not None, entry[1] or 0.0, entry[2], entry[3]),
        )
        return (tuple(atom_entries), tuple(clause_entries))

    def summary(self) -> dict[str, int]:
        """Size statistics used by reports and benchmark output."""
        return {
            "atoms": self.num_atoms,
            "evidence_atoms": len(self.evidence_atoms()),
            "derived_atoms": len(self.derived_atoms()),
            "clauses": self.num_clauses,
            "hard_clauses": len(self.hard_clauses()),
            "soft_clauses": len(self.soft_clauses()),
            "constraint_clauses": len(self.clauses_of_kind(ClauseKind.CONSTRAINT)),
            "rule_clauses": len(self.clauses_of_kind(ClauseKind.RULE)),
            "evidence_clauses": len(self.clauses_of_kind(ClauseKind.EVIDENCE)),
        }

    def __repr__(self) -> str:
        return f"GroundProgram(atoms={self.num_atoms}, clauses={self.num_clauses})"
