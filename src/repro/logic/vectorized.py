"""The columnar, numpy-vectorized grounding engine.

The indexed engine (:class:`~repro.logic.grounding.IndexedGrounder`) already
joins semi-naively, but it still enumerates candidate facts one Python object
at a time.  This engine changes the *data representation* instead of just the
join strategy: the working graph is mirrored into a
:class:`~repro.kg.columnar.ColumnarFactStore` — entities, relations and
predicates interned to dense integer ids, facts laid out as per-relation
numpy column blocks (subject id, object id, interval begin, interval end,
forward-chaining round) — and each rule or constraint body is compiled into a
sequence of sorted-array merge/`searchsorted` equi-joins plus vectorized
interval masks.

The emitted program is **bit-for-bit identical** to the indexed (and naive)
engine's — same atoms, clauses, firings, violations and round count — because
the engine reuses the exact ordering contract those engines share:

* semi-naive rounds with the same pivot/delta discipline (the columnar round
  column plays the role of the graph's insertion ticks);
* per-round matches re-sorted into the naive enumeration order by the facts'
  lexicographic sort keys, with identical firing/violation deduplication.

Conditions (Allen relations, arithmetic comparisons, term equalities) are
evaluated as numpy masks over the joined columns, short-circuited row-wise in
condition order exactly like the scalar engines; anything the vectorizer does
not recognise — unknown condition classes, non-numeric ``TermValue`` terms,
exotic head-interval expressions — degrades to a per-row evaluation of the
original scalar code path, and bodies with *variable predicates* fall back to
the indexed engine's backtracking matcher wholesale.  Correctness therefore
never depends on a construct being vectorizable.
"""

from __future__ import annotations

from operator import attrgetter, itemgetter
from typing import Iterator, Optional, Sequence

import numpy as np

from ..errors import GroundingError, LogicError
from ..kg import IRI, TemporalFact, TemporalKnowledgeGraph
from ..kg.columnar import ColumnarFactStore, RelationBlock, composite_keys, merge_join
from ..temporal import TimeInterval
from .atom import AllenAtom, Comparison, QuadAtom, TermEquality
from .constraint import TemporalConstraint
from .expressions import (
    BinaryOp,
    Expression,
    IntervalDuration,
    IntervalEnd,
    IntervalStart,
    Number,
    TermValue,
)
from .ground import ClauseKind, GroundAtom, GroundClause, GroundProgram, nonzero_weight
from .grounding import (
    GROUNDING_ENGINES,
    ConstraintViolation,
    GroundingResult,
    RuleFiring,
    _BindingsView,
    _body_sort_key,
    _compile_body,
    _delta_matches,
    _full_matches,
    _GrounderBase,
)
from .rule import TemporalRule
from .terms import Variable


class _NotVectorizable(Exception):
    """Internal signal: evaluate this construct per row instead."""


#: Sort key for match entries (their precomputed rank key comes first).
_first_item = itemgetter(0)

#: Direct slot access to a fact's cached statement key (hot signature path).
_statement_key_of = attrgetter("_statement_key")


# --------------------------------------------------------------------------- #
# Body compilation
# --------------------------------------------------------------------------- #
class _VectorAtom:
    """One quad atom split into constant / variable-name entries."""

    __slots__ = ("predicate", "subject", "object", "interval", "intra_equal")

    def __init__(self, atom: QuadAtom) -> None:
        def entry(position):
            return (True, position.name) if isinstance(position, Variable) else (False, position)

        self.predicate = atom.predicate  # always a constant IRI on this path
        self.subject = entry(atom.subject)
        self.object = entry(atom.object)
        self.interval = entry(atom.interval)
        self.intra_equal = (
            self.subject[0] and self.object[0] and self.subject[1] == self.object[1]
        )


class _VectorBody:
    """A rule/constraint body compiled for the columnar join planner.

    ``fallback`` marks bodies the planner cannot join columnar-ly (variable
    predicates); ``dead`` marks bodies where one variable name is used in
    both an entity and an interval position — such a body can never match
    (the scalar engines reject the clash per candidate), so the planner
    skips it outright.
    """

    __slots__ = ("atoms", "fallback", "dead", "plans", "entity_vars", "interval_vars")

    def __init__(self, body: Sequence[QuadAtom]) -> None:
        self.fallback = any(isinstance(atom.predicate, Variable) for atom in body)
        self.plans = _compile_body(body) if self.fallback else None
        self.atoms = None if self.fallback else [_VectorAtom(atom) for atom in body]
        self.entity_vars: set[str] = set()
        self.interval_vars: set[str] = set()
        for atom in body:
            for position in (atom.subject, atom.object):
                if isinstance(position, Variable):
                    self.entity_vars.add(position.name)
            if isinstance(atom.interval, Variable):
                self.interval_vars.add(atom.interval.name)
        self.dead = not self.fallback and bool(self.entity_vars & self.interval_vars)


class _MatchTable:
    """Intermediate join result: variable columns plus per-atom row indices."""

    __slots__ = ("size", "entities", "intervals", "rows", "blocks")

    def __init__(
        self,
        size: int,
        entities: dict[str, np.ndarray],
        intervals: dict[str, tuple[np.ndarray, np.ndarray]],
        rows: dict[int, np.ndarray],
        blocks: dict[int, RelationBlock],
    ) -> None:
        self.size = size
        self.entities = entities
        self.intervals = intervals
        self.rows = rows
        self.blocks = blocks

    def materialize_bodies(self, arity: int, alive: np.ndarray) -> list[tuple[TemporalFact, ...]]:
        """Body-fact tuples of the alive rows, decoded column-wise.

        One ``map`` over each atom position's row indices plus a ``zip``
        across positions keeps the per-match Python work at C speed.
        """
        per_position = []
        for position in range(arity):
            facts = self.blocks[position].facts
            rows = self.rows[position][alive].tolist()
            per_position.append(map(facts.__getitem__, rows))
        return list(zip(*per_position))


# --------------------------------------------------------------------------- #
# The vectorized join
# --------------------------------------------------------------------------- #
def _join_body(
    compiled: _VectorBody,
    store: ColumnarFactStore,
    windows: Sequence[str],
    delta_round: int,
    order: Sequence[int],
) -> Optional[_MatchTable]:
    """Join the body atoms in ``order`` under per-position round windows.

    ``windows[position]`` is ``"delta"`` (round ≥ ``delta_round``), ``"old"``
    (round < ``delta_round``) or ``"all"`` — the vectorized mirror of the
    indexed engine's insertion-tick bounds.  Returns ``None`` when the join
    is empty.
    """
    atoms = compiled.atoms
    table: Optional[_MatchTable] = None
    for position in order:
        atom = atoms[position]
        block = store.block_for(atom.predicate)
        if block is None or len(block) == 0:
            return None
        columns = block.columns()
        mask: Optional[np.ndarray] = None

        def narrow(mask, condition):
            return condition if mask is None else mask & condition

        window = windows[position]
        if window == "delta" and delta_round > 0:
            mask = narrow(mask, columns["round"] >= delta_round)
        elif window == "old":
            mask = narrow(mask, columns["round"] < delta_round)

        for column_name, (is_var, value) in (
            ("subject", atom.subject),
            ("object", atom.object),
        ):
            if not is_var:
                term_id = store.entities.lookup(value)
                if term_id is None:
                    return None
                mask = narrow(mask, columns[column_name] == term_id)
        is_var, value = atom.interval
        if not is_var:
            mask = narrow(mask, columns["begin"] == value.start)
            mask = narrow(mask, columns["end"] == value.end)
        if atom.intra_equal:
            mask = narrow(mask, columns["subject"] == columns["object"])

        rows = np.arange(len(block)) if mask is None else np.flatnonzero(mask)
        if rows.size == 0:
            return None

        # Split the atom's variables into join keys (already bound) and fresh
        # bindings, honouring intra-atom repetition (filtered above).
        join_left: list[np.ndarray] = []
        join_right: list[np.ndarray] = []
        fresh_entities: list[tuple[str, str]] = []
        fresh_interval: Optional[str] = None
        bound_here: set[str] = set()
        for column_name, (is_var, name) in (
            ("subject", atom.subject),
            ("object", atom.object),
        ):
            if not is_var:
                continue
            if table is not None and name in table.entities:
                join_left.append(table.entities[name])
                join_right.append(columns[column_name][rows])
            elif name not in bound_here:
                fresh_entities.append((name, column_name))
                bound_here.add(name)
        is_var, name = atom.interval
        if is_var:
            if table is not None and name in table.intervals:
                begins, ends = table.intervals[name]
                join_left.extend((begins, ends))
                join_right.extend((columns["begin"][rows], columns["end"][rows]))
            else:
                fresh_interval = name

        if table is None:
            entities = {name: columns[column_name][rows] for name, column_name in fresh_entities}
            intervals = {}
            if fresh_interval is not None:
                intervals[fresh_interval] = (
                    columns["begin"][rows],
                    columns["end"][rows],
                )
            table = _MatchTable(rows.size, entities, intervals, {position: rows}, {position: block})
            continue

        if join_left:
            left_key, right_key = composite_keys(join_left, join_right)
            left_index, right_index = merge_join(left_key, right_key)
        else:  # no shared variables: cartesian product
            left_index = np.repeat(np.arange(table.size), rows.size)
            right_index = np.tile(np.arange(rows.size), table.size)
        if left_index.size == 0:
            return None

        selected = rows[right_index]
        entities = {name: column[left_index] for name, column in table.entities.items()}
        intervals = {
            name: (begins[left_index], ends[left_index])
            for name, (begins, ends) in table.intervals.items()
        }
        for name, column_name in fresh_entities:
            entities[name] = columns[column_name][selected]
        if fresh_interval is not None:
            intervals[fresh_interval] = (
                columns["begin"][selected],
                columns["end"][selected],
            )
        new_rows = {p: arr[left_index] for p, arr in table.rows.items()}
        new_rows[position] = selected
        blocks = dict(table.blocks)
        blocks[position] = block
        table = _MatchTable(left_index.size, entities, intervals, new_rows, blocks)
    return table


def _iter_pivot_tables(
    compiled: _VectorBody, store: ColumnarFactStore, delta_round: int
) -> Iterator[_MatchTable]:
    """Semi-naive split: one join per pivot position, disjoint by window."""
    arity = len(compiled.atoms)
    for pivot in range(arity):
        if delta_round <= 0 and pivot > 0:
            # Round one: no pre-delta facts exist, only pivot 0 can match.
            break
        windows = [
            "delta" if position == pivot else "old" if position < pivot else "all"
            for position in range(arity)
        ]
        order = [pivot, *(position for position in range(arity) if position != pivot)]
        table = _join_body(compiled, store, windows, delta_round, order)
        if table is not None and table.size:
            yield table


def _full_table(compiled: _VectorBody, store: ColumnarFactStore) -> Optional[_MatchTable]:
    """One unwindowed join over the whole store (constraint grounding)."""
    arity = len(compiled.atoms)
    return _join_body(compiled, store, ["all"] * arity, 0, range(arity))


# --------------------------------------------------------------------------- #
# Vectorized condition evaluation
# --------------------------------------------------------------------------- #
_ALLEN_MASKS = {
    # The *inclusive* constraint-predicate readings of repro.temporal.allen.
    "before": lambda s1, e1, s2, e2: e1 < s2,
    "after": lambda s1, e1, s2, e2: s1 > e2,
    "overlaps": lambda s1, e1, s2, e2: (s1 <= e2) & (s2 <= e1),
    "overlap": lambda s1, e1, s2, e2: (s1 <= e2) & (s2 <= e1),
    "disjoint": lambda s1, e1, s2, e2: (s1 > e2) | (s2 > e1),
    "meets": lambda s1, e1, s2, e2: e1 + 1 == s2,
    "metBy": lambda s1, e1, s2, e2: s1 == e2 + 1,
    "starts": lambda s1, e1, s2, e2: (s1 == s2) & (e1 < e2),
    "startedBy": lambda s1, e1, s2, e2: (s1 == s2) & (e1 > e2),
    "during": lambda s1, e1, s2, e2: (s1 > s2) & (e1 < e2),
    "contains": lambda s1, e1, s2, e2: (s1 < s2) & (e1 > e2),
    "finishes": lambda s1, e1, s2, e2: (e1 == e2) & (s1 > s2),
    "finishedBy": lambda s1, e1, s2, e2: (e1 == e2) & (s1 < s2),
    "equals": lambda s1, e1, s2, e2: (s1 == s2) & (e1 == e2),
    "within": lambda s1, e1, s2, e2: (s2 <= s1) & (e1 <= e2),
}

_COMPARISON_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "==": np.equal,
    "!=": np.not_equal,
}


def _row_view(table: _MatchTable, store: ColumnarFactStore, match: int) -> _BindingsView:
    """Scalar substitution view of one match row (the per-row fallback)."""
    values: dict = {}
    for name, column in table.entities.items():
        values[name] = store.entities.term(int(column[match]))
    for name, (begins, ends) in table.intervals.items():
        values[name] = TimeInterval(int(begins[match]), int(ends[match]))
    return _BindingsView(values)


def _per_row_mask(condition, table, store, alive: np.ndarray) -> np.ndarray:
    out = np.empty(alive.size, dtype=bool)
    for index, match in enumerate(alive):
        out[index] = condition.holds(_row_view(table, store, int(match)))
    return out


def _evaluate_expression(
    expression: Expression, table: _MatchTable, store: ColumnarFactStore, alive: np.ndarray
):
    """Vectorized arithmetic-expression evaluation over the alive rows."""
    if isinstance(expression, Number):
        return float(expression.value)
    if isinstance(expression, (IntervalStart, IntervalEnd, IntervalDuration)):
        pair = table.intervals.get(expression.variable.name)
        if pair is None:
            raise _NotVectorizable  # unbound / entity-bound: scalar path raises
        begins, ends = pair
        if isinstance(expression, IntervalStart):
            return begins[alive].astype(np.float64)
        if isinstance(expression, IntervalEnd):
            return ends[alive].astype(np.float64)
        return (ends[alive] - begins[alive] + 1).astype(np.float64)
    if isinstance(expression, TermValue):
        name = expression.variable.name
        pair = table.intervals.get(name)
        if pair is not None:
            return pair[0][alive].astype(np.float64)
        column = table.entities.get(name)
        if column is None:
            raise _NotVectorizable
        ids = column[alive]
        unique_ids, codes = np.unique(ids, return_inverse=True)
        # Interpret each distinct term once; non-numeric terms raise the
        # same LogicError the scalar engines raise.
        values = np.empty(unique_ids.size, dtype=np.float64)
        probe = _BindingsView({})
        for index, term_id in enumerate(unique_ids):
            probe._bindings[name] = store.entities.term(int(term_id))
            values[index] = expression.evaluate(probe)
        return values[codes]
    if isinstance(expression, BinaryOp):
        left = _evaluate_expression(expression.left, table, store, alive)
        right = _evaluate_expression(expression.right, table, store, alive)
        if expression.operator == "+":
            return left + right
        if expression.operator == "-":
            return left - right
        if expression.operator == "*":
            return left * right
        if np.any(np.asarray(right) == 0):
            raise LogicError("division by zero in rule condition")
        return left / right
    raise _NotVectorizable


def _condition_mask(condition, table, store, alive: np.ndarray) -> np.ndarray:
    """Boolean mask of ``condition`` over the alive rows (vectorized when possible)."""
    if isinstance(condition, AllenAtom):
        left = table.intervals.get(condition.left.name)
        right = table.intervals.get(condition.right.name)
        if left is None or right is None:
            return _per_row_mask(condition, table, store, alive)
        formula = _ALLEN_MASKS[condition.relation]
        return formula(left[0][alive], left[1][alive], right[0][alive], right[1][alive])
    if isinstance(condition, TermEquality):
        sides = []
        for position in (condition.left, condition.right):
            if isinstance(position, Variable):
                column = table.entities.get(position.name)
                if column is None:
                    return _per_row_mask(condition, table, store, alive)
                sides.append(column[alive])
            else:
                sides.append(position)
        left, right = sides
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            equal = left == right
            return np.full(alive.size, equal != condition.negated)
        if not isinstance(left, np.ndarray):
            left, right = right, left
        if not isinstance(right, np.ndarray):
            right_id = store.entities.lookup(right)
            if right_id is None:
                return np.full(alive.size, condition.negated)
            right = right_id
        mask = left != right if condition.negated else left == right
        return mask
    if isinstance(condition, Comparison):
        try:
            left = _evaluate_expression(condition.left, table, store, alive)
            right = _evaluate_expression(condition.right, table, store, alive)
        except _NotVectorizable:
            return _per_row_mask(condition, table, store, alive)
        result = _COMPARISON_OPS[condition.operator](left, right)
        if np.ndim(result) == 0:
            return np.full(alive.size, bool(result))
        return result
    return _per_row_mask(condition, table, store, alive)


def _apply_conditions(conditions, table, store, alive: np.ndarray) -> np.ndarray:
    """Filter the alive rows through each condition in order.

    Evaluating condition *k* only on rows that passed conditions 1..k-1
    reproduces the scalar engines' per-match short-circuit — including which
    rows ever reach an error-raising condition.
    """
    for condition in conditions:
        if alive.size == 0:
            return alive
        alive = alive[_condition_mask(condition, table, store, alive)]
    return alive


def _violated_rows(constraint: TemporalConstraint, table, store, alive: np.ndarray) -> np.ndarray:
    """Rows whose match violates the constraint (mirrors ``violated_by``)."""
    alive = _apply_conditions(constraint.body_conditions, table, store, alive)
    if not constraint.head_conditions:
        return alive  # pure denial: every applicable match is a conflict
    violated: list[np.ndarray] = []
    remaining = alive
    for condition in constraint.head_conditions:
        if remaining.size == 0:
            break
        mask = _condition_mask(condition, table, store, remaining)
        violated.append(remaining[~mask])
        remaining = remaining[mask]
    if not violated:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(violated))


# --------------------------------------------------------------------------- #
# Head interval computation
# --------------------------------------------------------------------------- #
def _head_interval_columns(
    rule: TemporalRule, table: _MatchTable, store: ColumnarFactStore, alive: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row head intervals ``(alive', begins, ends)``.

    Rows whose head interval is undefined (e.g. an empty intersection) are
    dropped, exactly like ``head_interval_for`` returning ``None``.
    """
    empty = (np.empty(0, dtype=np.int64),) * 3
    expression = rule.head_interval
    if expression is not None:
        kind = expression.kind
        if kind == "var":
            pair = table.intervals.get(expression.left or "")
            if pair is None:
                return empty
            return alive, pair[0][alive], pair[1][alive]
        if kind in ("intersection", "union"):
            left = table.intervals.get(expression.left or "")
            right = table.intervals.get(expression.right or "")
            if left is None or right is None:
                return empty
            if kind == "intersection":
                begins = np.maximum(left[0][alive], right[0][alive])
                ends = np.minimum(left[1][alive], right[1][alive])
                keep = ends >= begins
                return alive[keep], begins[keep], ends[keep]
            begins = np.minimum(left[0][alive], right[0][alive])
            ends = np.maximum(left[1][alive], right[1][alive])
            return alive, begins, ends
        if kind == "shift":
            pair = table.intervals.get(expression.left or "")
            if pair is None:
                return empty
            return alive, pair[0][alive] + expression.delta, pair[1][alive] + expression.delta
        # Unknown expression kind: evaluate the scalar path per row.
        kept, begins, ends = [], [], []
        for match in alive:
            interval = rule.head_interval_for(_row_view(table, store, int(match)))
            if interval is None:
                continue
            kept.append(match)
            begins.append(interval.start)
            ends.append(interval.end)
        return (
            np.asarray(kept, dtype=np.int64),
            np.asarray(begins, dtype=np.int64),
            np.asarray(ends, dtype=np.int64),
        )
    interval_variable = rule.head.interval_variable()
    if interval_variable is not None:
        pair = table.intervals.get(interval_variable.name)
        if pair is None:
            return empty  # bound to an entity: scalar path derives nothing
        return alive, pair[0][alive], pair[1][alive]
    interval = rule.head.interval
    if isinstance(interval, TimeInterval):
        return (
            alive,
            np.full(alive.size, interval.start, dtype=np.int64),
            np.full(alive.size, interval.end, dtype=np.int64),
        )
    return empty


def _instantiate_heads(
    rule: TemporalRule,
    table: _MatchTable,
    store: ColumnarFactStore,
    alive: np.ndarray,
    begins: np.ndarray,
    ends: np.ndarray,
) -> list[TemporalFact]:
    """Head facts for the surviving rows (fast path + scalar fallback)."""
    head = rule.head
    size = alive.size
    resolved_columns = []
    fast = True
    for position in (head.subject, head.predicate, head.object):
        if isinstance(position, Variable):
            column = table.entities.get(position.name)
            if column is None:
                fast = False  # interval-bound or unbound: scalar path raises
                break
            resolved_columns.append(store.entities.terms(column[alive].tolist()))
        else:
            resolved_columns.append([position] * size)
    if not fast:
        return [
            head.instantiate(
                _row_view(table, store, int(match)),
                interval=TimeInterval(int(begin), int(end)),
                confidence=rule.derived_confidence,
            )
            for match, begin, end in zip(alive, begins, ends)
        ]
    facts = []
    confidence = rule.derived_confidence
    interval_cache: dict[tuple[int, int], TimeInterval] = {}
    for subject, predicate, obj, begin, end in zip(
        *resolved_columns, begins.tolist(), ends.tolist()
    ):
        if not isinstance(predicate, IRI):
            raise LogicError(f"predicate resolved to non-IRI value {predicate!r}")
        span = interval_cache.get((begin, end))
        if span is None:
            span = TimeInterval(begin, end)
            interval_cache[(begin, end)] = span
        facts.append(
            TemporalFact(
                subject=subject,
                predicate=predicate,
                object=obj,
                interval=span,
                confidence=confidence,
            )
        )
    return facts


# --------------------------------------------------------------------------- #
# Fast program emission
# --------------------------------------------------------------------------- #
def _fast_atom(
    atoms: list[GroundAtom],
    atom_index: dict[tuple, int],
    fact: TemporalFact,
    is_evidence: bool,
    derived_by: Optional[str] = None,
) -> GroundAtom:
    """Inlined :meth:`GroundProgram.add_atom` (same semantics, fewer layers).

    Registration is idempotent on the statement key with the same sticky
    evidence-upgrade rule; only the per-call method/property overhead is
    shaved, which matters on the per-firing emission path.
    """
    key = fact.statement_key
    cached = atom_index.get(key)
    if cached is not None:
        atom = atoms[cached]
        if is_evidence and not atom.is_evidence:
            # Sticky evidence upgrade; the deriving rule's name is preserved
            # (same semantics as GroundProgram.add_atom).
            atom = GroundAtom(atom.index, fact, True, atom.derived_by)
            atoms[cached] = atom
        return atom
    atom = GroundAtom(len(atoms), fact, is_evidence, derived_by)
    atoms.append(atom)
    atom_index[key] = atom.index
    return atom


def _normalized_clause(literals, weight, kind: ClauseKind, origin: str) -> GroundClause:
    """Inlined :meth:`GroundProgram.add_clause` normalisation.

    Identical weight handling — negative soft units flip their literal,
    negative non-units raise, zero weights become the shared epsilon — minus
    the per-literal bounds check (the engine only emits indexes of atoms it
    just registered).
    """
    items = tuple(literals)
    if weight is not None and weight < 0:
        if len(items) != 1:
            raise GroundingError(
                f"negative-weight non-unit clause from {origin!r} is not representable"
            )
        index, positive = items[0]
        items = ((index, not positive),)
        weight = -weight
    return GroundClause(items, nonzero_weight(weight), kind, origin)


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class VectorizedGrounder(_GrounderBase):
    """Columnar, numpy-vectorized grounding engine.

    A pure optimisation of :class:`~repro.logic.grounding.IndexedGrounder`:
    the emitted program is bit-for-bit identical (the differential suite in
    ``tests/test_vectorized_equivalence.py`` proves it); the hot join path
    runs as sorted-array merge joins and boolean masks over interned integer
    columns instead of per-fact Python dictionary probes.

    The engine owns the whole pipeline (it overrides :meth:`ground`): when
    every body is vectorizable it never materialises the working-graph copy
    the scalar engines maintain — the columnar store *is* the working state.
    Only bodies with variable predicates bring the row-oriented graph back,
    for the indexed engine's backtracking matcher.
    """

    engine = "vectorized"

    # ------------------------------------------------------------------ #
    def ground(self) -> GroundingResult:
        program = GroundProgram()
        result = GroundingResult(program=program)

        # 1. Evidence atoms and their soft unit clauses — bulk construction,
        # byte-identical to _GrounderBase.ground's add_atom/add_clause loop
        # (fresh atoms, unit-clause weight normalisation inlined).
        atoms = program.atoms
        atom_index = program._atom_index
        clauses = program.clauses
        keep_bias = self.keep_bias
        for fact in self.graph:
            index = len(atoms)
            atoms.append(GroundAtom(index, fact, True, None))
            atom_index[fact.statement_key] = index
            weight = fact.log_weight + keep_bias
            literal = (index, True)
            if weight < 0:
                literal, weight = (index, False), -weight
            else:
                weight = nonzero_weight(weight)
            clauses.append(GroundClause((literal,), weight, ClauseKind.EVIDENCE, "evidence"))

        chain_rules = bool(self.derive_facts and self.rules)
        compiled_rules = [_VectorBody(rule.body) for rule in self.rules] if chain_rules else []
        compiled_constraints = [_VectorBody(c.body) for c in self.constraints]
        needs_graph = any(c.fallback for c in compiled_rules) or any(
            c.fallback for c in compiled_constraints
        )
        # The columnar store is the working state; the row-oriented working
        # graph is only maintained alongside it for fallback bodies.
        working = self.graph.copy(name=f"{self.graph.name}-working") if needs_graph else None
        store = ColumnarFactStore(self.graph, round_number=0)
        evidence_keys = set(store._keys)
        # Tag every evidence row with its ground-atom index (evidence atoms
        # were created in graph order, so the atom table maps keys to them).
        for block in store.blocks():
            block.tags = [atom_index[fact.statement_key] for fact in block.facts]

        if chain_rules:
            result.rounds = self._chain_rounds(
                program, result, store, working, compiled_rules, evidence_keys
            )
        self._constraint_pass(program, result, store, working, compiled_constraints, evidence_keys)
        return result

    # ------------------------------------------------------------------ #
    def _rule_matches_vectorized(
        self,
        rule: TemporalRule,
        compiled: _VectorBody,
        store: ColumnarFactStore,
        delta_round: int,
        seen_firings: set[tuple],
    ) -> list[tuple]:
        """Matches of one rule this round, in the naive enumeration order.

        Each entry is ``(rank_key, body_facts, head_fact, body_atom_indexes)``
        — the rank key orders matches identically to the scalar engines'
        ``_body_sort_key`` (per-block sort-key ranks compare like the keys
        themselves), and the atom indexes come from the blocks' row tags so
        emission can skip per-fact atom-table probes.
        """
        arity = len(compiled.atoms)
        matches: list[tuple] = []
        for pivot_table in _iter_pivot_tables(compiled, store, delta_round):
            alive = np.arange(pivot_table.size)
            alive = _apply_conditions(rule.conditions, pivot_table, store, alive)
            if alive.size == 0:
                continue
            alive, begins, ends = _head_interval_columns(rule, pivot_table, store, alive)
            if alive.size == 0:
                continue
            head_facts = _instantiate_heads(rule, pivot_table, store, alive, begins, ends)
            bodies = pivot_table.materialize_bodies(arity, alive)
            ranks = zip(
                *(
                    pivot_table.blocks[p].rank_array()[pivot_table.rows[p][alive]].tolist()
                    for p in range(arity)
                )
            )
            indexes = zip(
                *(
                    pivot_table.blocks[p].tags_array()[pivot_table.rows[p][alive]].tolist()
                    for p in range(arity)
                )
            )
            rule_name = rule.name
            for body_facts, head_fact, rank_key, atom_indexes in zip(
                bodies, head_facts, ranks, indexes
            ):
                signature = (
                    rule_name,
                    tuple(map(_statement_key_of, body_facts)),
                    head_fact.statement_key,
                )
                if signature in seen_firings:
                    continue
                seen_firings.add(signature)
                matches.append((rank_key, body_facts, head_fact, atom_indexes))
        matches.sort(key=_first_item)
        return matches

    def _rule_matches_fallback(
        self,
        rule: TemporalRule,
        compiled: _VectorBody,
        working: TemporalKnowledgeGraph,
        delta_since: int,
        seen_firings: set[tuple],
    ) -> list[tuple]:
        """Variable-predicate bodies: the indexed engine's backtracking join.

        Entries mirror :meth:`_rule_matches_vectorized` with the body sort
        key itself as the rank key and no precomputed atom indexes.
        """
        matches: list[tuple] = []
        for substitution, body_facts in _delta_matches(compiled.plans, working, delta_since):
            if not all(condition.holds(substitution) for condition in rule.conditions):
                continue
            head_interval = rule.head_interval_for(substitution)
            if head_interval is None:
                continue
            head_fact = rule.head.instantiate(
                substitution,
                interval=head_interval,
                confidence=rule.derived_confidence,
            )
            signature = (
                rule.name,
                tuple(fact.statement_key for fact in body_facts),
                head_fact.statement_key,
            )
            if signature in seen_firings:
                continue
            seen_firings.add(signature)
            matches.append((_body_sort_key(body_facts), body_facts, head_fact, None))
        matches.sort(key=_first_item)
        return matches

    # ------------------------------------------------------------------ #
    def _chain_rounds(
        self,
        program: GroundProgram,
        result: GroundingResult,
        store: ColumnarFactStore,
        working: Optional[TemporalKnowledgeGraph],
        compiled_bodies: list[_VectorBody],
        evidence_keys: set[tuple],
    ) -> int:
        seen_firings: set[tuple] = set()
        prior_added: set[int] = set()
        rounds_used = 0
        delta_since = 0  # insertion-tick cursor, for fallback bodies only
        for round_number in range(1, self.max_rounds + 1):
            round_mark = working.mark() if working is not None else 0
            delta_round = round_number - 1
            round_matches: list[tuple[TemporalRule, list[tuple]]] = []
            any_matches = False
            for rule, compiled in zip(self.rules, compiled_bodies):
                if compiled.dead:
                    continue
                # Both helpers return matches already re-established in the
                # naive enumeration order (lexicographic in the body facts),
                # so all engines emit identical programs.
                if compiled.fallback:
                    matches = self._rule_matches_fallback(
                        rule, compiled, working, delta_since, seen_firings
                    )
                else:
                    matches = self._rule_matches_vectorized(
                        rule, compiled, store, delta_round, seen_firings
                    )
                if matches:
                    any_matches = True
                    round_matches.append((rule, matches))

            if not any_matches:
                break
            rounds_used = round_number
            atoms = program.atoms
            atom_index = program._atom_index
            clauses = program.clauses
            firings = result.firings
            derived_prior = self.derived_prior
            for rule, matches in round_matches:
                rule_name = rule.name
                rule_weight = rule.weight
                # add_clause's unit normalisation, hoisted: rule clauses have
                # ≥ 2 literals, so negative weights are unrepresentable and a
                # zero weight becomes the shared epsilon.
                if rule_weight is not None and rule_weight < 0:
                    raise GroundingError(
                        f"negative-weight non-unit clause from {rule_name!r} "
                        "is not representable"
                    )
                clause_weight = nonzero_weight(rule_weight)
                prior_origin = f"prior:{rule_name}"
                for _, body_facts, head_fact, atom_indexes in matches:
                    head_atom = _fast_atom(
                        atoms,
                        atom_index,
                        head_fact,
                        head_fact.statement_key in evidence_keys,
                        rule_name,
                    )
                    head_index = head_atom.index
                    if (
                        not head_atom.is_evidence
                        and derived_prior > 0
                        and head_index not in prior_added
                    ):
                        prior_added.add(head_index)
                        # -prior on (x, True) normalises to +prior on (x, False).
                        clauses.append(
                            GroundClause(
                                ((head_index, False),),
                                derived_prior,
                                ClauseKind.PRIOR,
                                prior_origin,
                            )
                        )
                    if (store.add(head_fact, round_number, tag=head_index) and working is not None):
                        working.add(head_fact)
                    if atom_indexes is None:  # fallback matches carry no row tags
                        literals = [
                            (
                                _fast_atom(
                                    atoms,
                                    atom_index,
                                    fact,
                                    fact.statement_key in evidence_keys,
                                ).index,
                                False,
                            )
                            for fact in body_facts
                        ]
                        literals.append((head_index, True))
                    else:
                        literals = [*((index, False) for index in atom_indexes), (head_index, True)]
                    clauses.append(
                        GroundClause(tuple(literals), clause_weight, ClauseKind.RULE, rule_name)
                    )
                    firings.append(RuleFiring(rule_name, body_facts, head_fact, rule_weight))
            delta_since = round_mark
        return rounds_used

    # ------------------------------------------------------------------ #
    def _constraint_pass(
        self,
        program: GroundProgram,
        result: GroundingResult,
        store: ColumnarFactStore,
        working: Optional[TemporalKnowledgeGraph],
        compiled_constraints: list[_VectorBody],
        evidence_keys: set[tuple],
    ) -> None:
        atoms = program.atoms
        atom_index = program._atom_index
        clauses = program.clauses
        for constraint, compiled in zip(self.constraints, compiled_constraints):
            matches: list[tuple] = []
            if compiled.dead:
                pass
            elif compiled.fallback:
                for substitution, facts in _full_matches(compiled.plans, working):
                    keys = tuple(fact.statement_key for fact in facts)
                    if len(set(keys)) != len(keys):
                        continue
                    if not constraint.violated_by(substitution):
                        continue
                    matches.append((_body_sort_key(facts), facts, tuple(sorted(keys)), None))
            else:
                table = _full_table(compiled, store)
                if table is not None and table.size:
                    alive = np.arange(table.size)
                    # Degenerate matches: the same fact filling two body atoms.
                    arity = len(compiled.atoms)
                    for first in range(arity):
                        for second in range(first + 1, arity):
                            if (
                                compiled.atoms[first].predicate != compiled.atoms[second].predicate
                            ):
                                continue
                            if alive.size == 0:
                                break
                            alive = alive[table.rows[first][alive] != table.rows[second][alive]]
                    violated = _violated_rows(constraint, table, store, alive)
                    bodies = table.materialize_bodies(arity, violated)
                    ranks = zip(
                        *(
                            table.blocks[p].rank_array()[table.rows[p][violated]].tolist()
                            for p in range(arity)
                        )
                    )
                    indexes = zip(
                        *(
                            table.blocks[p].tags_array()[table.rows[p][violated]].tolist()
                            for p in range(arity)
                        )
                    )
                    for facts, rank_key, atom_indexes in zip(bodies, ranks, indexes):
                        keys = tuple(fact.statement_key for fact in facts)
                        matches.append((rank_key, facts, tuple(sorted(keys)), atom_indexes))
            # Sort before deduplicating: of two symmetric matches the naive
            # enumeration keeps the lexicographically first one.
            matches.sort(key=_first_item)
            seen: set[tuple] = set()
            for _, facts, sorted_keys, atom_indexes in matches:
                if sorted_keys in seen:
                    continue
                seen.add(sorted_keys)
                if atom_indexes is None:  # fallback matches carry no row tags
                    literals = [
                        (
                            _fast_atom(
                                atoms, atom_index, fact, fact.statement_key in evidence_keys
                            ).index,
                            False,
                        )
                        for fact in facts
                    ]
                else:
                    literals = [(index, False) for index in atom_indexes]
                clauses.append(
                    _normalized_clause(
                        literals, constraint.weight, ClauseKind.CONSTRAINT, constraint.name
                    )
                )
                result.violations.append(
                    ConstraintViolation(constraint.name, tuple(facts), constraint.weight)
                )


#: Make the vectorized engine selectable wherever the other engines are.
GROUNDING_ENGINES["vectorized"] = VectorizedGrounder
