"""Substitutions: partial mappings from variables to binding values.

A substitution is produced by matching quad atoms against facts and consumed
when instantiating rule heads and evaluating conditions.  Substitutions are
immutable; extending one returns a new substitution (or ``None`` on clash),
which keeps the grounding engine's backtracking search simple and correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from ..kg import Term
from ..temporal import TimeInterval
from .terms import BindingValue, Variable


@dataclass(frozen=True, slots=True)
class Substitution:
    """An immutable mapping from variables to terms / intervals."""

    _bindings: tuple[tuple[Variable, BindingValue], ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "Substitution":
        return cls(())

    @classmethod
    def of(cls, mapping: Mapping[Variable, BindingValue]) -> "Substitution":
        return cls(tuple(sorted(mapping.items(), key=lambda item: item[0].name)))

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, variable: Variable) -> Optional[BindingValue]:
        for bound, value in self._bindings:
            if bound == variable:
                return value
        return None

    def __contains__(self, variable: object) -> bool:
        return isinstance(variable, Variable) and self.get(variable) is not None

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[tuple[Variable, BindingValue]]:
        return iter(self._bindings)

    def as_dict(self) -> dict[Variable, BindingValue]:
        return dict(self._bindings)

    def term(self, variable: Variable) -> Optional[Term]:
        """The bound value if it is a graph term, else None."""
        value = self.get(variable)
        return value if not isinstance(value, TimeInterval) else None

    def interval(self, variable: Variable) -> Optional[TimeInterval]:
        """The bound value if it is an interval, else None."""
        value = self.get(variable)
        return value if isinstance(value, TimeInterval) else None

    def intervals(self) -> dict[str, TimeInterval]:
        """All interval bindings keyed by variable *name* (for expressions)."""
        return {
            variable.name: value
            for variable, value in self._bindings
            if isinstance(value, TimeInterval)
        }

    # ------------------------------------------------------------------ #
    # Extension
    # ------------------------------------------------------------------ #
    def bind(self, variable: Variable, value: BindingValue) -> Optional["Substitution"]:
        """Extend with ``variable := value``.

        Returns ``None`` when the variable is already bound to a *different*
        value (a clash); returns ``self`` when it is already bound to the same
        value.
        """
        existing = self.get(variable)
        if existing is not None:
            return self if existing == value else None
        extended = dict(self._bindings)
        extended[variable] = value
        return Substitution.of(extended)

    def merge(self, other: "Substitution") -> Optional["Substitution"]:
        """Combine two substitutions; ``None`` when they disagree on a variable."""
        result: Optional[Substitution] = self
        for variable, value in other:
            result = result.bind(variable, value)
            if result is None:
                return None
        return result

    def __str__(self) -> str:
        inner = ", ".join(f"{variable.name}={value}" for variable, value in self._bindings)
        return "{" + inner + "}"
