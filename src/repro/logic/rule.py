"""Temporal inference rules.

A temporal inference rule has the form ``Body ∧ [Condition] → Head`` (paper,
Section 2): the body is a conjunction of quad atoms, the optional condition
embeds Allen relations and arithmetic predicates, and the head is a quad atom
whose interval may be computed from the body intervals (e.g. ``t'' = t ∩ t'``
in rule f2).  A weight quantifies how strongly the rule should be enforced;
``None`` marks a hard rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import UnsafeRuleError
from ..temporal import IntervalExpression, TimeInterval
from .atom import ConditionAtom, QuadAtom
from .substitution import Substitution
from .terms import Variable


@dataclass(frozen=True, slots=True)
class TemporalRule:
    """A weighted temporal inference rule ``Body ∧ [Condition] → Head``.

    Attributes
    ----------
    name:
        Identifier used in reports (``f1``, ``f2`` ...).
    body:
        Conjunction of quad atoms matched against the graph.
    head:
        The derived quad atom.
    conditions:
        Optional condition atoms (Allen relations, comparisons, equalities).
    weight:
        Rule weight; ``None`` means the rule is hard (always enforced).
    head_interval:
        Optional interval expression for the head (e.g. ``t ∩ t'``); when
        absent, the head atom's own interval position is used.
    derived_confidence:
        Confidence assigned to facts derived by this rule (the MAP objective
        also accounts for the rule weight itself).
    """

    name: str
    body: tuple[QuadAtom, ...]
    head: QuadAtom
    conditions: tuple[ConditionAtom, ...] = field(default_factory=tuple)
    weight: Optional[float] = 1.0
    head_interval: Optional[IntervalExpression] = None
    derived_confidence: float = 0.9

    def __post_init__(self) -> None:
        if not self.body:
            raise UnsafeRuleError(f"rule {self.name}: body must contain at least one atom")
        self.validate_safety()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_hard(self) -> bool:
        """True when the rule must hold in every admissible world."""
        return self.weight is None

    def body_variables(self) -> set[Variable]:
        variables: set[Variable] = set()
        for atom in self.body:
            variables |= atom.variables()
        return variables

    def head_variables(self) -> set[Variable]:
        variables = set(self.head.entity_variables())
        interval_variable = self.head.interval_variable()
        if interval_variable is not None and self.head_interval is None:
            variables.add(interval_variable)
        return variables

    def condition_variables(self) -> set[Variable]:
        variables: set[Variable] = set()
        for condition in self.conditions:
            variables |= condition.variables()
        return variables

    def predicates(self) -> set[str]:
        """Constant predicates mentioned anywhere in the rule (for indexing)."""
        names: set[str] = set()
        for atom in (*self.body, self.head):
            if not isinstance(atom.predicate, Variable):
                names.add(atom.predicate.value)
        return names

    def validate_safety(self) -> None:
        """Every head/condition variable must occur in the body (range restriction)."""
        body_vars = self.body_variables()
        unsafe_head = self.head_variables() - body_vars
        if unsafe_head:
            names = ", ".join(sorted(variable.name for variable in unsafe_head))
            raise UnsafeRuleError(
                f"rule {self.name}: head variable(s) {names} do not appear in the body"
            )
        unsafe_condition = self.condition_variables() - body_vars
        if unsafe_condition:
            names = ", ".join(sorted(variable.name for variable in unsafe_condition))
            raise UnsafeRuleError(
                f"rule {self.name}: condition variable(s) {names} do not appear in the body"
            )

    # ------------------------------------------------------------------ #
    # Head instantiation
    # ------------------------------------------------------------------ #
    def head_interval_for(self, substitution: Substitution) -> Optional[TimeInterval]:
        """Compute the head interval under ``substitution``.

        Resolution order: the explicit ``head_interval`` expression, then the
        head atom's interval position (variable bound by the body, or a fixed
        interval).  Returns ``None`` when the expression is undefined (e.g.
        an empty intersection), in which case no fact is derived.
        """
        if self.head_interval is not None:
            return self.head_interval.evaluate(substitution.intervals())
        interval_variable = self.head.interval_variable()
        if interval_variable is not None:
            return substitution.interval(interval_variable)
        interval = self.head.interval
        return interval if isinstance(interval, TimeInterval) else None

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.body)
        if self.conditions:
            body += " ∧ " + " ∧ ".join(str(condition) for condition in self.conditions)
        weight = "∞" if self.weight is None else f"{self.weight:g}"
        return f"{self.name}: {body} → {self.head}  [w={weight}]"
