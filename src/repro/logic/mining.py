"""Automatic suggestion of constraints and inference rules.

One of the demo's stated discussion goals is the "automatic derivation or
suggestion of constraints and inference rules".  This module implements that
extension: it inspects an (uncertain, noisy) temporal KG and proposes

* **functional-over-time constraints** (the c2 shape) for predicates whose
  subjects rarely hold two different objects at overlapping times;
* **mutual-exclusion constraints** for predicate pairs that almost never
  overlap in time for the same subject;
* **precedence constraints** (the c1 shape, ``start(t) < start(t')``) for
  predicate pairs whose observed instances are almost always ordered;
* **implication rules** (the f1 shape, ``p(x,y,t) → q(x,y,t)``) for predicate
  pairs where one predicate's facts are almost always accompanied by the
  other over an overlapping interval.

Each suggestion carries its empirical *support* (how many subject pairs were
inspected) and *confidence* (the fraction conforming to the pattern); the
caller decides which suggestions to accept, typically turning high-confidence
ones into hard constraints and mid-confidence ones into soft constraints
whose weight is the log-odds of the observed confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..kg import TemporalFact, TemporalKnowledgeGraph
from .builder import ConstraintBuilder, RuleBuilder, compare, disjoint, not_equal, quad
from .constraint import ConstraintKind, TemporalConstraint
from .expressions import IntervalStart
from .rule import TemporalRule
from .terms import Variable


@dataclass(frozen=True, slots=True)
class Suggestion:
    """One mined constraint or rule suggestion."""

    kind: str
    description: str
    support: int
    confidence: float
    constraint: Optional[TemporalConstraint] = None
    rule: Optional[TemporalRule] = None

    @property
    def statement(self) -> str:
        """Display form of the suggested formula."""
        if self.constraint is not None:
            return str(self.constraint)
        if self.rule is not None:
            return str(self.rule)
        return self.description

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.description} "
            f"(support={self.support}, confidence={self.confidence:.2f})"
        )


def _soft_weight(confidence: float, cap: float = 10.0) -> float:
    """Log-odds weight for a soft constraint mined at the given confidence."""
    clipped = min(max(confidence, 1e-6), 1.0 - 1e-6)
    return min(cap, math.log(clipped / (1.0 - clipped)))


class ConstraintMiner:
    """Mines candidate constraints and rules from a temporal KG.

    Parameters
    ----------
    min_support:
        Minimum number of observed subject/pair instances for a suggestion.
    hard_threshold:
        Observed confidence at or above which a suggestion is proposed as a
        *hard* constraint.
    soft_threshold:
        Observed confidence at or above which a suggestion is proposed as a
        *soft* constraint (weighted by the log-odds of the confidence).
    """

    def __init__(
        self,
        min_support: int = 10,
        hard_threshold: float = 0.98,
        soft_threshold: float = 0.85,
    ) -> None:
        if not (0.0 < soft_threshold <= hard_threshold <= 1.0):
            raise ValueError("thresholds must satisfy 0 < soft <= hard <= 1")
        self.min_support = min_support
        self.hard_threshold = hard_threshold
        self.soft_threshold = soft_threshold

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def suggest(self, graph: TemporalKnowledgeGraph) -> list[Suggestion]:
        """All suggestions for ``graph``, sorted by confidence then support."""
        suggestions = (
            self.suggest_functional(graph)
            + self.suggest_precedence(graph)
            + self.suggest_implications(graph)
        )
        suggestions.sort(key=lambda s: (-s.confidence, -s.support, s.description))
        return suggestions

    def suggest_constraints(self, graph: TemporalKnowledgeGraph) -> list[TemporalConstraint]:
        """Only the constraint objects of :meth:`suggest` (rules filtered out)."""
        return [s.constraint for s in self.suggest(graph) if s.constraint is not None]

    # ------------------------------------------------------------------ #
    # Functional-over-time constraints (the c2 / c3 shape)
    # ------------------------------------------------------------------ #
    def suggest_functional(self, graph: TemporalKnowledgeGraph) -> list[Suggestion]:
        suggestions = []
        for predicate in graph.predicates():
            name = predicate.value
            pairs = conforming = 0
            for facts in self._facts_by_subject(graph, name).values():
                for i, first in enumerate(facts):
                    for second in facts[i + 1:]:
                        if first.object == second.object:
                            continue
                        pairs += 1
                        if first.interval.disjoint(second.interval):
                            conforming += 1
            if pairs < self.min_support:
                continue
            confidence = conforming / pairs
            constraint = self._functional_constraint(name, confidence)
            if constraint is None:
                continue
            suggestions.append(
                Suggestion(
                    kind="functional-over-time",
                    description=f"{name} maps a subject to one object at any time",
                    support=pairs,
                    confidence=confidence,
                    constraint=constraint,
                )
            )
        return suggestions

    def _functional_constraint(
        self, predicate: str, confidence: float
    ) -> Optional[TemporalConstraint]:
        if confidence < self.soft_threshold:
            return None
        builder = (
            ConstraintBuilder(f"mined_one_{predicate}")
            .body(quad("x", predicate, "y", "t"), quad("x", predicate, "z", "t2"))
            .when(not_equal("y", "z"))
            .require(disjoint("t", "t2"))
            .kind(ConstraintKind.DISJOINTNESS)
            .description(f"mined: {predicate} is functional over time")
        )
        if confidence >= self.hard_threshold:
            return builder.hard().build()
        return builder.soft(_soft_weight(confidence)).build()

    # ------------------------------------------------------------------ #
    # Precedence constraints (the c1 shape)
    # ------------------------------------------------------------------ #
    def suggest_precedence(self, graph: TemporalKnowledgeGraph) -> list[Suggestion]:
        suggestions = []
        predicates = [predicate.value for predicate in graph.predicates()]
        for earlier in predicates:
            earlier_by_subject = self._facts_by_subject(graph, earlier)
            for later in predicates:
                if earlier == later:
                    continue
                pairs = conforming = 0
                for subject, later_facts in self._facts_by_subject(graph, later).items():
                    for first in earlier_by_subject.get(subject, []):
                        for second in later_facts:
                            pairs += 1
                            if first.interval.start < second.interval.start:
                                conforming += 1
                if pairs < self.min_support:
                    continue
                confidence = conforming / pairs
                if confidence < self.soft_threshold:
                    continue
                constraint = self._precedence_constraint(earlier, later, confidence)
                suggestions.append(
                    Suggestion(
                        kind="precedence",
                        description=f"{earlier} starts before {later} for the same subject",
                        support=pairs,
                        confidence=confidence,
                        constraint=constraint,
                    )
                )
        return suggestions

    def _precedence_constraint(
        self, earlier: str, later: str, confidence: float
    ) -> TemporalConstraint:
        builder = (
            ConstraintBuilder(f"mined_{earlier}_before_{later}")
            .body(quad("x", earlier, "y", "t"), quad("x", later, "z", "t2"))
            .require(compare(IntervalStart(Variable("t")), "<", IntervalStart(Variable("t2"))))
            .kind(ConstraintKind.INCLUSION_DEPENDENCY)
            .description(f"mined: {earlier} precedes {later}")
        )
        if confidence >= self.hard_threshold:
            return builder.hard().build()
        return builder.soft(_soft_weight(confidence)).build()

    # ------------------------------------------------------------------ #
    # Implication rules (the f1 shape)
    # ------------------------------------------------------------------ #
    def suggest_implications(self, graph: TemporalKnowledgeGraph) -> list[Suggestion]:
        suggestions = []
        predicates = [predicate.value for predicate in graph.predicates()]
        for body_predicate in predicates:
            body_facts = graph.by_predicate(body_predicate)
            if len(body_facts) < self.min_support:
                continue
            for head_predicate in predicates:
                if head_predicate == body_predicate:
                    continue
                conforming = 0
                for fact in body_facts:
                    matches = graph.find(
                        subject=fact.subject,
                        predicate=head_predicate,
                        obj=fact.object,
                        overlapping=fact.interval,
                    )
                    if matches:
                        conforming += 1
                confidence = conforming / len(body_facts)
                if confidence < self.soft_threshold:
                    continue
                rule = (
                    RuleBuilder(f"mined_{body_predicate}_implies_{head_predicate}")
                    .body(quad("x", body_predicate, "y", "t"))
                    .head(quad("x", head_predicate, "y", "t"))
                    .weight(_soft_weight(confidence))
                    .derived_confidence(round(confidence, 2))
                    .build()
                )
                suggestions.append(
                    Suggestion(
                        kind="implication",
                        description=f"{body_predicate}(x, y, t) implies {head_predicate}(x, y, t)",
                        support=len(body_facts),
                        confidence=confidence,
                        rule=rule,
                    )
                )
        return suggestions

    # ------------------------------------------------------------------ #
    @staticmethod
    def _facts_by_subject(
        graph: TemporalKnowledgeGraph, predicate: str
    ) -> dict[object, list[TemporalFact]]:
        grouped: dict[object, list[TemporalFact]] = {}
        for fact in graph.by_predicate(predicate):
            grouped.setdefault(fact.subject, []).append(fact)
        return grouped


def suggest_constraints(
    graph: TemporalKnowledgeGraph,
    min_support: int = 10,
    hard_threshold: float = 0.98,
    soft_threshold: float = 0.85,
) -> list[Suggestion]:
    """Convenience wrapper around :class:`ConstraintMiner`."""
    miner = ConstraintMiner(
        min_support=min_support,
        hard_threshold=hard_threshold,
        soft_threshold=soft_threshold,
    )
    return miner.suggest(graph)
