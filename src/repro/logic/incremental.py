"""Delta-maintained grounding: the incremental engine.

The paper's debugging loop is iterative — resolve, repair facts or receive
new evidence, resolve again — yet a fresh :class:`IndexedGrounder` pass pays
for the whole graph every time.  :class:`IncrementalGrounder` instead keeps a
*materialised match state* between resolutions and maintains it under fact
insertions **and** retractions, so the grounding cost of an update scales
with the size of the change, not the size of the graph:

* **Insertions** re-run the semi-naive join only against the delta: the new
  facts get fresh insertion ticks in the working graph, and the existing
  pivot discipline of :func:`repro.logic.grounding._delta_matches` enumerates
  exactly the rule firings and constraint violations that involve at least
  one new fact (chaining to the rule fix point, so cascading derivations are
  found too).
* **Retractions** use support-set bookkeeping: every maintained firing
  records the statement keys of its body.  Removing a fact re-derives the set
  of *live* statements (evidence plus anything still derivable through the
  maintained firings — a least fix point, so cyclic derivations with no
  remaining evidence support die correctly), drops dead firings, violations,
  and working-graph facts, and leaves everything else untouched.  A retracted
  fact that is later re-added gets a fresh tick, so the delta join rebuilds
  exactly the matches that were dropped.
* **Emission** rebuilds the :class:`~repro.logic.ground.GroundProgram` from
  the maintained state in the exact order the from-scratch engines use
  (evidence in insertion order, then firings layered into semi-naive rounds —
  rule order, then lexicographic body order inside a round — then constraint
  clauses per constraint in lexicographic order).  The emitted program is
  therefore *identical* to a from-scratch grounding of the current graph:
  same atoms, same clause order, same floats.  Emission is a linear pass with
  no joins; the joins — the expensive part — only ever run against deltas.

The engine deliberately maintains a *superset* of the matches the bounded
(``max_rounds``) from-scratch chaining would emit: firings are chained to the
true fix point and filtered to ``max_rounds`` derivation layers at emission
time.  That keeps the state closed under future deltas (a new fact that
shortens a derivation chain can pull an existing deep firing inside the round
bound without any re-join).  Rule sets that do not reach a fix point within
``fixpoint_rounds`` flip the engine into a degraded-but-correct mode where
:meth:`ground` delegates to a fresh :class:`IndexedGrounder` pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import InvalidFactError
from ..kg import TemporalFact, TemporalKnowledgeGraph
from ..kg.triple import FactLike, coerce_fact
from .constraint import TemporalConstraint
from .ground import ClauseKind, GroundAtom, GroundProgram
from .grounding import (
    GROUNDING_ENGINES,
    ConstraintViolation,
    GroundingResult,
    IndexedGrounder,
    RuleFiring,
    _GrounderBase,
    _compile_body,
    _delta_matches,
)
from .rule import TemporalRule


@dataclass(frozen=True, slots=True)
class _FiringRecord:
    """One maintained rule firing (a ground match of a rule body)."""

    rule_index: int
    rule_name: str
    body: tuple[TemporalFact, ...]
    head: TemporalFact
    body_keys: tuple[tuple, ...]
    head_key: tuple
    signature: tuple  # (rule name, body keys, head key) — content identity


@dataclass(frozen=True, slots=True)
class _ViolationRecord:
    """One maintained constraint violation (a conflict set)."""

    constraint_index: int
    facts: tuple[TemporalFact, ...]
    fact_keys: tuple[tuple, ...]
    order_key: tuple[tuple, ...]  # body-position statement keys (match order)
    signature: tuple  # (constraint name, sorted fact keys) — content identity


@dataclass(frozen=True, slots=True)
class EmissionPlan:
    """The maintained state filtered and ordered for program emission.

    The plan *is* the ground program, represented semantically: the atom
    table in from-scratch order, the emitted firings in round → rule →
    lexicographic-body order (paired with whether a derived-prior unit clause
    precedes the firing's rule clause), and the emitted violations in
    constraint-major lexicographic order.  :meth:`IncrementalGrounder.ground`
    materialises it into a :class:`~repro.logic.ground.GroundProgram`;
    :class:`repro.core.session.ResolutionSession` consumes it directly so
    only *dirty* components ever pay for object construction.
    """

    atoms: list[GroundAtom]
    atom_index: dict[tuple, int]
    evidence_count: int
    firings: list[tuple[_FiringRecord, bool]]  # (record, emit_prior_clause)
    violations: list[_ViolationRecord]
    rounds: int

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    @property
    def num_clauses(self) -> int:
        priors = sum(1 for _, emit_prior in self.firings if emit_prior)
        return self.evidence_count + len(self.firings) + priors + len(self.violations)


@dataclass(frozen=True, slots=True)
class GroundingDelta:
    """What one :meth:`IncrementalGrounder.apply` call changed."""

    facts_added: int = 0
    facts_removed: int = 0
    facts_updated: int = 0
    firings_added: int = 0
    firings_retracted: int = 0
    violations_added: int = 0
    violations_retracted: int = 0

    @property
    def facts_changed(self) -> int:
        return self.facts_added + self.facts_removed + self.facts_updated

    @property
    def is_empty(self) -> bool:
        """True when the apply was a no-op (nothing to re-ground or re-solve)."""
        return self.facts_changed == 0


class IncrementalGrounder(_GrounderBase):
    """Grounding engine that maintains its result under graph mutations.

    Construction performs the initial full grounding (as one big delta from
    tick zero); :meth:`apply` folds fact insertions/retractions into the
    maintained state; :meth:`ground` emits the current
    :class:`~repro.logic.grounding.GroundingResult`, bit-identical to a
    from-scratch :class:`IndexedGrounder` pass over the current graph.

    The engine owns private copies of the evidence graph and the working
    graph (evidence plus derived facts); the caller's graph is never mutated.
    Registered as ``"incremental"`` in :data:`GROUNDING_ENGINES`, so it also
    works as a drop-in one-shot engine — but its value is in reuse, via
    :class:`repro.core.session.ResolutionSession`.
    """

    engine = "incremental"

    def __init__(
        self,
        graph: TemporalKnowledgeGraph,
        rules: Iterable[TemporalRule] = (),
        constraints: Iterable[TemporalConstraint] = (),
        max_rounds: int = 5,
        derive_facts: bool = True,
        keep_bias: float = 1e-3,
        derived_prior: float = 5e-4,
        fixpoint_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(
            graph.copy(name=graph.name),
            rules=rules,
            constraints=constraints,
            max_rounds=max_rounds,
            derive_facts=derive_facts,
            keep_bias=keep_bias,
            derived_prior=derived_prior,
        )
        #: Chaining bound for the maintained fix point.  Deliberately looser
        #: than ``max_rounds``: the match state is kept as the *unbounded*
        #: fix point and filtered to ``max_rounds`` layers at emission, so a
        #: later delta can legally shorten a derivation into the bound.
        self.fixpoint_rounds = (
            fixpoint_rounds if fixpoint_rounds is not None else max(4 * max_rounds, 32)
        )
        #: False when chaining hit ``fixpoint_rounds`` while still productive;
        #: the engine then degrades to from-scratch grounding (still correct).
        self.saturated = True
        self._working = self.graph.copy(name=f"{self.graph.name}-working")
        self._firings: dict[tuple, _FiringRecord] = {}
        self._violations: dict[tuple, _ViolationRecord] = {}
        self._rule_plans = [_compile_body(rule.body) for rule in self.rules]
        self._constraint_plans = [_compile_body(c.body) for c in self.constraints]
        self._chain(0)
        self._match_constraints(0)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply(
        self, adds: Iterable[FactLike] = (), removes: Iterable[FactLike] = ()
    ) -> GroundingDelta:
        """Fold fact insertions and retractions into the maintained state.

        ``removes`` are processed first (so a fact in both is replaced and
        gets a fresh insertion tick).  Re-adding an existing statement with a
        *higher* confidence is a pure weight update — no re-matching happens
        because the statement key, the only thing joins see, is unchanged.
        Returns a :class:`GroundingDelta` summarising the state change.

        The whole edit is validated before any state is touched (coercion
        and time-domain checks), so a malformed fact raises without leaving
        the maintained match state half-updated.
        """
        removes = [coerce_fact(fact) for fact in removes]
        adds = [coerce_fact(fact) for fact in adds]
        if self.graph.domain is not None:
            domain = self.graph.domain
            for item in adds:
                if item.interval.start not in domain or item.interval.end not in domain:
                    raise InvalidFactError(
                        f"fact interval {item.interval} outside time domain "
                        f"[{domain.start}, {domain.end}]"
                    )

        removed = 0
        removed_any = False
        for fact in removes:
            if self.graph.remove(fact):
                removed += 1
                removed_any = True
        firings_retracted = violations_retracted = 0
        if removed_any:
            firings_retracted, violations_retracted = self._retract()

        added = updated = 0
        mark = self._working.mark()
        fresh = False
        for item in adds:
            key = item.statement_key
            existing = key in self.graph._facts
            before = self.graph._facts[key].confidence if existing else None
            stored = self.graph.add(item)
            if not existing:
                added += 1
            elif stored.confidence != before:
                updated += 1
            if key not in self._working._facts:
                self._working.add(stored)  # fresh tick ⇒ the delta join sees it
                fresh = True
            else:
                # Already live (as evidence or derived): at most a confidence
                # bump, which never changes what the joins can match.
                self._working.add(stored)

        firings_added = violations_added = 0
        if fresh:
            firings_added = self._chain(mark)
            violations_added = self._match_constraints(mark)

        return GroundingDelta(
            facts_added=added,
            facts_removed=removed,
            facts_updated=updated,
            firings_added=firings_added,
            firings_retracted=firings_retracted,
            violations_added=violations_added,
            violations_retracted=violations_retracted,
        )

    # ------------------------------------------------------------------ #
    def _live_keys(self) -> set[tuple]:
        """Least fix point of derivability: evidence plus supported heads.

        Computed over the *maintained* firing set only — no joins.  Derived
        facts whose every support chain lost an evidence fact (including
        mutually-supporting cycles) fall out of the result.
        """
        live = set(self.graph._facts)
        pending = [record for record in self._firings.values() if record.head_key not in live]
        changed = True
        while changed and pending:
            changed = False
            remaining = []
            for record in pending:
                if record.head_key in live:
                    continue
                if all(key in live for key in record.body_keys):
                    live.add(record.head_key)
                    changed = True
                else:
                    remaining.append(record)
            pending = remaining
        return live

    def _retract(self) -> tuple[int, int]:
        """Drop firings, violations, and working facts no longer supported."""
        live = self._live_keys()
        dead_firings = [
            signature
            for signature, record in self._firings.items()
            if any(key not in live for key in record.body_keys)
        ]
        for signature in dead_firings:
            del self._firings[signature]
        dead_violations = [
            signature
            for signature, record in self._violations.items()
            if any(key not in live for key in record.fact_keys)
        ]
        for signature in dead_violations:
            del self._violations[signature]
        dead_facts = [fact for fact in self._working if fact.statement_key not in live]
        for fact in dead_facts:
            self._working.remove(fact)
        return len(dead_firings), len(dead_violations)

    def _chain(self, delta_since: int) -> int:
        """Semi-naive forward chaining of the rules against a delta window.

        Matches every rule body against matches using at least one working
        fact with insertion tick ≥ ``delta_since``, records the firings, adds
        genuinely new heads to the working graph, and repeats on the new
        heads until the fix point (or ``fixpoint_rounds``, which flips the
        engine into degraded mode).  Returns the number of new firings.
        """
        if not self.derive_facts or not self.rules:
            return 0
        firings = self._firings
        working = self._working
        added_firings = 0
        rounds = 0
        while True:
            rounds += 1
            if rounds > self.fixpoint_rounds:
                self.saturated = False
                break
            round_mark = working.mark()
            new_heads: list[TemporalFact] = []
            for rule_index, (rule, plan) in enumerate(zip(self.rules, self._rule_plans)):
                for substitution, body_facts in _delta_matches(plan, working, delta_since):
                    if not all(condition.holds(substitution) for condition in rule.conditions):
                        continue
                    head_interval = rule.head_interval_for(substitution)
                    if head_interval is None:
                        continue
                    head_fact = rule.head.instantiate(
                        substitution,
                        interval=head_interval,
                        confidence=rule.derived_confidence,
                    )
                    body_keys = tuple(fact.statement_key for fact in body_facts)
                    signature = (rule.name, body_keys, head_fact.statement_key)
                    if signature in firings:
                        continue
                    firings[signature] = _FiringRecord(
                        rule_index=rule_index,
                        rule_name=rule.name,
                        body=tuple(body_facts),
                        head=head_fact,
                        body_keys=body_keys,
                        head_key=head_fact.statement_key,
                        signature=signature,
                    )
                    added_firings += 1
                    new_heads.append(head_fact)
            grew = False
            for head in new_heads:
                if head not in working:
                    working.add(head)
                    grew = True
            if not grew:
                break
            delta_since = round_mark
        return added_firings

    def _match_constraints(self, delta_since: int) -> int:
        """Record constraint violations using at least one delta fact.

        A *new* violation signature necessarily contains a delta fact, so
        every body permutation of it is enumerated in this pass; the stored
        representative is the lexicographically smallest one — exactly the
        match the from-scratch engines keep after sorting and deduplicating.
        Ordering compares statement keys only: the engines' sort keys add a
        confidence tie-break, but equal keys always mean the same stored
        fact, so the tie-break never decides an order.
        """
        violations = self._violations
        added = 0
        for constraint_index, (constraint, plan) in enumerate(
            zip(self.constraints, self._constraint_plans)
        ):
            for substitution, facts in _delta_matches(plan, self._working, delta_since):
                keys = tuple(fact.statement_key for fact in facts)
                if len(set(keys)) != len(keys):
                    continue  # degenerate: the same fact fills two body atoms
                if not constraint.violated_by(substitution):
                    continue
                signature = (constraint.name, tuple(sorted(keys)))
                record = violations.get(signature)
                if record is None:
                    violations[signature] = _ViolationRecord(
                        constraint_index=constraint_index,
                        facts=tuple(facts),
                        fact_keys=keys,
                        order_key=keys,
                        signature=signature,
                    )
                    added += 1
                elif keys < record.order_key:
                    violations[signature] = _ViolationRecord(
                        constraint_index=constraint_index,
                        facts=tuple(facts),
                        fact_keys=keys,
                        order_key=keys,
                        signature=signature,
                    )
        return added

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def emit_plan(self) -> EmissionPlan:
        """Filter and order the maintained state for emission.

        Firings are layered into semi-naive rounds (a firing belongs to round
        ``1 + max(availability round of its body facts)``) and ordered
        round → rule → lexicographic-body; firings deeper than ``max_rounds``
        layers — and violations touching facts only derivable beyond the
        bound — are filtered out, reproducing the from-scratch engines'
        truncation semantics exactly.  The atom table is built here (evidence
        in graph insertion order, then derived atoms in first-firing order),
        so plan consumers share one numbering.  Requires :attr:`saturated`.
        """
        atoms: list[GroundAtom] = []
        atom_index: dict[tuple, int] = {}
        for fact in self.graph:
            atom_index[fact.statement_key] = len(atoms)
            atoms.append(GroundAtom(len(atoms), fact, True, None))
        evidence_count = len(atoms)

        ordered_firings: list[tuple[_FiringRecord, bool]] = []
        available: set[tuple] = set(atom_index)
        pending = list(self._firings.values())
        rounds = 0
        emit_priors = self.derived_prior > 0
        for round_number in range(1, self.max_rounds + 1):
            ready: list[_FiringRecord] = []
            remaining: list[_FiringRecord] = []
            for record in pending:
                if all(key in available for key in record.body_keys):
                    ready.append(record)
                else:
                    remaining.append(record)
            if not ready:
                break
            pending = remaining
            rounds = round_number
            ready.sort(key=lambda record: (record.rule_index, record.body_keys))
            for record in ready:
                # Body atoms are always present already: every body fact is
                # available, i.e. evidence or the head of an earlier firing.
                existing = atom_index.get(record.head_key)
                if existing is None:
                    atom_index[record.head_key] = len(atoms)
                    atoms.append(GroundAtom(len(atoms), record.head, False, record.rule_name))
                    ordered_firings.append((record, emit_priors))
                else:
                    ordered_firings.append((record, False))
            for record in ready:
                available.add(record.head_key)

        buckets: dict[int, list[_ViolationRecord]] = {}
        for record in self._violations.values():
            if all(key in available for key in record.fact_keys):
                buckets.setdefault(record.constraint_index, []).append(record)
        ordered_violations: list[_ViolationRecord] = []
        for constraint_index in range(len(self.constraints)):
            records = buckets.get(constraint_index)
            if records:
                records.sort(key=lambda record: record.order_key)
                ordered_violations.extend(records)

        return EmissionPlan(
            atoms=atoms,
            atom_index=atom_index,
            evidence_count=evidence_count,
            firings=ordered_firings,
            violations=ordered_violations,
            rounds=rounds,
        )

    def fresh_facts(self, facts: Iterable[TemporalFact]) -> tuple[TemporalFact, ...]:
        """Replace match-time evidence snapshots with current graph objects.

        Maintained records capture fact objects at match time; a later
        confidence update changes the stored evidence fact but not the
        record.  Reporting paths route through this so violations and
        firings show current confidences (derived facts pass through).
        """
        stored = self.graph._facts
        return tuple(stored.get(fact.statement_key, fact) for fact in facts)

    def ground(self) -> GroundingResult:
        """Materialise the maintained state as a from-scratch-identical result.

        The emitted :class:`~repro.logic.ground.GroundProgram` is identical —
        same atoms, same clause emission order, same floats — to a fresh
        :class:`IndexedGrounder` pass over the current graph.
        """
        if not self.saturated:
            # Degraded mode: the rule set outran the maintained fix point;
            # fall back to an exact from-scratch pass over the current graph.
            return IndexedGrounder(
                self.graph,
                rules=self.rules,
                constraints=self.constraints,
                max_rounds=self.max_rounds,
                derive_facts=self.derive_facts,
                keep_bias=self.keep_bias,
                derived_prior=self.derived_prior,
            ).ground()

        plan = self.emit_plan()
        program = GroundProgram()
        result = GroundingResult(program=program, rounds=plan.rounds)

        for atom in plan.atoms[: plan.evidence_count]:
            added = program.add_atom(atom.fact, is_evidence=True)
            program.add_clause(
                [(added.index, True)],
                weight=atom.fact.log_weight + self.keep_bias,
                kind=ClauseKind.EVIDENCE,
                origin="evidence",
            )
        for record, emit_prior in plan.firings:
            rule = self.rules[record.rule_index]
            # Evidence atoms were all added first, so is_evidence=False can
            # never downgrade one (evidence status is sticky in add_atom).
            head_atom = program.add_atom(record.head, False, derived_by=record.rule_name)
            if emit_prior:
                program.add_clause(
                    [(head_atom.index, True)],
                    weight=-self.derived_prior,
                    kind=ClauseKind.PRIOR,
                    origin=f"prior:{record.rule_name}",
                )
            body_atoms = [program.add_atom(fact, False) for fact in record.body]
            literals = [(atom.index, False) for atom in body_atoms]
            literals.append((head_atom.index, True))
            program.add_clause(
                literals, weight=rule.weight, kind=ClauseKind.RULE, origin=record.rule_name
            )
            result.firings.append(
                RuleFiring(
                    record.rule_name,
                    self.fresh_facts(record.body),
                    record.head,
                    rule.weight,
                )
            )
        for record in plan.violations:
            constraint = self.constraints[record.constraint_index]
            violation_atoms = [program.add_atom(fact, False) for fact in record.facts]
            program.add_clause(
                [(atom.index, False) for atom in violation_atoms],
                weight=constraint.weight,
                kind=ClauseKind.CONSTRAINT,
                origin=constraint.name,
            )
            result.violations.append(
                ConstraintViolation(
                    constraint.name, self.fresh_facts(record.facts), constraint.weight
                )
            )
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def state_summary(self) -> dict[str, int]:
        """Size of the maintained match state (diagnostics)."""
        return {
            "evidence_facts": len(self.graph),
            "working_facts": len(self._working),
            "firings": len(self._firings),
            "violations": len(self._violations),
            "saturated": int(self.saturated),
        }


#: Make the incremental engine selectable wherever "indexed"/"naive" are.
GROUNDING_ENGINES["incremental"] = IncrementalGrounder
