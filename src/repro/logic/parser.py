"""Datalog-style surface syntax for rules and constraints.

The paper gives users "a language — based on Datalog — to design constraints";
this module is that language.  One statement per line::

    # temporal inference rules (head is a quad atom)
    f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5
    f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t2) & overlaps(t, t2)
        -> quad(x, livesIn, z, intersection(t, t2)) w=1.6
    f3: quad(x, playsFor, y, t) & quad(x, birthDate, z, t2)
        & start(t) - start(t2) < 20 -> quad(x, type, TeenPlayer, t) w=2.9

    # temporal constraints (head is a condition)
    c1: quad(x, birthDate, y, t) & quad(x, deathDate, z, t2) -> before(t, t2)
    c2: quad(x, coach, y, t) & quad(x, coach, z, t2) & y != z -> disjoint(t, t2)
    c3: quad(x, bornIn, y, t) & quad(x, bornIn, z, t2) & overlaps(t, t2) -> y = z

Conventions
-----------
* ``&`` (or ``,``) separates conjuncts; ``->`` separates body and head;
* identifiers that are a single lower-case letter with optional digits or
  primes (``x``, ``t2``, ``t'``) are variables, everything else is a constant;
* a trailing ``w=<number>`` gives the weight; omitting it makes constraints
  hard and gives rules weight 1.0 (``w=inf`` makes a rule hard);
* ``#`` starts a comment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..errors import ParseError
from ..temporal import CONSTRAINT_PREDICATES, IntervalExpression, TimeInterval
from .atom import AllenAtom, Comparison, ConditionAtom, QuadAtom, TermEquality
from .builder import parse_interval_symbol, parse_symbol
from .constraint import TemporalConstraint
from .expressions import (
    BinaryOp,
    Expression,
    IntervalDuration,
    IntervalEnd,
    IntervalStart,
    Number,
    TermValue,
)
from .rule import TemporalRule
from .terms import Variable

# --------------------------------------------------------------------------- #
# Tokeniser
# --------------------------------------------------------------------------- #
_TOKEN_PATTERN = re.compile(
    r"""
    (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<string>"[^"]*")
  | (?P<interval>\[\s*-?\d+\s*,\s*-?\d+\s*\])
  | (?P<op><=|>=|!=|==|->|[&,()=<>+\-*/.:])
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    position: int

    @property
    def end(self) -> int:
        return self.position + len(self.text)


def tokenize(text: str, source: str | None = None) -> list[Token]:
    """Tokenise one statement; raises :class:`ParseError` on junk characters."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            error = ParseError(
                f"unexpected character {text[position]!r} at column {position}", source=source
            )
            error.offset = position  # type: ignore[attr-defined]
            raise error
        kind = match.lastgroup or "space"
        if kind != "space":
            tokens.append(Token(kind, match.group(), position))
        position = match.end()
    return tokens


# --------------------------------------------------------------------------- #
# Source spans
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class SourceSpan:
    """A 1-based line/column range in the original program text.

    ``end_column`` is exclusive (the column just past the last character),
    matching the convention of most editors and LSP diagnostics.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class StatementSpans:
    """Per-atom source spans of one parsed statement.

    ``body`` aligns index-for-index with the statement's body quad atoms,
    ``conditions`` with its (body) condition atoms, and ``head_conditions``
    with a constraint's head conditions; ``head`` covers a rule's head quad.
    """

    statement: SourceSpan
    body: tuple[SourceSpan, ...] = ()
    conditions: tuple[SourceSpan, ...] = ()
    head: Optional[SourceSpan] = None
    head_conditions: tuple[SourceSpan, ...] = ()


# --------------------------------------------------------------------------- #
# Recursive-descent parser
# --------------------------------------------------------------------------- #
_INTERVAL_FUNCTIONS = {"start": IntervalStart, "end": IntervalEnd, "duration": IntervalDuration}
_HEAD_INTERVAL_FUNCTIONS = {"intersection", "intersect", "union", "span"}
_COMPARATORS = {"<", "<=", ">", ">=", "=", "==", "!="}


class _StatementParser:
    """Parses one rule or constraint statement from its token stream."""

    def __init__(self, tokens: Sequence[Token], source: str | None = None) -> None:
        self._tokens = list(tokens)
        self._index = 0
        self._source = source
        self._last_end = 0
        #: Character-offset spans (start, end) recorded while parsing; the
        #: public span API converts them to line/column through a locator.
        self.body_spans: list[tuple[int, int]] = []
        self.condition_spans: list[tuple[int, int]] = []
        self.head_span: Optional[tuple[int, int]] = None
        self.head_condition_spans: list[tuple[int, int]] = []

    # -- token plumbing --------------------------------------------------- #
    def _fail(self, message: str, token: Optional[Token] = None) -> ParseError:
        error = ParseError(message, source=self._source)
        offset = token.position if token is not None else self._last_end
        error.offset = offset  # type: ignore[attr-defined]
        return error

    def _peek(self, offset: int = 0) -> Optional[Token]:
        position = self._index + offset
        return self._tokens[position] if position < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise self._fail("unexpected end of statement")
        self._index += 1
        self._last_end = token.end
        return token

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise self._fail(f"expected {text!r} but found {token.text!r}", token)
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    def _done(self) -> bool:
        return self._index >= len(self._tokens)

    # -- statement structure ---------------------------------------------- #
    def parse_statement(self) -> tuple[
        Optional[str],
        list[QuadAtom],
        list[ConditionAtom],
        Union[QuadAtom, list[ConditionAtom]],
        Optional[IntervalExpression],
        Optional[float],
    ]:
        """Parse ``[label:] body -> head [w=weight]`` and return its pieces."""
        label = self._parse_label()
        body_atoms, conditions = self._parse_body()
        self._expect("->")
        head, head_interval = self._parse_head()
        weight = self._parse_weight()
        if not self._done():
            token = self._peek()
            assert token is not None
            raise self._fail(f"trailing input starting at {token.text!r}", token)
        return label, body_atoms, conditions, head, head_interval, weight

    def _parse_label(self) -> Optional[str]:
        first = self._peek()
        second = self._peek(1)
        # A label looks like ``name :`` but ``quad(`` must not be mistaken for one.
        if (
            first is not None and second is not None and first.kind == "name" and second.text == ":"
        ):
            self._next()
            self._next()
            return first.text
        return None

    def _parse_body(self) -> tuple[list[QuadAtom], list[ConditionAtom]]:
        atoms: list[QuadAtom] = []
        conditions: list[ConditionAtom] = []
        while True:
            start_token = self._peek()
            start = start_token.position if start_token is not None else self._last_end
            if self._at("quad"):
                atoms.append(self._parse_quad())
                self.body_spans.append((start, self._last_end))
            else:
                conditions.append(self._parse_condition())
                self.condition_spans.append((start, self._last_end))
            if self._at("&") or self._at(","):
                self._next()
                continue
            break
        return atoms, conditions

    def _parse_head(
        self,
    ) -> tuple[Union[QuadAtom, list[ConditionAtom]], Optional[IntervalExpression]]:
        if self._at("quad"):
            start_token = self._peek()
            start = start_token.position if start_token is not None else self._last_end
            head = self._parse_head_quad()
            self.head_span = (start, self._last_end)
            return head
        conditions: list[ConditionAtom] = []
        while True:
            start_token = self._peek()
            start = start_token.position if start_token is not None else self._last_end
            conditions.append(self._parse_condition())
            self.head_condition_spans.append((start, self._last_end))
            if self._at("&") or self._at(","):
                self._next()
                continue
            break
        return conditions, None

    def _parse_weight(self) -> Optional[float]:
        if self._done():
            return None
        token = self._peek()
        if token is not None and token.kind == "name" and token.text == "w":
            self._next()
            self._expect("=")
            value = self._next()
            if value.kind == "name" and value.text.lower() in ("inf", "infinity", "hard"):
                return float("inf")
            if value.kind != "number":
                raise self._fail(f"invalid weight {value.text!r}", value)
            return float(value.text)
        if token is not None and token.text == ".":
            self._next()
            return self._parse_weight()
        return None

    # -- atoms ------------------------------------------------------------ #
    def _parse_quad(self) -> QuadAtom:
        self._expect("quad")
        self._expect("(")
        subject = self._parse_symbol_token()
        self._expect(",")
        predicate = self._parse_symbol_token()
        self._expect(",")
        obj = self._parse_symbol_token()
        if self._at(")"):
            # A triple-style atom: give it a fresh interval variable so the
            # grounder can still bind the fact's validity interval.
            self._next()
            return QuadAtom(
                subject=parse_symbol(subject),
                predicate=parse_symbol(predicate),  # type: ignore[arg-type]
                object=parse_symbol(obj),
                interval=Variable(f"_t{id(self) % 1000}_{self._index}"),
            )
        self._expect(",")
        interval = self._parse_interval_position()
        self._expect(")")
        return QuadAtom(
            subject=parse_symbol(subject),
            predicate=parse_symbol(predicate),  # type: ignore[arg-type]
            object=parse_symbol(obj),
            interval=interval,
        )

    def _parse_head_quad(self) -> tuple[QuadAtom, Optional[IntervalExpression]]:
        """Head quads may use an interval *expression* in the fourth position."""
        self._expect("quad")
        self._expect("(")
        subject = self._parse_symbol_token()
        self._expect(",")
        predicate = self._parse_symbol_token()
        self._expect(",")
        obj = self._parse_symbol_token()
        head_interval: Optional[IntervalExpression] = None
        interval: Union[Variable, TimeInterval]
        if self._at(")"):
            self._next()
            interval = Variable("t")
            atom = QuadAtom(
                subject=parse_symbol(subject),
                predicate=parse_symbol(predicate),  # type: ignore[arg-type]
                object=parse_symbol(obj),
                interval=interval,
            )
            return atom, head_interval
        self._expect(",")
        token = self._peek()
        if token is not None and token.kind == "name" and token.text in _HEAD_INTERVAL_FUNCTIONS:
            function = self._next().text
            self._expect("(")
            left = self._next()
            self._expect(",")
            right = self._next()
            self._expect(")")
            if function in ("intersection", "intersect"):
                head_interval = IntervalExpression.intersection(left.text, right.text)
            else:
                head_interval = IntervalExpression.union(left.text, right.text)
            interval = Variable(left.text)
        else:
            interval = parse_interval_symbol(self._next().text)  # type: ignore[assignment]
        self._expect(")")
        atom = QuadAtom(
            subject=parse_symbol(subject),
            predicate=parse_symbol(predicate),  # type: ignore[arg-type]
            object=parse_symbol(obj),
            interval=interval,
        )
        return atom, head_interval

    def _parse_symbol_token(self) -> str:
        token = self._next()
        if token.kind in ("name", "number", "string"):
            return token.text
        raise self._fail(f"expected a term but found {token.text!r}", token)

    def _parse_interval_position(self) -> Union[Variable, TimeInterval]:
        token = self._next()
        if token.kind == "interval":
            return TimeInterval.parse(token.text)
        if token.kind == "name":
            value = parse_interval_symbol(token.text)
            if isinstance(value, (Variable, TimeInterval)):
                return value
        if token.kind == "number":
            return TimeInterval.instant(int(float(token.text)))
        raise self._fail(f"expected an interval variable or literal, found {token.text!r}", token)

    # -- conditions -------------------------------------------------------- #
    def _parse_condition(self) -> ConditionAtom:
        token = self._peek()
        if token is None:
            raise self._fail("expected a condition")
        # Temporal predicate: name(t, t2) where name is a known Allen predicate.
        if (
            token.kind == "name"
            and token.text in CONSTRAINT_PREDICATES
            and self._peek(1) is not None
            and self._peek(1).text == "("
        ):
            relation = self._next().text
            self._expect("(")
            left = self._next()
            self._expect(",")
            right = self._next()
            self._expect(")")
            return AllenAtom(relation, Variable(left.text), Variable(right.text))
        # Otherwise: an (in)equality or arithmetic comparison.
        left_expression = self._parse_expression()
        operator_token = self._next()
        if operator_token.text not in _COMPARATORS:
            raise self._fail(
                f"expected a comparison operator, found {operator_token.text!r}",
                operator_token,
            )
        right_expression = self._parse_expression()
        operator = operator_token.text
        # Plain variable (in)equalities become equality-generating conditions.
        if (
            operator in ("=", "==", "!=")
            and isinstance(left_expression, TermValue)
            and isinstance(right_expression, TermValue)
        ):
            return TermEquality(
                left_expression.variable,
                right_expression.variable,
                negated=operator == "!=",
            )
        return Comparison(left_expression, operator, right_expression)

    # -- arithmetic expressions --------------------------------------------- #
    def _parse_expression(self) -> Expression:
        expression = self._parse_term_expression()
        while self._at("+") or self._at("-"):
            operator = self._next().text
            right = self._parse_term_expression()
            expression = BinaryOp(operator, expression, right)
        return expression

    def _parse_term_expression(self) -> Expression:
        expression = self._parse_factor()
        while self._at("*") or self._at("/"):
            operator = self._next().text
            right = self._parse_factor()
            expression = BinaryOp(operator, expression, right)
        return expression

    def _parse_factor(self) -> Expression:
        token = self._next()
        if token.text == "(":
            inner = self._parse_expression()
            self._expect(")")
            return inner
        if token.kind == "number":
            return Number(float(token.text))
        if token.kind == "name":
            if token.text in _INTERVAL_FUNCTIONS and self._at("("):
                self._next()
                argument = self._next()
                self._expect(")")
                return _INTERVAL_FUNCTIONS[token.text](Variable(argument.text))
            symbol = parse_symbol(token.text)
            if isinstance(symbol, Variable):
                return TermValue(symbol)
            # Constants used numerically (e.g. a year written as a name).
            try:
                return Number(float(token.text))
            except ValueError as exc:
                raise self._fail(
                    f"cannot use constant {token.text!r} in an arithmetic expression", token
                ) from exc
        raise self._fail(f"unexpected token {token.text!r} in expression", token)


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
@dataclass
class ParsedProgram:
    """Rules and constraints parsed from a text document.

    ``annotated`` pairs every parsed statement (in document order) with its
    :class:`StatementSpans`, for tools — the linter above all — that need to
    point back into the original source text.
    """

    rules: list[TemporalRule] = field(default_factory=list)
    constraints: list[TemporalConstraint] = field(default_factory=list)
    annotated: list["AnnotatedStatement"] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules) + len(self.constraints)


@dataclass(frozen=True, slots=True)
class AnnotatedStatement:
    """One parsed statement together with its source spans."""

    statement: Union[TemporalRule, TemporalConstraint]
    spans: StatementSpans


def _normalise_weight(weight: Optional[float], default: Optional[float]) -> Optional[float]:
    if weight is None:
        return default
    if weight == float("inf"):
        return None
    return weight


def _split_conditions(conditions: Iterable[ConditionAtom]) -> tuple[ConditionAtom, ...]:
    return tuple(conditions)


# --------------------------------------------------------------------------- #
# Statement blocks: line-aware splitting of a program document
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class StatementBlock:
    """One statement's text plus the offset → line/column mapping.

    Multi-line statements are joined with single spaces for parsing;
    ``segments`` remembers where each physical line landed in the joined
    text so token offsets map back to real source positions.
    """

    text: str
    #: (start_offset_in_joined_text, line_number, column_base) per line.
    segments: tuple[tuple[int, int, int], ...]
    default_name: str

    @property
    def first_line(self) -> int:
        return self.segments[0][1] if self.segments else 1

    def locate(self, offset: int) -> tuple[int, int]:
        """Map a character offset in the joined text to (line, column), 1-based."""
        line, column = 1, offset + 1
        for start, line_number, column_base in self.segments:
            if offset < start and line != 1:
                break
            if offset >= start:
                line, column = line_number, offset - start + column_base + 1
        return line, column

    def span(self, start: int, end: int) -> SourceSpan:
        """Convert an offset range into a :class:`SourceSpan`."""
        line, column = self.locate(start)
        end_line, end_column = self.locate(max(start, end - 1))
        return SourceSpan(line, column, end_line, end_column + 1)


_LABEL_START = re.compile(r"^\s*[A-Za-z_][A-Za-z0-9_]*\s*:")


def split_statements(text: str) -> list[StatementBlock]:
    """Split a program document into per-statement blocks with line maps.

    Statement boundaries follow :func:`parse_program`'s rules: blank lines
    end a statement, and a ``label:`` line starts a new one.
    """
    blocks: list[StatementBlock] = []
    buffer: list[tuple[int, str]] = []
    counter = 0

    def flush() -> None:
        nonlocal counter
        if not buffer:
            return
        joined = " ".join(chunk for _, chunk in buffer)
        segments: list[tuple[int, int, int]] = []
        offset = 0
        for line_number, chunk in buffer:
            segments.append((offset, line_number, 0))
            offset += len(chunk) + 1
        buffer.clear()
        if not joined.strip():
            return
        counter += 1
        blocks.append(
            StatementBlock(
                text=joined,
                segments=tuple(segments),
                default_name=f"stmt{counter}",
            )
        )

    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].rstrip()
        if not stripped.strip():
            flush()
            continue
        if _LABEL_START.match(stripped) and buffer:
            flush()
        buffer.append((line_number, stripped))
    flush()
    return blocks


# --------------------------------------------------------------------------- #
# Raw statements (pre-validation parse results)
# --------------------------------------------------------------------------- #
@dataclass
class RawStatement:
    """A parsed statement *before* rule/constraint validation.

    The static analyzer consumes these so it can report safety violations as
    findings with source spans instead of letting
    :class:`~repro.errors.UnsafeRuleError` abort the whole parse.
    :meth:`build` performs the same construction (and validation) as
    :func:`parse_statement`.
    """

    name: str
    label: Optional[str]
    body: tuple[QuadAtom, ...]
    conditions: tuple[ConditionAtom, ...]
    head: Union[QuadAtom, list[ConditionAtom]]
    head_interval: Optional[IntervalExpression]
    weight: Optional[float]
    spans: StatementSpans
    source: Optional[str] = None

    @property
    def is_rule(self) -> bool:
        return isinstance(self.head, QuadAtom)

    @property
    def head_conditions(self) -> tuple[ConditionAtom, ...]:
        if isinstance(self.head, QuadAtom):
            return ()
        return tuple(self.head)

    @property
    def effective_weight(self) -> Optional[float]:
        """The weight after defaulting: rules default to 1.0, constraints to hard."""
        default = 1.0 if self.is_rule else None
        return _normalise_weight(self.weight, default)

    @property
    def is_hard(self) -> bool:
        return self.effective_weight is None

    def build(self) -> Union[TemporalRule, TemporalConstraint]:
        """Construct the validated rule or constraint (may raise)."""
        if not self.body:
            raise ParseError(
                f"statement {self.name}: body contains no quad atom", source=self.source
            )
        if isinstance(self.head, QuadAtom):
            return TemporalRule(
                name=self.name,
                body=self.body,
                head=self.head,
                conditions=_split_conditions(self.conditions),
                weight=_normalise_weight(self.weight, default=1.0),
                head_interval=self.head_interval,
            )
        return TemporalConstraint(
            name=self.name,
            body=self.body,
            body_conditions=_split_conditions(self.conditions),
            head_conditions=tuple(self.head),
            weight=_normalise_weight(self.weight, default=None),
        )


def parse_raw_statement(
    text: str,
    source: str | None = None,
    default_name: str = "stmt",
    block: StatementBlock | None = None,
) -> RawStatement:
    """Parse one statement into a :class:`RawStatement` (no validation).

    ``block`` supplies the offset → line/column mapping for span conversion;
    without one, offsets are interpreted as columns on line 1.
    """
    if block is None:
        block = StatementBlock(text=text, segments=((0, 1, 0),), default_name=default_name)
    tokens = tokenize(text, source=source)
    if not tokens:
        raise ParseError("empty statement", source=source)
    parser = _StatementParser(tokens, source=source)
    label, body, conditions, head, head_interval, weight = parser.parse_statement()
    statement_span = block.span(tokens[0].position, tokens[-1].end)
    spans = StatementSpans(
        statement=statement_span,
        body=tuple(block.span(s, e) for s, e in parser.body_spans),
        conditions=tuple(block.span(s, e) for s, e in parser.condition_spans),
        head=block.span(*parser.head_span) if parser.head_span is not None else None,
        head_conditions=tuple(block.span(s, e) for s, e in parser.head_condition_spans),
    )
    return RawStatement(
        name=label or default_name,
        label=label,
        body=tuple(body),
        conditions=tuple(conditions),
        head=head,
        head_interval=head_interval,
        weight=weight,
        spans=spans,
        source=source,
    )


def parse_statement(
    text: str, source: str | None = None, default_name: str = "stmt"
) -> Union[TemporalRule, TemporalConstraint]:
    """Parse a single rule or constraint statement."""
    raw = parse_raw_statement(text.strip(), source=source, default_name=default_name)
    return raw.build()


def parse_rule(text: str, source: str | None = None) -> TemporalRule:
    """Parse a statement that must be an inference rule."""
    statement = parse_statement(text, source=source)
    if not isinstance(statement, TemporalRule):
        raise ParseError("statement is a constraint, not an inference rule", source=source)
    return statement


def parse_constraint(text: str, source: str | None = None) -> TemporalConstraint:
    """Parse a statement that must be a constraint."""
    statement = parse_statement(text, source=source)
    if not isinstance(statement, TemporalConstraint):
        raise ParseError("statement is an inference rule, not a constraint", source=source)
    return statement


def parse_program(text: str, source: str | None = None) -> ParsedProgram:
    """Parse a document of newline-separated statements (comments allowed).

    A statement may span several physical lines; a new statement starts on a
    line containing ``label:`` or on a blank-line boundary.  Parse errors
    carry the line (and column) of the offending token in the original
    document.
    """
    program = ParsedProgram()
    for parsed_block in split_statements(text):
        try:
            raw = parse_raw_statement(
                parsed_block.text,
                source=None,
                default_name=parsed_block.default_name,
                block=parsed_block,
            )
            statement = raw.build()
        except ParseError as error:
            offset = getattr(error, "offset", None)
            if offset is not None:
                line, _column = parsed_block.locate(offset)
            else:
                line = parsed_block.first_line
            raise ParseError(str(error), line=line, source=source) from error
        program.annotated.append(AnnotatedStatement(statement, raw.spans))
        if isinstance(statement, TemporalRule):
            program.rules.append(statement)
        else:
            program.constraints.append(statement)
    return program
