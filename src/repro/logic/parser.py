"""Datalog-style surface syntax for rules and constraints.

The paper gives users "a language — based on Datalog — to design constraints";
this module is that language.  One statement per line::

    # temporal inference rules (head is a quad atom)
    f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5
    f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t2) & overlaps(t, t2)
        -> quad(x, livesIn, z, intersection(t, t2)) w=1.6
    f3: quad(x, playsFor, y, t) & quad(x, birthDate, z, t2)
        & start(t) - start(t2) < 20 -> quad(x, type, TeenPlayer, t) w=2.9

    # temporal constraints (head is a condition)
    c1: quad(x, birthDate, y, t) & quad(x, deathDate, z, t2) -> before(t, t2)
    c2: quad(x, coach, y, t) & quad(x, coach, z, t2) & y != z -> disjoint(t, t2)
    c3: quad(x, bornIn, y, t) & quad(x, bornIn, z, t2) & overlaps(t, t2) -> y = z

Conventions
-----------
* ``&`` (or ``,``) separates conjuncts; ``->`` separates body and head;
* identifiers that are a single lower-case letter with optional digits or
  primes (``x``, ``t2``, ``t'``) are variables, everything else is a constant;
* a trailing ``w=<number>`` gives the weight; omitting it makes constraints
  hard and gives rules weight 1.0 (``w=inf`` makes a rule hard);
* ``#`` starts a comment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..errors import ParseError
from ..temporal import CONSTRAINT_PREDICATES, IntervalExpression, TimeInterval
from .atom import AllenAtom, Comparison, ConditionAtom, QuadAtom, TermEquality
from .builder import parse_interval_symbol, parse_symbol
from .constraint import TemporalConstraint
from .expressions import (
    BinaryOp,
    Expression,
    IntervalDuration,
    IntervalEnd,
    IntervalStart,
    Number,
    TermValue,
)
from .rule import TemporalRule
from .terms import Variable

# --------------------------------------------------------------------------- #
# Tokeniser
# --------------------------------------------------------------------------- #
_TOKEN_PATTERN = re.compile(
    r"""
    (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<string>"[^"]*")
  | (?P<interval>\[\s*-?\d+\s*,\s*-?\d+\s*\])
  | (?P<op><=|>=|!=|==|->|[&,()=<>+\-*/.:])
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    position: int


def tokenize(text: str, source: str | None = None) -> list[Token]:
    """Tokenise one statement; raises :class:`ParseError` on junk characters."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at column {position}", source=source
            )
        kind = match.lastgroup or "space"
        if kind != "space":
            tokens.append(Token(kind, match.group(), position))
        position = match.end()
    return tokens


# --------------------------------------------------------------------------- #
# Recursive-descent parser
# --------------------------------------------------------------------------- #
_INTERVAL_FUNCTIONS = {"start": IntervalStart, "end": IntervalEnd, "duration": IntervalDuration}
_HEAD_INTERVAL_FUNCTIONS = {"intersection", "intersect", "union", "span"}
_COMPARATORS = {"<", "<=", ">", ">=", "=", "==", "!="}


class _StatementParser:
    """Parses one rule or constraint statement from its token stream."""

    def __init__(self, tokens: Sequence[Token], source: str | None = None) -> None:
        self._tokens = list(tokens)
        self._index = 0
        self._source = source

    # -- token plumbing --------------------------------------------------- #
    def _peek(self, offset: int = 0) -> Optional[Token]:
        position = self._index + offset
        return self._tokens[position] if position < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of statement", source=self._source)
        self._index += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text!r}", source=self._source
            )
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    def _done(self) -> bool:
        return self._index >= len(self._tokens)

    # -- statement structure ---------------------------------------------- #
    def parse_statement(self) -> tuple[
        Optional[str],
        list[QuadAtom],
        list[ConditionAtom],
        Union[QuadAtom, list[ConditionAtom]],
        Optional[IntervalExpression],
        Optional[float],
    ]:
        """Parse ``[label:] body -> head [w=weight]`` and return its pieces."""
        label = self._parse_label()
        body_atoms, conditions = self._parse_body()
        self._expect("->")
        head, head_interval = self._parse_head()
        weight = self._parse_weight()
        if not self._done():
            token = self._peek()
            raise ParseError(
                f"trailing input starting at {token.text!r}", source=self._source
            )
        return label, body_atoms, conditions, head, head_interval, weight

    def _parse_label(self) -> Optional[str]:
        first = self._peek()
        second = self._peek(1)
        # A label looks like ``name :`` but ``quad(`` must not be mistaken for one.
        if (
            first is not None
            and second is not None
            and first.kind == "name"
            and second.text == ":"
        ):
            self._next()
            self._next()
            return first.text
        return None

    def _parse_body(self) -> tuple[list[QuadAtom], list[ConditionAtom]]:
        atoms: list[QuadAtom] = []
        conditions: list[ConditionAtom] = []
        while True:
            if self._at("quad"):
                atoms.append(self._parse_quad())
            else:
                conditions.append(self._parse_condition())
            if self._at("&") or self._at(","):
                self._next()
                continue
            break
        return atoms, conditions

    def _parse_head(
        self,
    ) -> tuple[Union[QuadAtom, list[ConditionAtom]], Optional[IntervalExpression]]:
        if self._at("quad"):
            return self._parse_head_quad()
        conditions = [self._parse_condition()]
        while self._at("&") or self._at(","):
            self._next()
            conditions.append(self._parse_condition())
        return conditions, None

    def _parse_weight(self) -> Optional[float]:
        if self._done():
            return None
        token = self._peek()
        if token is not None and token.kind == "name" and token.text == "w":
            self._next()
            self._expect("=")
            value = self._next()
            if value.kind == "name" and value.text.lower() in ("inf", "infinity", "hard"):
                return float("inf")
            if value.kind != "number":
                raise ParseError(f"invalid weight {value.text!r}", source=self._source)
            return float(value.text)
        if token is not None and token.text == ".":
            self._next()
            return self._parse_weight()
        return None

    # -- atoms ------------------------------------------------------------ #
    def _parse_quad(self) -> QuadAtom:
        self._expect("quad")
        self._expect("(")
        subject = self._parse_symbol_token()
        self._expect(",")
        predicate = self._parse_symbol_token()
        self._expect(",")
        obj = self._parse_symbol_token()
        if self._at(")"):
            # A triple-style atom: give it a fresh interval variable so the
            # grounder can still bind the fact's validity interval.
            self._next()
            return QuadAtom(
                subject=parse_symbol(subject),
                predicate=parse_symbol(predicate),  # type: ignore[arg-type]
                object=parse_symbol(obj),
                interval=Variable(f"_t{id(self) % 1000}_{self._index}"),
            )
        self._expect(",")
        interval = self._parse_interval_position()
        self._expect(")")
        return QuadAtom(
            subject=parse_symbol(subject),
            predicate=parse_symbol(predicate),  # type: ignore[arg-type]
            object=parse_symbol(obj),
            interval=interval,
        )

    def _parse_head_quad(self) -> tuple[QuadAtom, Optional[IntervalExpression]]:
        """Head quads may use an interval *expression* in the fourth position."""
        self._expect("quad")
        self._expect("(")
        subject = self._parse_symbol_token()
        self._expect(",")
        predicate = self._parse_symbol_token()
        self._expect(",")
        obj = self._parse_symbol_token()
        head_interval: Optional[IntervalExpression] = None
        interval: Union[Variable, TimeInterval]
        if self._at(")"):
            self._next()
            interval = Variable("t")
            atom = QuadAtom(
                subject=parse_symbol(subject),
                predicate=parse_symbol(predicate),  # type: ignore[arg-type]
                object=parse_symbol(obj),
                interval=interval,
            )
            return atom, head_interval
        self._expect(",")
        token = self._peek()
        if token is not None and token.kind == "name" and token.text in _HEAD_INTERVAL_FUNCTIONS:
            function = self._next().text
            self._expect("(")
            left = self._next()
            self._expect(",")
            right = self._next()
            self._expect(")")
            if function in ("intersection", "intersect"):
                head_interval = IntervalExpression.intersection(left.text, right.text)
            else:
                head_interval = IntervalExpression.union(left.text, right.text)
            interval = Variable(left.text)
        else:
            interval = parse_interval_symbol(self._next().text)  # type: ignore[assignment]
        self._expect(")")
        atom = QuadAtom(
            subject=parse_symbol(subject),
            predicate=parse_symbol(predicate),  # type: ignore[arg-type]
            object=parse_symbol(obj),
            interval=interval,
        )
        return atom, head_interval

    def _parse_symbol_token(self) -> str:
        token = self._next()
        if token.kind in ("name", "number", "string"):
            return token.text
        raise ParseError(f"expected a term but found {token.text!r}", source=self._source)

    def _parse_interval_position(self) -> Union[Variable, TimeInterval]:
        token = self._next()
        if token.kind == "interval":
            return TimeInterval.parse(token.text)
        if token.kind == "name":
            value = parse_interval_symbol(token.text)
            if isinstance(value, (Variable, TimeInterval)):
                return value
        if token.kind == "number":
            return TimeInterval.instant(int(float(token.text)))
        raise ParseError(
            f"expected an interval variable or literal, found {token.text!r}",
            source=self._source,
        )

    # -- conditions -------------------------------------------------------- #
    def _parse_condition(self) -> ConditionAtom:
        token = self._peek()
        if token is None:
            raise ParseError("expected a condition", source=self._source)
        # Temporal predicate: name(t, t2) where name is a known Allen predicate.
        if (
            token.kind == "name"
            and token.text in CONSTRAINT_PREDICATES
            and self._peek(1) is not None
            and self._peek(1).text == "("
        ):
            relation = self._next().text
            self._expect("(")
            left = self._next()
            self._expect(",")
            right = self._next()
            self._expect(")")
            return AllenAtom(relation, Variable(left.text), Variable(right.text))
        # Otherwise: an (in)equality or arithmetic comparison.
        left_expression = self._parse_expression()
        operator_token = self._next()
        if operator_token.text not in _COMPARATORS:
            raise ParseError(
                f"expected a comparison operator, found {operator_token.text!r}",
                source=self._source,
            )
        right_expression = self._parse_expression()
        operator = operator_token.text
        # Plain variable (in)equalities become equality-generating conditions.
        if (
            operator in ("=", "==", "!=")
            and isinstance(left_expression, TermValue)
            and isinstance(right_expression, TermValue)
        ):
            return TermEquality(
                left_expression.variable,
                right_expression.variable,
                negated=operator == "!=",
            )
        return Comparison(left_expression, operator, right_expression)

    # -- arithmetic expressions --------------------------------------------- #
    def _parse_expression(self) -> Expression:
        expression = self._parse_term_expression()
        while self._at("+") or self._at("-"):
            operator = self._next().text
            right = self._parse_term_expression()
            expression = BinaryOp(operator, expression, right)
        return expression

    def _parse_term_expression(self) -> Expression:
        expression = self._parse_factor()
        while self._at("*") or self._at("/"):
            operator = self._next().text
            right = self._parse_factor()
            expression = BinaryOp(operator, expression, right)
        return expression

    def _parse_factor(self) -> Expression:
        token = self._next()
        if token.text == "(":
            inner = self._parse_expression()
            self._expect(")")
            return inner
        if token.kind == "number":
            return Number(float(token.text))
        if token.kind == "name":
            if token.text in _INTERVAL_FUNCTIONS and self._at("("):
                self._next()
                argument = self._next()
                self._expect(")")
                return _INTERVAL_FUNCTIONS[token.text](Variable(argument.text))
            symbol = parse_symbol(token.text)
            if isinstance(symbol, Variable):
                return TermValue(symbol)
            # Constants used numerically (e.g. a year written as a name).
            try:
                return Number(float(token.text))
            except ValueError as exc:
                raise ParseError(
                    f"cannot use constant {token.text!r} in an arithmetic expression",
                    source=self._source,
                ) from exc
        raise ParseError(f"unexpected token {token.text!r} in expression", source=self._source)


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
@dataclass
class ParsedProgram:
    """Rules and constraints parsed from a text document."""

    rules: list[TemporalRule] = field(default_factory=list)
    constraints: list[TemporalConstraint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules) + len(self.constraints)


def _normalise_weight(weight: Optional[float], default: Optional[float]) -> Optional[float]:
    if weight is None:
        return default
    if weight == float("inf"):
        return None
    return weight


def _split_conditions(conditions: Iterable[ConditionAtom]) -> tuple[ConditionAtom, ...]:
    return tuple(conditions)


def parse_statement(
    text: str, source: str | None = None, default_name: str = "stmt"
) -> Union[TemporalRule, TemporalConstraint]:
    """Parse a single rule or constraint statement."""
    tokens = tokenize(text.strip(), source=source)
    if not tokens:
        raise ParseError("empty statement", source=source)
    parser = _StatementParser(tokens, source=source)
    label, body, conditions, head, head_interval, weight = parser.parse_statement()
    name = label or default_name
    if not body:
        raise ParseError(f"statement {name}: body contains no quad atom", source=source)
    if isinstance(head, QuadAtom):
        return TemporalRule(
            name=name,
            body=tuple(body),
            head=head,
            conditions=_split_conditions(conditions),
            weight=_normalise_weight(weight, default=1.0),
            head_interval=head_interval,
        )
    return TemporalConstraint(
        name=name,
        body=tuple(body),
        body_conditions=_split_conditions(conditions),
        head_conditions=tuple(head),
        weight=_normalise_weight(weight, default=None),
    )


def parse_rule(text: str, source: str | None = None) -> TemporalRule:
    """Parse a statement that must be an inference rule."""
    statement = parse_statement(text, source=source)
    if not isinstance(statement, TemporalRule):
        raise ParseError("statement is a constraint, not an inference rule", source=source)
    return statement


def parse_constraint(text: str, source: str | None = None) -> TemporalConstraint:
    """Parse a statement that must be a constraint."""
    statement = parse_statement(text, source=source)
    if not isinstance(statement, TemporalConstraint):
        raise ParseError("statement is an inference rule, not a constraint", source=source)
    return statement


def parse_program(text: str, source: str | None = None) -> ParsedProgram:
    """Parse a document of newline-separated statements (comments allowed).

    A statement may span several physical lines; a new statement starts on a
    line containing ``label:`` or on a blank-line boundary.
    """
    program = ParsedProgram()
    buffer: list[str] = []
    counter = 0

    def flush() -> None:
        nonlocal counter
        if not buffer:
            return
        statement_text = " ".join(buffer).strip()
        buffer.clear()
        if not statement_text:
            return
        counter += 1
        statement = parse_statement(statement_text, source=source, default_name=f"stmt{counter}")
        if isinstance(statement, TemporalRule):
            program.rules.append(statement)
        else:
            program.constraints.append(statement)

    label_start = re.compile(r"^\s*[A-Za-z_][A-Za-z0-9_]*\s*:")
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].rstrip()
        if not stripped.strip():
            flush()
            continue
        if label_start.match(stripped) and buffer:
            flush()
        buffer.append(stripped)
    flush()
    return program
