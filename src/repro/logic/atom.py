"""Atoms of the temporal first-order language.

Three families of atoms appear in TeCoRe rules and constraints:

* :class:`QuadAtom` — ``quad(x, playsFor, y, t)``: a temporal fact pattern
  that matches evidence (or derived) facts in the UTKG;
* condition atoms evaluated over a substitution:
  * :class:`AllenAtom` — ``overlaps(t, t')``, ``before(t, t')`` …;
  * :class:`Comparison` — ``start(t) - start(t') < 20``, ``age > 40`` …;
  * :class:`TermEquality` — ``y = z`` / ``y ≠ z``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import LogicError
from ..kg import IRI, TemporalFact, Term
from ..temporal import CONSTRAINT_PREDICATES, TimeInterval, compare
from .expressions import Expression
from .substitution import Substitution
from .terms import IntervalOrVar, TermOrVar, Variable


# --------------------------------------------------------------------------- #
# Quad atoms
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class QuadAtom:
    """A temporal fact pattern ``quad(subject, predicate, object, interval)``.

    The predicate is almost always a constant (as in every example of the
    paper), but a variable predicate is allowed for meta-rules.
    """

    subject: TermOrVar
    predicate: Union[IRI, Variable]
    object: TermOrVar
    interval: IntervalOrVar

    def variables(self) -> set[Variable]:
        """All variables appearing in the atom."""
        return {
            position
            for position in (self.subject, self.predicate, self.object, self.interval)
            if isinstance(position, Variable)
        }

    def entity_variables(self) -> set[Variable]:
        """Variables in subject/predicate/object position."""
        return {
            position
            for position in (self.subject, self.predicate, self.object)
            if isinstance(position, Variable)
        }

    def interval_variable(self) -> Optional[Variable]:
        """The interval variable, when the interval position is a variable."""
        return self.interval if isinstance(self.interval, Variable) else None

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not self.variables()

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #
    def match(self, fact: TemporalFact, substitution: Substitution) -> Optional[Substitution]:
        """Try to unify the atom with ``fact`` under ``substitution``.

        Returns the extended substitution, or ``None`` when the fact does not
        match.
        """
        result: Optional[Substitution] = substitution
        for position, value in (
            (self.subject, fact.subject),
            (self.predicate, fact.predicate),
            (self.object, fact.object),
        ):
            if isinstance(position, Variable):
                result = result.bind(position, value)
                if result is None:
                    return None
            elif position != value:
                return None
        if isinstance(self.interval, Variable):
            result = result.bind(self.interval, fact.interval)
        elif self.interval != fact.interval:
            return None
        return result

    def bound_pattern(
        self, substitution: Substitution
    ) -> tuple[Optional[Term], Optional[IRI], Optional[Term]]:
        """The (subject, predicate, object) lookup pattern under ``substitution``.

        Positions still unbound come back as ``None`` (wildcards for the graph
        index lookup); the grounding engine uses this to query only matching
        candidate facts instead of scanning the whole graph.
        """
        def resolve(position: TermOrVar) -> Optional[Term]:
            if isinstance(position, Variable):
                return substitution.term(position)
            return position

        subject = resolve(self.subject)
        predicate = resolve(self.predicate)
        obj = resolve(self.object)
        if predicate is not None and not isinstance(predicate, IRI):
            raise LogicError(f"predicate position bound to non-IRI value {predicate!r}")
        return subject, predicate, obj

    def instantiate(
        self,
        substitution: Substitution,
        interval: Optional[TimeInterval] = None,
        confidence: float = 1.0,
    ) -> TemporalFact:
        """Build the temporal fact denoted by the atom under ``substitution``.

        ``interval`` overrides the atom's interval position (used when a rule
        head carries an interval expression such as ``t ∩ t'``).
        """
        def resolve_term(position: TermOrVar, role: str) -> Term:
            if isinstance(position, Variable):
                value = substitution.get(position)
                if value is None or isinstance(value, TimeInterval):
                    raise LogicError(
                        f"{role} variable {position} is unbound or bound to an interval"
                    )
                return value
            return position

        subject = resolve_term(self.subject, "subject")
        predicate = resolve_term(self.predicate, "predicate")
        obj = resolve_term(self.object, "object")
        if not isinstance(predicate, IRI):
            raise LogicError(f"predicate resolved to non-IRI value {predicate!r}")

        if interval is None:
            if isinstance(self.interval, Variable):
                interval = substitution.interval(self.interval)
                if interval is None:
                    raise LogicError(f"interval variable {self.interval} is unbound")
            else:
                interval = self.interval
        return TemporalFact(
            subject=subject,  # type: ignore[arg-type]
            predicate=predicate,
            object=obj,
            interval=interval,
            confidence=confidence,
        )

    def __str__(self) -> str:
        def show(position: object) -> str:
            return position.name if isinstance(position, Variable) else str(position)

        return (
            f"quad({show(self.subject)}, {show(self.predicate)}, "
            f"{show(self.object)}, {show(self.interval)})"
        )


# --------------------------------------------------------------------------- #
# Condition atoms
# --------------------------------------------------------------------------- #
class ConditionAtom:
    """Base class for atoms evaluated against a substitution."""

    def holds(self, substitution: Substitution) -> bool:
        raise NotImplementedError

    def variables(self) -> set[Variable]:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class AllenAtom(ConditionAtom):
    """A named temporal predicate over two interval variables.

    Supports every predicate in :data:`repro.temporal.CONSTRAINT_PREDICATES`
    (the thirteen Allen relations plus the paper's inclusive ``overlaps`` /
    ``disjoint`` readings).
    """

    relation: str
    left: Variable
    right: Variable

    def __post_init__(self) -> None:
        if self.relation not in CONSTRAINT_PREDICATES:
            raise LogicError(
                f"unknown temporal predicate {self.relation!r}; "
                f"expected one of {sorted(CONSTRAINT_PREDICATES)}"
            )

    def holds(self, substitution: Substitution) -> bool:
        left = substitution.interval(self.left)
        right = substitution.interval(self.right)
        if left is None or right is None:
            raise LogicError(
                f"temporal predicate {self.relation} applied to unbound interval "
                f"variable ({self.left} or {self.right})"
            )
        return CONSTRAINT_PREDICATES[self.relation](left, right)

    def variables(self) -> set[Variable]:
        return {self.left, self.right}

    def __str__(self) -> str:
        return f"{self.relation}({self.left.name}, {self.right.name})"


@dataclass(frozen=True, slots=True)
class Comparison(ConditionAtom):
    """An arithmetic comparison between two expressions."""

    left: Expression
    operator: str
    right: Expression

    def holds(self, substitution: Substitution) -> bool:
        return compare(
            self.operator, self.left.evaluate(substitution), self.right.evaluate(substitution)
        )

    def variables(self) -> set[Variable]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


@dataclass(frozen=True, slots=True)
class TermEquality(ConditionAtom):
    """Equality (or inequality) between two entity variables or constants."""

    left: TermOrVar
    right: TermOrVar
    negated: bool = False

    def _resolve(self, position: TermOrVar, substitution: Substitution) -> Term:
        if isinstance(position, Variable):
            value = substitution.get(position)
            if value is None or isinstance(value, TimeInterval):
                raise LogicError(f"entity variable {position} is unbound")
            return value
        return position

    def holds(self, substitution: Substitution) -> bool:
        equal = self._resolve(self.left, substitution) == self._resolve(self.right, substitution)
        return not equal if self.negated else equal

    def variables(self) -> set[Variable]:
        return {position for position in (self.left, self.right) if isinstance(position, Variable)}

    def __str__(self) -> str:
        operator = "!=" if self.negated else "="
        def show(position: object) -> str:
            return position.name if isinstance(position, Variable) else str(position)
        return f"{show(self.left)} {operator} {show(self.right)}"


def evaluate_conditions(conditions: tuple[ConditionAtom, ...], substitution: Substitution) -> bool:
    """True when every condition atom holds under ``substitution``."""
    return all(condition.holds(substitution) for condition in conditions)
