"""Fluent builders for rules and constraints.

This is the programmatic counterpart of the demo's web forms: the
*constraints editor* lets a user pick two predicates (with auto-completion)
and relate them through an Allen relation; the *rule builder* assembles
``Body ∧ [Condition] → Head`` rules.  All builders validate eagerly and
produce the immutable :class:`~repro.logic.rule.TemporalRule` /
:class:`~repro.logic.constraint.TemporalConstraint` objects consumed by the
grounder.
"""

from __future__ import annotations

import re
from typing import Optional, Union

from ..errors import LogicError
from ..kg import IRI, TemporalKnowledgeGraph, to_term
from ..temporal import CONSTRAINT_PREDICATES, IntervalExpression, TimeInterval
from .atom import AllenAtom, Comparison, ConditionAtom, QuadAtom, TermEquality
from .constraint import ConstraintKind, TemporalConstraint
from .expressions import ExpressionLike, as_expression
from .rule import TemporalRule
from .terms import IntervalOrVar, TermOrVar, Variable

#: Identifiers considered logical variables by convention: a single lower-case
#: letter optionally followed by digits or primes (x, y, z, t, t2, t').  An
#: explicit leading ``?`` always marks a variable regardless of shape.
_VARIABLE_PATTERN = re.compile(r"^[a-z](?:[0-9']*)$")


def parse_symbol(value: Union[str, TermOrVar, int]) -> TermOrVar:
    """Interpret a convenience value as a variable or a constant term.

    * values that are already variables/terms pass through;
    * ``"?name"`` is always a variable;
    * short lower-case identifiers (``x``, ``t2``, ``t'``) are variables;
    * everything else becomes a graph term via :func:`repro.kg.to_term`.
    """
    if isinstance(value, Variable):
        return value
    if isinstance(value, str):
        if value.startswith("?"):
            return Variable(value[1:])
        if _VARIABLE_PATTERN.match(value):
            return Variable(value)
    return to_term(value)


def parse_interval_symbol(value: Union[str, IntervalOrVar, tuple[int, int]]) -> IntervalOrVar:
    """Interpret a convenience value as an interval variable or fixed interval."""
    if isinstance(value, (Variable, TimeInterval)):
        return value
    if isinstance(value, tuple) and len(value) == 2:
        return TimeInterval(int(value[0]), int(value[1]))
    if isinstance(value, str):
        if value.startswith("?"):
            return Variable(value[1:])
        if _VARIABLE_PATTERN.match(value):
            return Variable(value)
        return TimeInterval.parse(value)
    raise LogicError(f"cannot interpret {value!r} as an interval position")


def _require_variable(value: Union[str, Variable], role: str) -> Variable:
    symbol = parse_symbol(value) if not isinstance(value, Variable) else value
    if not isinstance(symbol, Variable):
        raise LogicError(f"{role} must be a variable, got constant {value!r}")
    return symbol


# --------------------------------------------------------------------------- #
# Atom helpers
# --------------------------------------------------------------------------- #
def quad(
    subject: Union[str, TermOrVar],
    predicate: Union[str, IRI, Variable],
    obj: Union[str, TermOrVar, int],
    interval: Union[str, IntervalOrVar, tuple[int, int]] = "t",
) -> QuadAtom:
    """Build a quad atom, e.g. ``quad("x", "playsFor", "y", "t")``."""
    predicate_symbol = parse_symbol(predicate)
    if not isinstance(predicate_symbol, (IRI, Variable)):
        raise LogicError(f"predicate position must be an IRI or variable, got {predicate!r}")
    return QuadAtom(
        subject=parse_symbol(subject),
        predicate=predicate_symbol,
        object=parse_symbol(obj),
        interval=parse_interval_symbol(interval),
    )


def allen(relation: str, left: Union[str, Variable], right: Union[str, Variable]) -> AllenAtom:
    """Build a temporal predicate atom, e.g. ``allen("overlaps", "t", "t2")``."""
    return AllenAtom(
        relation, _require_variable(left, "interval"), _require_variable(right, "interval")
    )


def overlaps(left: Union[str, Variable], right: Union[str, Variable]) -> AllenAtom:
    return allen("overlaps", left, right)


def disjoint(left: Union[str, Variable], right: Union[str, Variable]) -> AllenAtom:
    return allen("disjoint", left, right)


def before(left: Union[str, Variable], right: Union[str, Variable]) -> AllenAtom:
    return allen("before", left, right)


def compare(left: ExpressionLike, operator: str, right: ExpressionLike) -> Comparison:
    """Build an arithmetic comparison condition."""
    return Comparison(as_expression(left), operator, as_expression(right))


def equal(left: Union[str, TermOrVar], right: Union[str, TermOrVar]) -> TermEquality:
    """Equality-generating condition ``left = right``."""
    return TermEquality(parse_symbol(left), parse_symbol(right), negated=False)


def not_equal(left: Union[str, TermOrVar], right: Union[str, TermOrVar]) -> TermEquality:
    """Inequality condition ``left ≠ right``."""
    return TermEquality(parse_symbol(left), parse_symbol(right), negated=True)


def intersect(left: Union[str, Variable], right: Union[str, Variable]) -> IntervalExpression:
    """Head-interval expression ``t ∩ t'`` (rule f2)."""
    return IntervalExpression.intersection(
        _require_variable(left, "interval").name, _require_variable(right, "interval").name
    )


def union(left: Union[str, Variable], right: Union[str, Variable]) -> IntervalExpression:
    """Head-interval expression covering both body intervals."""
    return IntervalExpression.union(
        _require_variable(left, "interval").name, _require_variable(right, "interval").name
    )


# --------------------------------------------------------------------------- #
# Rule builder
# --------------------------------------------------------------------------- #
class RuleBuilder:
    """Fluent builder for :class:`~repro.logic.rule.TemporalRule`.

    Example
    -------
    >>> rule = (RuleBuilder("f1")
    ...         .body(quad("x", "playsFor", "y", "t"))
    ...         .head(quad("x", "worksFor", "y", "t"))
    ...         .weight(2.5)
    ...         .build())
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._body: list[QuadAtom] = []
        self._conditions: list[ConditionAtom] = []
        self._head: Optional[QuadAtom] = None
        self._weight: Optional[float] = 1.0
        self._head_interval: Optional[IntervalExpression] = None
        self._derived_confidence: float = 0.9

    def body(self, *atoms: QuadAtom) -> "RuleBuilder":
        self._body.extend(atoms)
        return self

    def when(self, *conditions: ConditionAtom) -> "RuleBuilder":
        self._conditions.extend(conditions)
        return self

    def head(self, atom: QuadAtom, interval: Optional[IntervalExpression] = None) -> "RuleBuilder":
        self._head = atom
        self._head_interval = interval
        return self

    def weight(self, value: Optional[float]) -> "RuleBuilder":
        self._weight = value
        return self

    def hard(self) -> "RuleBuilder":
        self._weight = None
        return self

    def derived_confidence(self, value: float) -> "RuleBuilder":
        self._derived_confidence = value
        return self

    def build(self) -> TemporalRule:
        if self._head is None:
            raise LogicError(f"rule {self._name}: no head atom was provided")
        return TemporalRule(
            name=self._name,
            body=tuple(self._body),
            head=self._head,
            conditions=tuple(self._conditions),
            weight=self._weight,
            head_interval=self._head_interval,
            derived_confidence=self._derived_confidence,
        )


# --------------------------------------------------------------------------- #
# Constraint builder
# --------------------------------------------------------------------------- #
class ConstraintBuilder:
    """Fluent builder for :class:`~repro.logic.constraint.TemporalConstraint`.

    Example (the paper's c2)
    ------------------------
    >>> c2 = (ConstraintBuilder("c2")
    ...       .body(quad("x", "coach", "y", "t"), quad("x", "coach", "z", "t2"))
    ...       .when(not_equal("y", "z"))
    ...       .require(disjoint("t", "t2"))
    ...       .hard()
    ...       .build())
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._body: list[QuadAtom] = []
        self._body_conditions: list[ConditionAtom] = []
        self._head_conditions: list[ConditionAtom] = []
        self._weight: Optional[float] = None
        self._kind: Optional[ConstraintKind] = None
        self._description = ""

    def body(self, *atoms: QuadAtom) -> "ConstraintBuilder":
        self._body.extend(atoms)
        return self

    def when(self, *conditions: ConditionAtom) -> "ConstraintBuilder":
        self._body_conditions.extend(conditions)
        return self

    def require(self, *conditions: ConditionAtom) -> "ConstraintBuilder":
        self._head_conditions.extend(conditions)
        return self

    def weight(self, value: Optional[float]) -> "ConstraintBuilder":
        self._weight = value
        return self

    def soft(self, value: float) -> "ConstraintBuilder":
        self._weight = value
        return self

    def hard(self) -> "ConstraintBuilder":
        self._weight = None
        return self

    def kind(self, value: ConstraintKind) -> "ConstraintBuilder":
        self._kind = value
        return self

    def description(self, text: str) -> "ConstraintBuilder":
        self._description = text
        return self

    def _infer_kind(self) -> ConstraintKind:
        if any(
            isinstance(condition, TermEquality) and not condition.negated
            for condition in self._head_conditions
        ):
            return ConstraintKind.EQUALITY_GENERATING
        if any(
            isinstance(condition, AllenAtom) and condition.relation in ("disjoint",)
            for condition in self._head_conditions
        ):
            return ConstraintKind.DISJOINTNESS
        if not self._head_conditions:
            return ConstraintKind.DENIAL
        return ConstraintKind.INCLUSION_DEPENDENCY

    def build(self) -> TemporalConstraint:
        return TemporalConstraint(
            name=self._name,
            body=tuple(self._body),
            body_conditions=tuple(self._body_conditions),
            head_conditions=tuple(self._head_conditions),
            weight=self._weight,
            kind=self._kind or self._infer_kind(),
            description=self._description,
        )


# --------------------------------------------------------------------------- #
# The constraints editor (the demo UI as an API)
# --------------------------------------------------------------------------- #
class ConstraintEditor:
    """Programmatic counterpart of the demo's constraints editor.

    It offers predicate auto-completion against a loaded UTKG and one-line
    construction of the common constraint shapes: relating two predicates via
    an Allen relation, declaring a predicate functional over time, and
    declaring two predicates temporally disjoint.
    """

    def __init__(self, graph: Optional[TemporalKnowledgeGraph] = None) -> None:
        self._graph = graph
        self._counter = 0

    # -- auto-completion ------------------------------------------------- #
    def predicates(self) -> list[str]:
        """All predicates available in the attached graph."""
        if self._graph is None:
            return []
        return [predicate.value for predicate in self._graph.predicates()]

    def complete(self, prefix: str) -> list[str]:
        """Predicates starting with ``prefix`` (case-insensitive)."""
        lowered = prefix.lower()
        return [name for name in self.predicates() if name.lower().startswith(lowered)]

    def relations(self) -> list[str]:
        """Temporal relations the editor can use."""
        return sorted(CONSTRAINT_PREDICATES)

    def _next_name(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}"

    def _check_predicate(self, predicate: str) -> None:
        if self._graph is not None and predicate not in self.predicates():
            raise LogicError(
                f"predicate {predicate!r} does not occur in graph {self._graph.name!r}; "
                f"candidates: {self.complete(predicate[:3]) or self.predicates()[:5]}"
            )

    # -- constraint shapes ------------------------------------------------ #
    def relate(
        self,
        first_predicate: str,
        second_predicate: str,
        relation: str,
        weight: Optional[float] = None,
        name: Optional[str] = None,
    ) -> TemporalConstraint:
        """Require ``relation`` to hold between the intervals of two predicates.

        Example: ``relate("birthDate", "worksFor", "before")`` — a person must
        be born before she works for a company.
        """
        self._check_predicate(first_predicate)
        self._check_predicate(second_predicate)
        if relation not in CONSTRAINT_PREDICATES:
            raise LogicError(f"unknown temporal relation {relation!r}")
        builder = (
            ConstraintBuilder(name or self._next_name("rel"))
            .body(
                quad("x", first_predicate, "y", "t"),
                quad("x", second_predicate, "z", "t2"),
            )
            .require(allen(relation, "t", "t2"))
.description(f"{first_predicate} must be {relation} {second_predicate} for the same subject")
            .kind(ConstraintKind.INCLUSION_DEPENDENCY)
        )
        return builder.weight(weight).build() if weight is not None else builder.hard().build()

    def functional_over_time(
        self,
        predicate: str,
        weight: Optional[float] = None,
        name: Optional[str] = None,
    ) -> TemporalConstraint:
        """At any time point, ``predicate`` maps a subject to one object.

        This is the shape of the paper's c2 (one coached club at a time) and
        c3 (one birth place).
        """
        self._check_predicate(predicate)
        builder = (
            ConstraintBuilder(name or self._next_name("fn"))
            .body(
                quad("x", predicate, "y", "t"),
                quad("x", predicate, "z", "t2"),
            )
            .when(not_equal("y", "z"))
            .require(disjoint("t", "t2"))
            .description(f"{predicate} admits one object per subject at any time")
            .kind(ConstraintKind.DISJOINTNESS)
        )
        return builder.weight(weight).build() if weight is not None else builder.hard().build()

    def mutually_exclusive(
        self,
        first_predicate: str,
        second_predicate: str,
        weight: Optional[float] = None,
        name: Optional[str] = None,
    ) -> TemporalConstraint:
        """The two predicates may never hold for a subject at the same time."""
        self._check_predicate(first_predicate)
        self._check_predicate(second_predicate)
        builder = (
            ConstraintBuilder(name or self._next_name("mx"))
            .body(
                quad("x", first_predicate, "y", "t"),
                quad("x", second_predicate, "z", "t2"),
            )
            .require(disjoint("t", "t2"))
            .description(f"{first_predicate} and {second_predicate} may not overlap in time")
            .kind(ConstraintKind.DISJOINTNESS)
        )
        return builder.weight(weight).build() if weight is not None else builder.hard().build()

    def unique_value(
        self,
        predicate: str,
        weight: Optional[float] = None,
        name: Optional[str] = None,
    ) -> TemporalConstraint:
        """Equality-generating: overlapping assertions must agree on the object."""
        self._check_predicate(predicate)
        builder = (
            ConstraintBuilder(name or self._next_name("eq"))
            .body(
                quad("x", predicate, "y", "t"),
                quad("x", predicate, "z", "t2"),
            )
            .when(overlaps("t", "t2"))
            .require(equal("y", "z"))
            .description(f"overlapping {predicate} assertions must agree on their value")
            .kind(ConstraintKind.EQUALITY_GENERATING)
        )
        return builder.weight(weight).build() if weight is not None else builder.hard().build()
