"""Logical variables and the binding values they range over.

The logic layer distinguishes *entity variables* (``x``, ``y``, ``z`` in the
paper's rules — ranging over graph terms) from *interval variables* (``t``,
``t'`` — ranging over validity intervals).  Both are instances of
:class:`Variable`; which sort a variable has is determined by the position it
occupies in a quad atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..kg import Term
from ..temporal import TimeInterval


@dataclass(frozen=True, order=True, slots=True)
class Variable:
    """A logical variable, identified by its name.

    Names follow the paper's convention: lower-case single letters with an
    optional prime / index (``x``, ``y``, ``t``, ``t'``, ``t2``).
    """

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A value a variable may be bound to during grounding.
BindingValue = Union[Term, TimeInterval]

#: A term position in an atom is either already a constant or a variable.
TermOrVar = Union[Term, Variable]

#: An interval position is either a fixed interval or an interval variable.
IntervalOrVar = Union[TimeInterval, Variable]


def var(name: str) -> Variable:
    """Shorthand constructor used heavily by the rule builders and tests."""
    return Variable(name)


def is_variable(value: object) -> bool:
    """True when ``value`` is a logical variable."""
    return isinstance(value, Variable)


def variables_in(values: tuple) -> set[Variable]:
    """All variables appearing in a tuple of term-or-variable positions."""
    return {value for value in values if isinstance(value, Variable)}
