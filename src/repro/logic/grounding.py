"""The grounding engine.

Turns an uncertain temporal KG plus temporal inference rules and constraints
into a :class:`~repro.logic.ground.GroundProgram`:

1. every evidence fact becomes a ground atom with a soft unit clause whose
   weight is the fact's log-odds (certain facts get a large finite weight);
2. inference rules are forward-chained to a fix point; every rule firing adds
   the derived fact as a (hidden) ground atom and a clause
   ``¬b₁ ∨ … ∨ ¬bₖ ∨ h`` carrying the rule's weight;
3. constraints are grounded against evidence *and* derived facts; every
   violated instantiation adds a conflict clause ``¬f₁ ∨ … ∨ ¬fₖ``.

The same engine also powers pure conflict *detection* (the Figure 8
statistics) via :func:`find_conflicts`, which skips step 1 and 2 bookkeeping
and simply reports the violated constraint instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import GroundingError
from ..kg import TemporalFact, TemporalKnowledgeGraph
from .atom import QuadAtom
from .constraint import TemporalConstraint
from .ground import ClauseKind, GroundProgram
from .rule import TemporalRule
from .substitution import Substitution


@dataclass(frozen=True, slots=True)
class RuleFiring:
    """One ground instantiation of an inference rule."""

    rule: str
    body: tuple[TemporalFact, ...]
    head: TemporalFact
    weight: Optional[float]


@dataclass(frozen=True, slots=True)
class ConstraintViolation:
    """One violated ground instantiation of a constraint (a conflict set)."""

    constraint: str
    facts: tuple[TemporalFact, ...]
    weight: Optional[float]

    @property
    def is_hard(self) -> bool:
        return self.weight is None

    def __str__(self) -> str:
        inner = "; ".join(str(fact) for fact in self.facts)
        return f"{self.constraint}: {{{inner}}}"


@dataclass
class GroundingResult:
    """Everything produced by a full grounding pass."""

    program: GroundProgram
    firings: list[RuleFiring] = field(default_factory=list)
    violations: list[ConstraintViolation] = field(default_factory=list)
    rounds: int = 0

    def derived_facts(self) -> list[TemporalFact]:
        return [atom.fact for atom in self.program.derived_atoms()]

    def conflicting_facts(self) -> list[TemporalFact]:
        """Distinct facts participating in at least one violation."""
        seen: dict[tuple, TemporalFact] = {}
        for violation in self.violations:
            for fact in violation.facts:
                seen.setdefault(fact.statement_key, fact)
        return list(seen.values())


# --------------------------------------------------------------------------- #
# Body matching
# --------------------------------------------------------------------------- #
def _match_body(
    body: Sequence[QuadAtom],
    graph: TemporalKnowledgeGraph,
    substitution: Substitution,
    position: int = 0,
) -> Iterator[tuple[Substitution, tuple[TemporalFact, ...]]]:
    """Enumerate all ways of matching ``body`` against ``graph``.

    Standard backtracking join: each body atom queries the graph with the
    most selective pattern available under the current partial substitution.
    Yields ``(substitution, matched facts)`` pairs.
    """
    if position == len(body):
        yield substitution, ()
        return
    atom = body[position]
    subject, predicate, obj = atom.bound_pattern(substitution)
    for fact in graph.find(subject=subject, predicate=predicate, obj=obj):
        extended = atom.match(fact, substitution)
        if extended is None:
            continue
        for final, rest in _match_body(body, graph, extended, position + 1):
            yield final, (fact, *rest)


def match_rule(
    rule: TemporalRule, graph: TemporalKnowledgeGraph
) -> Iterator[tuple[Substitution, tuple[TemporalFact, ...]]]:
    """All body matches of ``rule`` whose conditions hold."""
    for substitution, facts in _match_body(rule.body, graph, Substitution.empty()):
        if all(condition.holds(substitution) for condition in rule.conditions):
            yield substitution, facts


def match_constraint(
    constraint: TemporalConstraint, graph: TemporalKnowledgeGraph
) -> Iterator[tuple[Substitution, tuple[TemporalFact, ...]]]:
    """All body matches of ``constraint`` (conditions *not* yet checked)."""
    yield from _match_body(constraint.body, graph, Substitution.empty())


# --------------------------------------------------------------------------- #
# The grounder
# --------------------------------------------------------------------------- #
class Grounder:
    """Grounds a UTKG with rules and constraints into a propositional program.

    Parameters
    ----------
    graph:
        The evidence UTKG.
    rules:
        Temporal inference rules to forward-chain.
    constraints:
        Temporal constraints to ground into conflict clauses.
    max_rounds:
        Upper bound on forward-chaining rounds (rules over derived predicates,
        such as f2 over f1's ``worksFor`` output, need more than one round).
    derive_facts:
        When False, rules are ignored entirely (pure conflict detection).
    keep_bias:
        Small positive weight added to every evidence fact's unit clause so
        that, all else equal, the MAP state prefers *keeping* a fact over
        removing it.  This matters for facts with confidence exactly 0.5
        (log-odds 0), such as fact (3) of the paper's running example, which
        Figure 7 keeps.
    derived_prior:
        Small negative prior placed on every derived (hidden) atom.  Without
        it the MAP state is free to assert derived facts whose supporting
        body facts were removed (the rule clause is vacuously satisfied);
        with it a derived fact is only asserted when a rule firing whose body
        survives actually supports it.
    """

    def __init__(
        self,
        graph: TemporalKnowledgeGraph,
        rules: Iterable[TemporalRule] = (),
        constraints: Iterable[TemporalConstraint] = (),
        max_rounds: int = 5,
        derive_facts: bool = True,
        keep_bias: float = 1e-3,
        derived_prior: float = 5e-4,
    ) -> None:
        self.graph = graph
        self.rules = list(rules)
        self.constraints = list(constraints)
        if max_rounds < 1:
            raise GroundingError("max_rounds must be at least 1")
        self.max_rounds = max_rounds
        self.derive_facts = derive_facts
        self.keep_bias = keep_bias
        self.derived_prior = derived_prior

    # ------------------------------------------------------------------ #
    def ground(self) -> GroundingResult:
        """Run the full grounding pipeline and return the result."""
        program = GroundProgram()
        result = GroundingResult(program=program)

        # 1. Evidence atoms and their soft unit clauses.
        for fact in self.graph:
            atom = program.add_atom(fact, is_evidence=True)
            program.add_clause(
                [(atom.index, True)],
                weight=fact.log_weight + self.keep_bias,
                kind=ClauseKind.EVIDENCE,
                origin="evidence",
            )

        # Working graph that accumulates derived facts so later rounds and
        # constraint grounding can see them.
        working = self.graph.copy(name=f"{self.graph.name}-working")

        # 2. Forward-chain the inference rules.
        if self.derive_facts and self.rules:
            result.rounds = self._chain_rules(program, working, result)

        # 3. Ground the constraints over evidence + derived facts.
        self._ground_constraints(program, working, result)
        return result

    # ------------------------------------------------------------------ #
    def _chain_rules(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> int:
        seen_firings: set[tuple] = set()
        prior_added: set[int] = set()
        rounds_used = 0
        for round_number in range(1, self.max_rounds + 1):
            new_facts: list[tuple[TemporalRule, tuple[TemporalFact, ...], TemporalFact]] = []
            for rule in self.rules:
                for substitution, body_facts in match_rule(rule, working):
                    head_interval = rule.head_interval_for(substitution)
                    if head_interval is None:
                        continue
                    head_fact = rule.head.instantiate(
                        substitution,
                        interval=head_interval,
                        confidence=rule.derived_confidence,
                    )
                    signature = (
                        rule.name,
                        tuple(fact.statement_key for fact in body_facts),
                        head_fact.statement_key,
                    )
                    if signature in seen_firings:
                        continue
                    seen_firings.add(signature)
                    new_facts.append((rule, body_facts, head_fact))

            if not new_facts:
                break
            rounds_used = round_number
            for rule, body_facts, head_fact in new_facts:
                head_atom = program.add_atom(
                    head_fact, is_evidence=head_fact in self.graph, derived_by=rule.name
                )
                if (
                    not head_atom.is_evidence
                    and self.derived_prior > 0
                    and head_atom.index not in prior_added
                ):
                    prior_added.add(head_atom.index)
                    program.add_clause(
                        [(head_atom.index, True)],
                        weight=-self.derived_prior,
                        kind=ClauseKind.PRIOR,
                        origin=f"prior:{rule.name}",
                    )
                if head_fact not in working:
                    working.add(head_fact)
                body_atoms = [program.add_atom(fact, is_evidence=fact in self.graph) for fact in body_facts]
                literals = [(atom.index, False) for atom in body_atoms]
                literals.append((head_atom.index, True))
                program.add_clause(
                    literals,
                    weight=rule.weight,
                    kind=ClauseKind.RULE,
                    origin=rule.name,
                )
                result.firings.append(
                    RuleFiring(rule.name, tuple(body_facts), head_fact, rule.weight)
                )
        return rounds_used

    # ------------------------------------------------------------------ #
    def _ground_constraints(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> None:
        seen: set[tuple] = set()
        for constraint in self.constraints:
            for substitution, facts in match_constraint(constraint, working):
                # Skip degenerate matches where the same fact fills two body
                # atoms (e.g. c2 matching a coach fact against itself).
                keys = tuple(fact.statement_key for fact in facts)
                if len(set(keys)) != len(keys):
                    continue
                if not constraint.violated_by(substitution):
                    continue
                signature = (constraint.name, tuple(sorted(keys)))
                if signature in seen:
                    continue
                seen.add(signature)
                atoms = [program.add_atom(fact, is_evidence=fact in self.graph) for fact in facts]
                program.add_clause(
                    [(atom.index, False) for atom in atoms],
                    weight=constraint.weight,
                    kind=ClauseKind.CONSTRAINT,
                    origin=constraint.name,
                )
                result.violations.append(
                    ConstraintViolation(constraint.name, tuple(facts), constraint.weight)
                )


# --------------------------------------------------------------------------- #
# Convenience entry points
# --------------------------------------------------------------------------- #
def ground(
    graph: TemporalKnowledgeGraph,
    rules: Iterable[TemporalRule] = (),
    constraints: Iterable[TemporalConstraint] = (),
    max_rounds: int = 5,
) -> GroundingResult:
    """Ground ``graph`` with ``rules`` and ``constraints`` (full pipeline)."""
    return Grounder(graph, rules, constraints, max_rounds=max_rounds).ground()


def find_conflicts(
    graph: TemporalKnowledgeGraph,
    constraints: Iterable[TemporalConstraint],
) -> list[ConstraintViolation]:
    """Detect conflicts only (no rule chaining, no MAP).

    This is what the demo's statistics panel reports: the number of
    conflicting facts found in the loaded UTKG.
    """
    grounder = Grounder(graph, rules=(), constraints=constraints, derive_facts=False)
    return grounder.ground().violations
