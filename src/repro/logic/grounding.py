"""The grounding engine.

Turns an uncertain temporal KG plus temporal inference rules and constraints
into a :class:`~repro.logic.ground.GroundProgram`:

1. every evidence fact becomes a ground atom with a soft unit clause whose
   weight is the fact's log-odds (certain facts get a large finite weight);
2. inference rules are forward-chained to a fix point; every rule firing adds
   the derived fact as a (hidden) ground atom and a clause
   ``¬b₁ ∨ … ∨ ¬bₖ ∨ h`` carrying the rule's weight;
3. constraints are grounded against evidence *and* derived facts; every
   violated instantiation adds a conflict clause ``¬f₁ ∨ … ∨ ¬fₖ``.

Two interchangeable engines implement this pipeline:

* :class:`IndexedGrounder` (the default, aliased as :class:`Grounder`) —
  semi-naive forward chaining.  Each round joins rule bodies only against the
  *delta* of facts derived in the previous round (via the graph's insertion
  ticks and hash indexes), skips the per-lookup sorting and term coercion of
  the public :meth:`~repro.kg.graph.TemporalKnowledgeGraph.find` API, and
  deduplicates ground clauses by firing/violation signature against a cached
  atom table.  Within every round the collected matches are re-ordered into
  the naive enumeration order, so the emitted program is bit-for-bit
  identical to the naive one.
* :class:`NaiveGrounder` — the original rescan-everything engine, kept as the
  reference implementation for the differential tests and benchmarks.

The same engines also power pure conflict *detection* (the Figure 8
statistics) via :func:`find_conflicts`, which skips step 1 and 2 bookkeeping
and simply reports the violated constraint instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import GroundingError, LogicError
from ..kg import IRI, TemporalFact, TemporalKnowledgeGraph
from ..temporal import TimeInterval
from .atom import QuadAtom
from .constraint import TemporalConstraint
from .ground import ClauseKind, GroundProgram
from .rule import TemporalRule
from .substitution import Substitution
from .terms import Variable


@dataclass(frozen=True, slots=True)
class RuleFiring:
    """One ground instantiation of an inference rule."""

    rule: str
    body: tuple[TemporalFact, ...]
    head: TemporalFact
    weight: Optional[float]


@dataclass(frozen=True, slots=True)
class ConstraintViolation:
    """One violated ground instantiation of a constraint (a conflict set)."""

    constraint: str
    facts: tuple[TemporalFact, ...]
    weight: Optional[float]

    @property
    def is_hard(self) -> bool:
        return self.weight is None

    def __str__(self) -> str:
        inner = "; ".join(str(fact) for fact in self.facts)
        return f"{self.constraint}: {{{inner}}}"


@dataclass
class GroundingResult:
    """Everything produced by a full grounding pass."""

    program: GroundProgram
    firings: list[RuleFiring] = field(default_factory=list)
    violations: list[ConstraintViolation] = field(default_factory=list)
    rounds: int = 0

    def derived_facts(self) -> list[TemporalFact]:
        return [atom.fact for atom in self.program.derived_atoms()]

    def conflicting_facts(self) -> list[TemporalFact]:
        """Distinct facts participating in at least one violation."""
        seen: dict[tuple, TemporalFact] = {}
        for violation in self.violations:
            for fact in violation.facts:
                seen.setdefault(fact.statement_key, fact)
        return list(seen.values())


# --------------------------------------------------------------------------- #
# Body matching
# --------------------------------------------------------------------------- #
def _match_body(
    body: Sequence[QuadAtom],
    graph: TemporalKnowledgeGraph,
    substitution: Substitution,
    position: int = 0,
) -> Iterator[tuple[Substitution, tuple[TemporalFact, ...]]]:
    """Enumerate all ways of matching ``body`` against ``graph``.

    Standard backtracking join: each body atom queries the graph with the
    most selective pattern available under the current partial substitution.
    Yields ``(substitution, matched facts)`` pairs.
    """
    if position == len(body):
        yield substitution, ()
        return
    atom = body[position]
    subject, predicate, obj = atom.bound_pattern(substitution)
    for fact in graph.find(subject=subject, predicate=predicate, obj=obj):
        extended = atom.match(fact, substitution)
        if extended is None:
            continue
        for final, rest in _match_body(body, graph, extended, position + 1):
            yield final, (fact, *rest)


def match_rule(
    rule: TemporalRule, graph: TemporalKnowledgeGraph
) -> Iterator[tuple[Substitution, tuple[TemporalFact, ...]]]:
    """All body matches of ``rule`` whose conditions hold."""
    for substitution, facts in _match_body(rule.body, graph, Substitution.empty()):
        if all(condition.holds(substitution) for condition in rule.conditions):
            yield substitution, facts


def match_constraint(
    constraint: TemporalConstraint, graph: TemporalKnowledgeGraph
) -> Iterator[tuple[Substitution, tuple[TemporalFact, ...]]]:
    """All body matches of ``constraint`` (conditions *not* yet checked)."""
    yield from _match_body(constraint.body, graph, Substitution.empty())


class _AtomPlan:
    """A :class:`QuadAtom` compiled for the indexed engine's join loop.

    Each position is split at compile time into a constant or a variable
    *name*, so the per-candidate work is string-keyed dictionary stores
    instead of the immutable :class:`Substitution` extension the naive
    engine performs per fact (variable names hash faster than the dataclass
    variables, and str caches its hash).
    """

    __slots__ = ("subject", "predicate", "object", "interval")

    def __init__(self, atom: QuadAtom) -> None:
        def entry(position):
            return (True, position.name) if isinstance(position, Variable) else (False, position)

        self.subject = entry(atom.subject)
        self.predicate = entry(atom.predicate)
        self.object = entry(atom.object)
        self.interval = entry(atom.interval)


def _compile_body(body: Sequence[QuadAtom]) -> list[_AtomPlan]:
    return [_AtomPlan(atom) for atom in body]


class _BindingsView:
    """Zero-copy :class:`Substitution` stand-in over the live bindings dict.

    Conditions, interval expressions, and head instantiation only consume a
    substitution through ``get`` / ``term`` / ``interval`` / ``intervals``;
    backing those with the matcher's name-keyed dict turns the naive
    engine's per-lookup linear scans into O(1) hash lookups and avoids
    materialising a :class:`Substitution` per match.  The view stays current
    as the matcher backtracks, so consumers must read it before resuming the
    match generator (the grounder does).
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: dict) -> None:
        self._bindings = bindings

    def get(self, variable: Variable):
        return self._bindings.get(variable.name)

    def term(self, variable: Variable):
        value = self._bindings.get(variable.name)
        return value if not isinstance(value, TimeInterval) else None

    def interval(self, variable: Variable) -> Optional[TimeInterval]:
        value = self._bindings.get(variable.name)
        return value if isinstance(value, TimeInterval) else None

    def intervals(self) -> dict[str, TimeInterval]:
        return {
            name: value for name, value in self._bindings.items() if isinstance(value, TimeInterval)
        }


def _match_compiled(
    plans: Sequence[_AtomPlan],
    graph: TemporalKnowledgeGraph,
    order: Sequence[int],
    bounds: Sequence[tuple[Optional[int], Optional[int]]],
    bindings: dict,
    facts: list[Optional[TemporalFact]],
    step: int = 0,
) -> Iterator[tuple[TemporalFact, ...]]:
    """Backtracking join expanding body positions in ``order``.

    ``bounds[position]`` is an insertion-tick window ``(since, before)``
    restricting which facts the atom at ``position`` may match — the
    semi-naive delta discipline.  Uses the graph's raw (unsorted, uncoerced)
    index scans and a mutable name-keyed ``bindings`` dict with trail-based
    undo; callers needing a deterministic order sort the collected matches
    afterwards.  At yield time ``bindings`` holds the full match's variable
    assignment (snapshot it before resuming the generator).
    """
    if step == len(order):
        yield tuple(facts)  # type: ignore[arg-type]
        return
    position = order[step]
    plan = plans[position]

    # Resolve the index lookup pattern under the current bindings.  Positions
    # passed to iter_matching are guaranteed equal on every returned fact, so
    # only positions left unbound need per-candidate binding work.
    is_var, value = plan.subject
    subject = bindings.get(value) if is_var else value
    is_var, value = plan.object
    obj = bindings.get(value) if is_var else value
    is_var, value = plan.predicate
    if is_var:
        predicate = bindings.get(value)
        if predicate is not None and not isinstance(predicate, IRI):
            if isinstance(predicate, TimeInterval):
                return  # an interval can never equal a fact's predicate
            raise LogicError(f"predicate position bound to non-IRI value {predicate!r}")
    else:
        predicate = value

    checks: list[tuple[int, str, bool]] = []  # (field, variable name, check_only)
    scheduled: set[str] = set()
    for index, (is_var, value), resolved in (
        (0, plan.subject, subject),
        (1, plan.predicate, predicate),
        (2, plan.object, obj),
    ):
        if is_var and resolved is None:
            checks.append((index, value, value in scheduled))
            scheduled.add(value)

    required_interval: Optional[TimeInterval] = None
    is_var, value = plan.interval
    if is_var:
        bound = bindings.get(value)
        if bound is None:
            checks.append((3, value, value in scheduled))
            scheduled.add(value)
        elif isinstance(bound, TimeInterval):
            required_interval = bound
        else:
            return  # interval variable clashed with an entity binding
    else:
        required_interval = value

    since, before = bounds[position]
    last_step = step + 1 == len(order)
    next_step = step + 1
    for fact in graph.iter_matching(subject, predicate, obj, since=since, before=before):
        if required_interval is not None and fact.interval != required_interval:
            continue
        matched = True
        added: list[str] = []
        for index, name, check_only in checks:
            candidate = (
                fact.subject if index == 0
                else fact.predicate if index == 1
                else fact.object if index == 2
                else fact.interval
            )
            if check_only:
                if bindings[name] != candidate:
                    matched = False
                    break
            else:
                bindings[name] = candidate
                added.append(name)
        if matched:
            facts[position] = fact
            if last_step:
                yield tuple(facts)  # type: ignore[arg-type]
            else:
                yield from _match_compiled(plans, graph, order, bounds, bindings, facts, next_step)
        for name in added:
            del bindings[name]


def _delta_matches(
    plans: Sequence[_AtomPlan],
    graph: TemporalKnowledgeGraph,
    delta_since: int,
) -> Iterator[tuple[_BindingsView, tuple[TemporalFact, ...]]]:
    """All body matches using at least one fact added at tick ≥ ``delta_since``.

    Classic semi-naive split: for pivot position ``i`` the pivot atom draws
    from the delta, positions left of it from the pre-delta facts, and
    positions right of it from the whole graph — each qualifying match is
    enumerated exactly once.  The pivot is expanded first, so every
    derivation starts from the (usually small) delta.
    """
    arity = len(plans)
    bindings: dict = {}
    view = _BindingsView(bindings)
    for pivot in range(arity):
        if delta_since <= 0 and pivot > 0:
            # No pre-delta facts exist, so any later pivot has an empty
            # left-hand window; only pivot 0 can produce matches.
            break
        bounds = [
            (delta_since, None) if position == pivot
            else (None, delta_since) if position < pivot
            else (None, None)
            for position in range(arity)
        ]
        order = [pivot, *(position for position in range(arity) if position != pivot)]
        for facts in _match_compiled(plans, graph, order, bounds, bindings, [None] * arity):
            yield view, facts


def _full_matches(
    plans: Sequence[_AtomPlan], graph: TemporalKnowledgeGraph
) -> Iterator[tuple[_BindingsView, tuple[TemporalFact, ...]]]:
    """All body matches against the whole graph (raw index scans, unsorted)."""
    arity = len(plans)
    bindings: dict = {}
    view = _BindingsView(bindings)
    for facts in _match_compiled(
        plans, graph, range(arity), [(None, None)] * arity, bindings, [None] * arity
    ):
        yield view, facts


def _body_sort_key(facts: Sequence[TemporalFact]) -> tuple:
    """Lexicographic key reproducing the naive engine's enumeration order."""
    return tuple(fact.sort_key() for fact in facts)


# --------------------------------------------------------------------------- #
# The grounders
# --------------------------------------------------------------------------- #
class _GrounderBase:
    """Shared pipeline of the grounding engines.

    Parameters
    ----------
    graph:
        The evidence UTKG.
    rules:
        Temporal inference rules to forward-chain.
    constraints:
        Temporal constraints to ground into conflict clauses.
    max_rounds:
        Upper bound on forward-chaining rounds (rules over derived predicates,
        such as f2 over f1's ``worksFor`` output, need more than one round).
    derive_facts:
        When False, rules are ignored entirely (pure conflict detection).
    keep_bias:
        Small positive weight added to every evidence fact's unit clause so
        that, all else equal, the MAP state prefers *keeping* a fact over
        removing it.  This matters for facts with confidence exactly 0.5
        (log-odds 0), such as fact (3) of the paper's running example, which
        Figure 7 keeps.
    derived_prior:
        Small negative prior placed on every derived (hidden) atom.  Without
        it the MAP state is free to assert derived facts whose supporting
        body facts were removed (the rule clause is vacuously satisfied);
        with it a derived fact is only asserted when a rule firing whose body
        survives actually supports it.
    """

    #: Registry name of the engine ("indexed" / "naive").
    engine: str = "abstract"

    def __init__(
        self,
        graph: TemporalKnowledgeGraph,
        rules: Iterable[TemporalRule] = (),
        constraints: Iterable[TemporalConstraint] = (),
        max_rounds: int = 5,
        derive_facts: bool = True,
        keep_bias: float = 1e-3,
        derived_prior: float = 5e-4,
    ) -> None:
        self.graph = graph
        self.rules = list(rules)
        self.constraints = list(constraints)
        if max_rounds < 1:
            raise GroundingError("max_rounds must be at least 1")
        self.max_rounds = max_rounds
        self.derive_facts = derive_facts
        self.keep_bias = keep_bias
        self.derived_prior = derived_prior

    # ------------------------------------------------------------------ #
    def ground(self) -> GroundingResult:
        """Run the full grounding pipeline and return the result."""
        program = GroundProgram()
        result = GroundingResult(program=program)

        # 1. Evidence atoms and their soft unit clauses.
        for fact in self.graph:
            atom = program.add_atom(fact, is_evidence=True)
            program.add_clause(
                [(atom.index, True)],
                weight=fact.log_weight + self.keep_bias,
                kind=ClauseKind.EVIDENCE,
                origin="evidence",
            )

        # Working graph that accumulates derived facts so later rounds and
        # constraint grounding can see them.
        working = self.graph.copy(name=f"{self.graph.name}-working")

        # 2. Forward-chain the inference rules.
        if self.derive_facts and self.rules:
            result.rounds = self._chain_rules(program, working, result)

        # 3. Ground the constraints over evidence + derived facts.
        self._ground_constraints(program, working, result)
        return result

    # ------------------------------------------------------------------ #
    def _chain_rules(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> int:
        raise NotImplementedError

    def _ground_constraints(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> None:
        raise NotImplementedError


class NaiveGrounder(_GrounderBase):
    """The reference engine: every round re-joins the whole working graph.

    Kept verbatim as the baseline the indexed engine is differentially
    tested (and benchmarked) against.
    """

    engine = "naive"

    # ------------------------------------------------------------------ #
    def _chain_rules(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> int:
        seen_firings: set[tuple] = set()
        prior_added: set[int] = set()
        rounds_used = 0
        for round_number in range(1, self.max_rounds + 1):
            new_facts: list[tuple[TemporalRule, tuple[TemporalFact, ...], TemporalFact]] = []
            for rule in self.rules:
                for substitution, body_facts in match_rule(rule, working):
                    head_interval = rule.head_interval_for(substitution)
                    if head_interval is None:
                        continue
                    head_fact = rule.head.instantiate(
                        substitution,
                        interval=head_interval,
                        confidence=rule.derived_confidence,
                    )
                    signature = (
                        rule.name,
                        tuple(fact.statement_key for fact in body_facts),
                        head_fact.statement_key,
                    )
                    if signature in seen_firings:
                        continue
                    seen_firings.add(signature)
                    new_facts.append((rule, body_facts, head_fact))

            if not new_facts:
                break
            rounds_used = round_number
            for rule, body_facts, head_fact in new_facts:
                head_atom = program.add_atom(
                    head_fact, is_evidence=head_fact in self.graph, derived_by=rule.name
                )
                if (
                    not head_atom.is_evidence
                    and self.derived_prior > 0
                    and head_atom.index not in prior_added
                ):
                    prior_added.add(head_atom.index)
                    program.add_clause(
                        [(head_atom.index, True)],
                        weight=-self.derived_prior,
                        kind=ClauseKind.PRIOR,
                        origin=f"prior:{rule.name}",
                    )
                if head_fact not in working:
                    working.add(head_fact)
                body_atoms = [
                    program.add_atom(fact, is_evidence=fact in self.graph) for fact in body_facts
                ]
                literals = [(atom.index, False) for atom in body_atoms]
                literals.append((head_atom.index, True))
                program.add_clause(
                    literals,
                    weight=rule.weight,
                    kind=ClauseKind.RULE,
                    origin=rule.name,
                )
                result.firings.append(
                    RuleFiring(rule.name, tuple(body_facts), head_fact, rule.weight)
                )
        return rounds_used

    # ------------------------------------------------------------------ #
    def _ground_constraints(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> None:
        seen: set[tuple] = set()
        for constraint in self.constraints:
            for substitution, facts in match_constraint(constraint, working):
                # Skip degenerate matches where the same fact fills two body
                # atoms (e.g. c2 matching a coach fact against itself).
                keys = tuple(fact.statement_key for fact in facts)
                if len(set(keys)) != len(keys):
                    continue
                if not constraint.violated_by(substitution):
                    continue
                signature = (constraint.name, tuple(sorted(keys)))
                if signature in seen:
                    continue
                seen.add(signature)
                atoms = [program.add_atom(fact, is_evidence=fact in self.graph) for fact in facts]
                program.add_clause(
                    [(atom.index, False) for atom in atoms],
                    weight=constraint.weight,
                    kind=ClauseKind.CONSTRAINT,
                    origin=constraint.name,
                )
                result.violations.append(
                    ConstraintViolation(constraint.name, tuple(facts), constraint.weight)
                )


class IndexedGrounder(_GrounderBase):
    """Semi-naive, index-driven grounding engine (the default).

    Differences from :class:`NaiveGrounder` — all pure optimisations, the
    emitted program is identical:

    * **semi-naive chaining** — after the first round, rule bodies are joined
      only against the delta of facts derived in the previous round, using
      the graph's insertion-tick windows.  The fix-point check degenerates to
      an (empty) delta join instead of a full re-scan.
    * **raw index scans** — body atoms are matched via
      :meth:`~repro.kg.graph.TemporalKnowledgeGraph.iter_matching`, skipping
      the per-lookup sorting and term coercion of :meth:`find`.  Matches are
      re-sorted into the naive enumeration order once per rule and round,
      which is orders of magnitude cheaper than sorting every index lookup.
    * **atom-table cache and clause deduplication** — evidence membership is
      answered from a precomputed statement-key set, and duplicate ground
      clauses are prevented at the source: rule clauses are deduplicated by
      firing signature (rule, body keys, head key) and constraint clauses by
      violation signature (constraint, sorted fact keys), exactly as in the
      naive engine.
    """

    engine = "indexed"

    # ------------------------------------------------------------------ #
    def _chain_rules(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> int:
        evidence_keys = {fact.statement_key for fact in self.graph}
        seen_firings: set[tuple] = set()
        prior_added: set[int] = set()
        rounds_used = 0
        delta_since = 0  # round 1: the delta is the entire evidence graph
        body_plans = [_compile_body(rule.body) for rule in self.rules]
        for round_number in range(1, self.max_rounds + 1):
            round_mark = working.mark()
            new_facts: list[tuple[TemporalRule, tuple[TemporalFact, ...], TemporalFact]] = []
            for rule, plan in zip(self.rules, body_plans):
                matches: list[tuple[tuple[TemporalFact, ...], TemporalFact]] = []
                for substitution, body_facts in _delta_matches(plan, working, delta_since):
                    if not all(condition.holds(substitution) for condition in rule.conditions):
                        continue
                    head_interval = rule.head_interval_for(substitution)
                    if head_interval is None:
                        continue
                    head_fact = rule.head.instantiate(
                        substitution,
                        interval=head_interval,
                        confidence=rule.derived_confidence,
                    )
                    signature = (
                        rule.name,
                        tuple(fact.statement_key for fact in body_facts),
                        head_fact.statement_key,
                    )
                    if signature in seen_firings:
                        continue
                    seen_firings.add(signature)
                    matches.append((body_facts, head_fact))
                # Re-establish the naive engine's enumeration order (lexicographic
                # in the body facts) so both engines emit identical programs.
                matches.sort(key=lambda match: _body_sort_key(match[0]))
                new_facts.extend((rule, body, head) for body, head in matches)

            if not new_facts:
                break
            rounds_used = round_number
            for rule, body_facts, head_fact in new_facts:
                head_atom = program.add_atom(
                    head_fact,
                    is_evidence=head_fact.statement_key in evidence_keys,
                    derived_by=rule.name,
                )
                if (
                    not head_atom.is_evidence
                    and self.derived_prior > 0
                    and head_atom.index not in prior_added
                ):
                    prior_added.add(head_atom.index)
                    program.add_clause(
                        [(head_atom.index, True)],
                        weight=-self.derived_prior,
                        kind=ClauseKind.PRIOR,
                        origin=f"prior:{rule.name}",
                    )
                if head_fact not in working:
                    working.add(head_fact)
                body_atoms = [
                    program.add_atom(fact, is_evidence=fact.statement_key in evidence_keys)
                    for fact in body_facts
                ]
                literals = [(atom.index, False) for atom in body_atoms]
                literals.append((head_atom.index, True))
                program.add_clause(
                    literals,
                    weight=rule.weight,
                    kind=ClauseKind.RULE,
                    origin=rule.name,
                )
                result.firings.append(
                    RuleFiring(rule.name, tuple(body_facts), head_fact, rule.weight)
                )
            delta_since = round_mark
        return rounds_used

    # ------------------------------------------------------------------ #
    def _ground_constraints(
        self,
        program: GroundProgram,
        working: TemporalKnowledgeGraph,
        result: GroundingResult,
    ) -> None:
        evidence_keys = {fact.statement_key for fact in self.graph}
        for constraint in self.constraints:
            matches: list[tuple[tuple[TemporalFact, ...], tuple]] = []
            for substitution, facts in _full_matches(_compile_body(constraint.body), working):
                # Skip degenerate matches where the same fact fills two body
                # atoms (e.g. c2 matching a coach fact against itself).
                keys = tuple(fact.statement_key for fact in facts)
                if len(set(keys)) != len(keys):
                    continue
                if not constraint.violated_by(substitution):
                    continue
                matches.append((facts, tuple(sorted(keys))))
            # Sort before deduplicating: of two symmetric matches the naive
            # enumeration keeps the lexicographically first one.
            matches.sort(key=lambda match: _body_sort_key(match[0]))
            seen: set[tuple] = set()
            for facts, sorted_keys in matches:
                if sorted_keys in seen:
                    continue
                seen.add(sorted_keys)
                atoms = [
                    program.add_atom(fact, is_evidence=fact.statement_key in evidence_keys)
                    for fact in facts
                ]
                program.add_clause(
                    [(atom.index, False) for atom in atoms],
                    weight=constraint.weight,
                    kind=ClauseKind.CONSTRAINT,
                    origin=constraint.name,
                )
                result.violations.append(
                    ConstraintViolation(constraint.name, tuple(facts), constraint.weight)
                )


#: The default grounding engine.
Grounder = IndexedGrounder

#: Engine registry used by :func:`make_grounder`, the translator, and the CLI.
GROUNDING_ENGINES: dict[str, type[_GrounderBase]] = {
    "indexed": IndexedGrounder,
    "naive": NaiveGrounder,
}


def make_grounder(
    engine: str,
    graph: TemporalKnowledgeGraph,
    rules: Iterable[TemporalRule] = (),
    constraints: Iterable[TemporalConstraint] = (),
    **kwargs,
) -> _GrounderBase:
    """Instantiate a grounding engine by name ("indexed" or "naive")."""
    grounder_class = GROUNDING_ENGINES.get(engine)
    if grounder_class is None:
        raise GroundingError(
            f"unknown grounding engine {engine!r}; available: {sorted(GROUNDING_ENGINES)}"
        )
    return grounder_class(graph, rules=rules, constraints=constraints, **kwargs)


# --------------------------------------------------------------------------- #
# Convenience entry points
# --------------------------------------------------------------------------- #
def ground(
    graph: TemporalKnowledgeGraph,
    rules: Iterable[TemporalRule] = (),
    constraints: Iterable[TemporalConstraint] = (),
    max_rounds: int = 5,
    engine: str = "indexed",
) -> GroundingResult:
    """Ground ``graph`` with ``rules`` and ``constraints`` (full pipeline)."""
    return make_grounder(
        engine, graph, rules=rules, constraints=constraints, max_rounds=max_rounds
    ).ground()


def find_conflicts(
    graph: TemporalKnowledgeGraph,
    constraints: Iterable[TemporalConstraint],
    engine: str = "indexed",
) -> list[ConstraintViolation]:
    """Detect conflicts only (no rule chaining, no MAP).

    This is what the demo's statistics panel reports: the number of
    conflicting facts found in the loaded UTKG.
    """
    grounder = make_grounder(engine, graph, rules=(), constraints=constraints, derive_facts=False)
    return grounder.ground().violations
