"""Array-native compiled view of a ground program.

:class:`GroundProgramArrays` lowers a :class:`~repro.logic.ground.GroundProgram`
into the same interned-id / numpy-block layout the columnar grounding engine
uses (``kg/columnar.py``, ``logic/vectorized.py``), so MAP solver kernels can
stay vectorized end-to-end instead of walking per-clause Python objects:

* a clause→literal CSR matrix (``clause_offsets`` / ``literal_atoms`` /
  ``literal_signs``) plus the flat ``literal_clauses`` inverse, giving both
  "literals of clause c" slices and one-shot gathers over all literals;
* per-clause ``weights`` / ``is_hard`` vectors for masked objective sums;
* a lazily-built atom→occurrence CSR (``occurrence_offsets`` /
  ``occurrence_clauses`` / ``occurrence_signs``) for WalkSAT flip deltas.

Float contract: :meth:`objective` is **bit-identical** to
:meth:`GroundProgram.objective`.  The satisfied mask is computed vectorized,
but the selected soft weights are summed left-to-right in clause order over
the original Python floats — numpy's pairwise summation would produce a
different (better-conditioned, but unequal) float, and the exact solvers,
the decomposition equivalence suite, and the session cache all compare
objectives for equality across kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import GroundingError
from .ground import GroundProgram


def ragged_slices(offsets: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Flat positions of CSR rows ``indices``: concat of ``range(off[i], off[i+1])``.

    The standard trick for gathering many variable-length CSR rows without a
    Python loop: materialise one ``arange`` over the total length and shift
    each segment to its row's start offset.
    """
    indices = np.asarray(indices, dtype=np.int64)
    starts = offsets[indices]
    lengths = offsets[indices + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # positions = arange(total) rebased so each segment begins at its start.
    seg_begin = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return np.arange(total, dtype=np.int64) + np.repeat(starts - seg_begin, lengths)


def ordered_weight_sum(weights: Sequence[Optional[float]], indices: np.ndarray) -> float:
    """Left-to-right sum of ``weights[i]`` for ascending ``indices``.

    Matches the sequential ``sum()`` in :meth:`GroundProgram.objective`
    float-for-float; do not replace with ``np.sum`` (pairwise summation).
    """
    return float(sum(weights[int(i)] for i in indices))


def soft_objective(
    literal_atoms: Sequence[int],
    literal_signs: Sequence[bool],
    literal_clauses: Sequence[int],
    weights: Sequence[float],
    assignment: Sequence[bool],
) -> float:
    """Satisfied-weight sum over flat soft-clause literal blocks.

    The masked-dot-product evaluation of :meth:`GroundProgramArrays.objective`
    for callers that already hold flat literal columns (the session cache's
    objective walk) without a materialised program: one vectorized satisfied
    mask, then the ordered left-to-right weight sum that keeps the result
    bit-identical to the per-clause object walk.
    """
    num_clauses = len(weights)
    if num_clauses == 0:
        return 0.0
    values = np.asarray(assignment, dtype=bool)
    atoms = np.asarray(literal_atoms, dtype=np.int64)
    signs = np.asarray(literal_signs, dtype=bool)
    clauses = np.asarray(literal_clauses, dtype=np.int64)
    true_literals = values[atoms] == signs
    counts = np.bincount(clauses, weights=true_literals.astype(np.float64), minlength=num_clauses)
    return ordered_weight_sum(weights, np.flatnonzero(counts > 0))


@dataclass
class GroundProgramArrays:
    """Columnar (CSR) view of a ground program for array solver kernels."""

    num_atoms: int
    #: CSR row pointers: literals of clause ``c`` live at
    #: ``literal_*[clause_offsets[c]:clause_offsets[c+1]]``.
    clause_offsets: np.ndarray
    literal_atoms: np.ndarray
    #: True for a positive literal (satisfied when the atom is true).
    literal_signs: np.ndarray
    #: Inverse map: owning clause of each flat literal.
    literal_clauses: np.ndarray
    #: Soft weights, ``0.0`` where hard (mask with ``is_hard``).
    weights: np.ndarray
    is_hard: np.ndarray
    #: Original per-clause Python weights (``None`` for hard), in clause
    #: order — the bit-identity source for :meth:`objective`.
    weight_list: list[Optional[float]]
    #: Originating program, kept for atom metadata (facts, ``derived_by``)
    #: and for solvers that fall back to object-path evaluation.
    program: Optional[GroundProgram] = None

    _occurrence: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False
    )
    _components: Optional[tuple[np.ndarray, np.ndarray]] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_program(cls, program: GroundProgram) -> "GroundProgramArrays":
        """Lower an object-graph program into the CSR layout.

        Clause order, literal order within a clause, and weights are
        preserved exactly, so every array evaluation can be mapped back to
        the object path index-for-index.
        """
        num_clauses = len(program.clauses)
        lengths = np.fromiter(
            (len(clause.literals) for clause in program.clauses),
            dtype=np.int64,
            count=num_clauses,
        )
        clause_offsets = np.zeros(num_clauses + 1, dtype=np.int64)
        np.cumsum(lengths, out=clause_offsets[1:])
        total = int(clause_offsets[-1])

        literal_atoms = np.empty(total, dtype=np.int64)
        literal_signs = np.empty(total, dtype=bool)
        cursor = 0
        for clause in program.clauses:
            for index, positive in clause.literals:
                literal_atoms[cursor] = index
                literal_signs[cursor] = positive
                cursor += 1
        literal_clauses = np.repeat(np.arange(num_clauses, dtype=np.int64), lengths)

        weight_list = [clause.weight for clause in program.clauses]
        is_hard = np.fromiter(
            (weight is None for weight in weight_list), dtype=bool, count=num_clauses
        )
        weights = np.fromiter(
            (0.0 if weight is None else weight for weight in weight_list),
            dtype=np.float64,
            count=num_clauses,
        )
        return cls(
            num_atoms=len(program.atoms),
            clause_offsets=clause_offsets,
            literal_atoms=literal_atoms,
            literal_signs=literal_signs,
            literal_clauses=literal_clauses,
            weights=weights,
            is_hard=is_hard,
            weight_list=weight_list,
            program=program,
        )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def num_clauses(self) -> int:
        return len(self.weight_list)

    @property
    def num_literals(self) -> int:
        return int(self.clause_offsets[-1])

    @property
    def occurrence(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Atom→occurrence CSR ``(offsets, clauses, signs)``.

        Row ``a`` lists, in clause order (stable sort), every clause that
        mentions atom ``a`` together with the literal's sign.  Built lazily —
        only the WalkSAT kernel needs it.
        """
        if self._occurrence is None:
            order = np.argsort(self.literal_atoms, kind="stable")
            counts = np.bincount(self.literal_atoms, minlength=self.num_atoms)
            offsets = np.zeros(self.num_atoms + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            self._occurrence = (
                offsets,
                self.literal_clauses[order],
                self.literal_signs[order],
            )
        return self._occurrence

    @property
    def components(self) -> tuple[np.ndarray, np.ndarray]:
        """Connected components of the clause–atom interaction graph, as
        ``(atom_labels, clause_labels)`` with contiguous component ids.

        Two atoms share a component when some chain of clauses links them
        — the same factorisation :func:`repro.logic.decompose` computes over
        objects.  Built lazily with a union–find over the flat literal
        arrays; the batched WalkSAT kernel uses it to schedule conflict-free
        simultaneous moves (at most one clause repair per component).
        """
        if self._components is None:
            parent = np.arange(self.num_atoms, dtype=np.int64)

            def find(node: int) -> int:
                root = node
                while parent[root] != root:
                    root = parent[root]
                while parent[node] != root:  # path compression
                    parent[node], node = root, int(parent[node])
                return root

            atoms = self.literal_atoms
            clauses = self.literal_clauses
            # Chain-union adjacent literals of the same clause: enough to
            # connect every atom a clause mentions.
            for position in range(1, atoms.size):
                if clauses[position] == clauses[position - 1]:
                    left, right = find(int(atoms[position - 1])), find(int(atoms[position]))
                    if left != right:
                        parent[right] = left
            roots = np.fromiter(
                (find(index) for index in range(self.num_atoms)),
                dtype=np.int64,
                count=self.num_atoms,
            )
            _, atom_labels = np.unique(roots, return_inverse=True)
            if self.num_clauses:
                clause_labels = atom_labels[self.literal_atoms[self.clause_offsets[:-1]]]
            else:
                clause_labels = np.empty(0, dtype=np.int64)
            self._components = (atom_labels, clause_labels)
        return self._components

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _as_assignment(self, assignment: Sequence[bool]) -> np.ndarray:
        values = np.asarray(assignment, dtype=bool)
        if values.shape != (self.num_atoms,):
            raise GroundingError(f"assignment has {values.size} values for {self.num_atoms} atoms")
        return values

    def satisfied_counts(self, assignment: Sequence[bool]) -> np.ndarray:
        """Per-clause count of true literals (float64, from one bincount)."""
        values = self._as_assignment(assignment)
        true_literals = values[self.literal_atoms] == self.literal_signs
        return np.bincount(
            self.literal_clauses,
            weights=true_literals.astype(np.float64),
            minlength=self.num_clauses,
        )

    def satisfied_mask(self, assignment: Sequence[bool]) -> np.ndarray:
        """Boolean mask: clause satisfied under ``assignment``."""
        return self.satisfied_counts(assignment) > 0

    def objective(self, assignment: Sequence[bool]) -> float:
        """Sum of satisfied soft-clause weights — bit-identical to the
        object path (see module docstring for why the final sum is ordered)."""
        mask = self.satisfied_mask(assignment)
        soft_satisfied = np.flatnonzero(mask & ~self.is_hard)
        return ordered_weight_sum(self.weight_list, soft_satisfied)

    def hard_violation_indices(self, assignment: Sequence[bool]) -> np.ndarray:
        """Indices of violated hard clauses, ascending (= clause order, the
        same order :meth:`GroundProgram.hard_violations` returns them in)."""
        mask = self.satisfied_mask(assignment)
        return np.flatnonzero(self.is_hard & ~mask)

    def is_feasible(self, assignment: Sequence[bool]) -> bool:
        return self.hard_violation_indices(assignment).size == 0

    def evaluate(self, assignment: Sequence[bool]) -> tuple[float, int]:
        """One-shot ``(objective, #hard violations)`` from a single pass."""
        mask = self.satisfied_mask(assignment)
        soft_satisfied = np.flatnonzero(mask & ~self.is_hard)
        violations = int(np.count_nonzero(self.is_hard & ~mask))
        return ordered_weight_sum(self.weight_list, soft_satisfied), violations

    def clause_literals(self, clause_index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(atoms, signs)`` of one clause, as array slices (no copies)."""
        start = int(self.clause_offsets[clause_index])
        stop = int(self.clause_offsets[clause_index + 1])
        return self.literal_atoms[start:stop], self.literal_signs[start:stop]

    def __repr__(self) -> str:
        return (
            f"GroundProgramArrays(atoms={self.num_atoms}, "
            f"clauses={self.num_clauses}, literals={self.num_literals})"
        )
