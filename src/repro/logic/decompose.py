"""Connected-component decomposition of ground programs.

MAP inference over a ground program factorises over the connected components
of its *interaction graph*: ground atoms are the vertices, and every ground
clause links all atoms it mentions.  Two atoms in different components never
co-occur in a clause, so the MaxSAT objective is a sum of independent
per-component objectives and the hard constraints never couple components.
Solving each component separately and taking the union of the per-component
MAP states is therefore exact — and on the paper's workloads (FootballDB,
Wikidata) the conflict graph splits into thousands of small components,
because temporal constraints only couple facts that share an entity and
overlap in time.

This module provides the three pieces of that route:

* :func:`interaction_graph` — the atom adjacency structure;
* :func:`decompose` — connected components as solver-ready sub-programs
  (a :class:`Decomposition` of :class:`Component` objects);
* :meth:`Decomposition.merge` — reassembly of per-component
  ``MAPSolution`` objects into one global solution.

Atoms that appear in no clause at all ("unconstrained" atoms) belong to no
component; the merge step closes them by the sign of their log-odds weight
(keep exactly the facts that are more likely true than false), which is the
MAP-optimal choice for an atom the objective never mentions.

The :class:`repro.solvers.decomposed.DecomposedSolver` wrapper drives this
module from both solver families, sequentially or via a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..errors import SolverError
from .ground import GroundProgram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (solvers ← logic)
    from ..solvers.base import MAPSolution


@dataclass(frozen=True, slots=True)
class Component:
    """One connected component of the interaction graph, as a sub-program.

    Attributes
    ----------
    index:
        Position of this component in the decomposition (components are
        ordered by their smallest global atom index).
    atom_indices:
        Global atom indexes belonging to this component, ascending.  Local
        atom ``i`` of :attr:`program` is global atom ``atom_indices[i]``.
    clause_indices:
        Global clause indexes of the clauses this component owns, ascending.
    program:
        The reindexed, self-contained sub-program for this component.
    """

    index: int
    atom_indices: tuple[int, ...]
    clause_indices: tuple[int, ...]
    program: GroundProgram

    @property
    def num_atoms(self) -> int:
        return len(self.atom_indices)

    @property
    def num_clauses(self) -> int:
        return len(self.clause_indices)

    def __repr__(self) -> str:
        return (
            f"Component(index={self.index}, atoms={self.num_atoms}, " f"clauses={self.num_clauses})"
        )


@dataclass(frozen=True)
class Decomposition:
    """A ground program split into independent components.

    ``components`` plus ``unconstrained`` partition the atom set of
    ``program``; the clause sets of the components partition its clauses.
    """

    program: GroundProgram
    components: tuple[Component, ...]
    unconstrained: tuple[int, ...]

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def is_trivial(self) -> bool:
        """True when decomposing gained nothing (at most one component)."""
        return len(self.components) <= 1 and not self.unconstrained

    def component_sizes(self) -> list[int]:
        """Atom counts per component, descending."""
        return sorted((component.num_atoms for component in self.components), reverse=True)

    def summary(self) -> dict[str, int]:
        """Size statistics used by reports and the decomposition benchmark."""
        sizes = self.component_sizes()
        return {
            "atoms": self.program.num_atoms,
            "clauses": self.program.num_clauses,
            "components": len(self.components),
            "largest_component": sizes[0] if sizes else 0,
            "singleton_components": sum(1 for size in sizes if size == 1),
            "unconstrained_atoms": len(self.unconstrained),
        }

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #
    def merge(self, solutions: Sequence["MAPSolution"]) -> "MAPSolution":
        """Reassemble per-component solutions into one global MAP solution.

        The merged assignment is the union of the component assignments;
        unconstrained atoms are closed by the sign of their log-odds weight.
        The objective is the sum of the component objectives — evaluated in
        one pass over the full program so the float is summed in the same
        clause order a monolithic solver uses (bit-identical results for
        exact back-ends).  Stats are aggregated: iterations sum, runtime is
        the sum of component solve times, and ``optimal`` holds only when
        every component was solved to optimality.
        """
        from ..solvers.base import MAPSolution, SolverStats

        if len(solutions) != len(self.components):
            raise SolverError(
                f"merge got {len(solutions)} solutions for " f"{len(self.components)} components"
            )
        assignment = [False] * self.program.num_atoms
        truth_values = [0.0] * self.program.num_atoms
        for component, solution in zip(self.components, solutions):
            if len(solution.assignment) != component.num_atoms:
                raise SolverError(
                    f"component {component.index} solution has "
                    f"{len(solution.assignment)} values for {component.num_atoms} atoms"
                )
            soft = solution.truth_values or tuple(
                1.0 if value else 0.0 for value in solution.assignment
            )
            for local, global_index in enumerate(component.atom_indices):
                assignment[global_index] = solution.assignment[local]
                truth_values[global_index] = soft[local]
        for global_index in self.unconstrained:
            keep = self.program.atoms[global_index].fact.log_weight > 0
            assignment[global_index] = keep
            truth_values[global_index] = 1.0 if keep else 0.0

        objective = self.program.objective(assignment)
        inner = solutions[0].stats.solver if solutions else "none"
        stats = SolverStats(
            solver=f"decomposed({inner})",
            runtime_seconds=sum(s.stats.runtime_seconds for s in solutions),
            iterations=sum(s.stats.iterations for s in solutions),
            atoms=self.program.num_atoms,
            clauses=self.program.num_clauses,
            optimal=all(s.stats.optimal for s in solutions) if solutions else True,
            extra=(
                ("components", float(len(self.components))),
                ("largest_component", float(max(self.component_sizes(), default=0))),
                ("unconstrained_atoms", float(len(self.unconstrained))),
            ),
        )
        return MAPSolution(
            assignment=tuple(assignment),
            objective=objective,
            stats=stats,
            truth_values=tuple(truth_values),
        )


# --------------------------------------------------------------------------- #
# Interaction graph and component extraction
# --------------------------------------------------------------------------- #
def interaction_graph(program: GroundProgram) -> dict[int, set[int]]:
    """Atom adjacency of ``program``: atoms are linked when they co-occur in
    a ground clause (rule, constraint, evidence, or prior).

    Every atom gets an entry, so isolated atoms show up with an empty
    neighbour set.  The graph is symmetric by construction.
    """
    adjacency: dict[int, set[int]] = {index: set() for index in range(program.num_atoms)}
    for clause in program.clauses:
        members = {index for index, _ in clause.literals}
        for index in members:
            adjacency[index] |= members - {index}
    return adjacency


class _UnionFind:
    """Path-halving union-find over atom indexes."""

    __slots__ = ("parent",)

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, index: int) -> int:
        parent = self.parent
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(self, first: int, second: int) -> None:
        root_first, root_second = self.find(first), self.find(second)
        if root_first != root_second:
            self.parent[root_first] = root_second


def decompose(program: GroundProgram) -> Decomposition:
    """Split ``program`` into the connected components of its interaction graph.

    Components are ordered by their smallest global atom index; inside a
    component, atoms and clauses keep their relative program order, so the
    sub-programs are deterministic and (per component) content-identical to
    the monolithic program's slice.
    """
    num_atoms = program.num_atoms
    union_find = _UnionFind(num_atoms)
    in_clause = [False] * num_atoms
    for clause in program.clauses:
        first = clause.literals[0][0]
        in_clause[first] = True
        for index, _ in clause.literals[1:]:
            in_clause[index] = True
            union_find.union(first, index)

    # Group constrained atoms by root, preserving ascending atom order.
    members: dict[int, list[int]] = {}
    unconstrained: list[int] = []
    for index in range(num_atoms):
        if not in_clause[index]:
            unconstrained.append(index)
            continue
        members.setdefault(union_find.find(index), []).append(index)

    # Components ordered by smallest atom index (the dict preserves first-seen
    # order, which is exactly that because atoms are scanned ascending).
    clause_groups: dict[int, list[int]] = {root: [] for root in members}
    for clause_index, clause in enumerate(program.clauses):
        clause_groups[union_find.find(clause.literals[0][0])].append(clause_index)

    components = []
    for component_index, (root, atom_indices) in enumerate(members.items()):
        local_index = {global_index: local for local, global_index in enumerate(atom_indices)}
        sub = GroundProgram()
        for global_index in atom_indices:
            atom = program.atoms[global_index]
            sub.add_atom(atom.fact, atom.is_evidence, atom.derived_by)
        clause_indices = clause_groups[root]
        for clause_index in clause_indices:
            clause = program.clauses[clause_index]
            sub.add_clause(
                [(local_index[index], positive) for index, positive in clause.literals],
                clause.weight,
                clause.kind,
                clause.origin,
            )
        components.append(
            Component(
                index=component_index,
                atom_indices=tuple(atom_indices),
                clause_indices=tuple(clause_indices),
                program=sub,
            )
        )
    return Decomposition(
        program=program,
        components=tuple(components),
        unconstrained=tuple(unconstrained),
    )
