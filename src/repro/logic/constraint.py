"""Temporal constraints.

TeCoRe uses constraints — expressed in a Datalog-based language — to detect
conflicts in UTKGs.  The paper distinguishes three kinds (Section 2):

* **inclusion dependencies with inequalities**,
* **(in)equality-generating dependencies**,
* **disjointness constraints**,

all of which become hard (deterministic) or soft (uncertain) formulas in the
solver programs.  A constraint here is a *denial-style* formula::

    Body ∧ [BodyCondition] → HeadCondition        (weight w or ∞)

Grounding the body against the graph yields fact tuples; when the body
condition holds and the head condition fails, those facts form a conflict —
they cannot all be kept in the most probable consistent KG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..errors import UnsafeRuleError
from .atom import ConditionAtom, QuadAtom
from .substitution import Substitution
from .terms import Variable


class ConstraintKind(str, Enum):
    """The constraint taxonomy of the paper."""

    INCLUSION_DEPENDENCY = "inclusion-dependency"
    EQUALITY_GENERATING = "equality-generating"
    DISJOINTNESS = "disjointness"
    DENIAL = "denial"


@dataclass(frozen=True, slots=True)
class TemporalConstraint:
    """A (hard or soft) temporal constraint over a UTKG.

    Attributes
    ----------
    name:
        Identifier used in reports (``c1``, ``c2`` ...).
    body:
        Conjunction of quad atoms.
    body_conditions:
        Conditions that make a body match *applicable* (e.g. ``y ≠ z`` in c2,
        ``overlap(t, t')`` in c3).
    head_conditions:
        Conditions that must hold for the match to be *consistent* (e.g.
        ``disjoint(t, t')`` in c2, ``y = z`` in c3, ``before(t, t')`` in c1).
        An empty head denotes a pure denial constraint: any applicable match
        is a conflict.
    weight:
        ``None`` for hard constraints (weight ∞ in the paper), a positive
        float for soft constraints.
    kind:
        The paper's constraint taxonomy, used by expressivity checks and
        reporting.
    """

    name: str
    body: tuple[QuadAtom, ...]
    body_conditions: tuple[ConditionAtom, ...] = field(default_factory=tuple)
    head_conditions: tuple[ConditionAtom, ...] = field(default_factory=tuple)
    weight: Optional[float] = None
    kind: ConstraintKind = ConstraintKind.DENIAL
    description: str = ""

    def __post_init__(self) -> None:
        if not self.body:
            raise UnsafeRuleError(f"constraint {self.name}: body must contain at least one atom")
        if len(self.body) < 2 and not self.head_conditions and not self.body_conditions:
            # A single-atom pure denial would simply delete every fact of a
            # predicate; almost certainly a user error.
            raise UnsafeRuleError(
                f"constraint {self.name}: a single-atom denial with no conditions "
                "would reject every matching fact"
            )
        self._validate_safety()

    def _validate_safety(self) -> None:
        body_vars: set[Variable] = set()
        for atom in self.body:
            body_vars |= atom.variables()
        for group, label in (
            (self.body_conditions, "body condition"),
            (self.head_conditions, "head condition"),
        ):
            for condition in group:
                unsafe = condition.variables() - body_vars
                if unsafe:
                    names = ", ".join(sorted(variable.name for variable in unsafe))
                    raise UnsafeRuleError(
                        f"constraint {self.name}: {label} variable(s) {names} "
                        "do not appear in the body"
                    )

    # ------------------------------------------------------------------ #
    # Introspection / evaluation
    # ------------------------------------------------------------------ #
    @property
    def is_hard(self) -> bool:
        """True when the constraint can never be violated in the MAP state."""
        return self.weight is None

    def predicates(self) -> set[str]:
        """Constant predicates used by the body (grounding index)."""
        names: set[str] = set()
        for atom in self.body:
            if not isinstance(atom.predicate, Variable):
                names.add(atom.predicate.value)
        return names

    def applicable(self, substitution: Substitution) -> bool:
        """True when the body conditions hold for this body match."""
        return all(condition.holds(substitution) for condition in self.body_conditions)

    def satisfied(self, substitution: Substitution) -> bool:
        """True when the head conditions hold (i.e. the match is consistent)."""
        if not self.head_conditions:
            return False
        return all(condition.holds(substitution) for condition in self.head_conditions)

    def violated_by(self, substitution: Substitution) -> bool:
        """True when this body match constitutes a conflict."""
        return self.applicable(substitution) and not self.satisfied(substitution)

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.body)
        if self.body_conditions:
            body += " ∧ " + " ∧ ".join(str(condition) for condition in self.body_conditions)
        head = " ∧ ".join(str(condition) for condition in self.head_conditions) or "⊥"
        weight = "∞" if self.weight is None else f"{self.weight:g}"
        return f"{self.name}: {body} → {head}  [w={weight}]"
