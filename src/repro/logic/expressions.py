"""Arithmetic expressions usable in rule and constraint conditions.

The paper's rules embed arithmetic predicates such as ``t' - t < 20`` or
``age > 40``.  This module provides a tiny expression AST evaluated against a
:class:`~repro.logic.substitution.Substitution`:

* ``Number(20)`` — a numeric constant;
* ``IntervalStart(t)`` / ``IntervalEnd(t)`` / ``IntervalDuration(t)`` —
  accessors over a bound interval variable;
* ``TermValue(y)`` — the numeric value of a bound entity variable whose value
  is a numeric literal (e.g. a birth year used as an object);
* ``BinaryOp('-', a, b)`` — arithmetic combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import LogicError
from ..kg import IRI, Literal
from ..temporal import TimeInterval
from .substitution import Substitution
from .terms import Variable


class Expression:
    """Base class for arithmetic expressions (evaluate against a substitution)."""

    def evaluate(self, substitution: Substitution) -> float:
        raise NotImplementedError

    def variables(self) -> set[Variable]:
        return set()


@dataclass(frozen=True, slots=True)
class Number(Expression):
    """A numeric constant."""

    value: float

    def evaluate(self, substitution: Substitution) -> float:
        return float(self.value)

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True, slots=True)
class IntervalStart(Expression):
    """``start(t)`` — the first time point of a bound interval variable."""

    variable: Variable

    def evaluate(self, substitution: Substitution) -> float:
        interval = substitution.interval(self.variable)
        if interval is None:
            raise LogicError(f"interval variable {self.variable} is unbound")
        return float(interval.start)

    def variables(self) -> set[Variable]:
        return {self.variable}

    def __str__(self) -> str:
        return f"start({self.variable.name})"


@dataclass(frozen=True, slots=True)
class IntervalEnd(Expression):
    """``end(t)`` — the last time point of a bound interval variable."""

    variable: Variable

    def evaluate(self, substitution: Substitution) -> float:
        interval = substitution.interval(self.variable)
        if interval is None:
            raise LogicError(f"interval variable {self.variable} is unbound")
        return float(interval.end)

    def variables(self) -> set[Variable]:
        return {self.variable}

    def __str__(self) -> str:
        return f"end({self.variable.name})"


@dataclass(frozen=True, slots=True)
class IntervalDuration(Expression):
    """``duration(t)`` — number of time points covered by a bound interval."""

    variable: Variable

    def evaluate(self, substitution: Substitution) -> float:
        interval = substitution.interval(self.variable)
        if interval is None:
            raise LogicError(f"interval variable {self.variable} is unbound")
        return float(interval.duration)

    def variables(self) -> set[Variable]:
        return {self.variable}

    def __str__(self) -> str:
        return f"duration({self.variable.name})"


@dataclass(frozen=True, slots=True)
class TermValue(Expression):
    """The numeric interpretation of a bound entity variable.

    Numeric literals evaluate to their value; intervals evaluate to their
    start point (this makes the paper's loose ``t' - t`` notation work when a
    year literal and an interval are mixed); IRIs whose local name is numeric
    evaluate to that number.
    """

    variable: Variable

    def evaluate(self, substitution: Substitution) -> float:
        value = substitution.get(self.variable)
        if value is None:
            raise LogicError(f"variable {self.variable} is unbound")
        if isinstance(value, TimeInterval):
            return float(value.start)
        if isinstance(value, Literal):
            try:
                return float(value.value)
            except ValueError as exc:
                raise LogicError(
                    f"literal {value} bound to {self.variable} is not numeric"
                ) from exc
        if isinstance(value, IRI):
            try:
                return float(value.local_name)
            except ValueError as exc:
                raise LogicError(f"IRI {value} bound to {self.variable} is not numeric") from exc
        raise LogicError(f"cannot interpret {value!r} numerically")

    def variables(self) -> set[Variable]:
        return {self.variable}

    def __str__(self) -> str:
        return self.variable.name


_OPERATIONS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True, slots=True)
class BinaryOp(Expression):
    """Arithmetic combination of two sub-expressions."""

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _OPERATIONS:
            raise LogicError(f"unknown arithmetic operator {self.operator!r}")

    def evaluate(self, substitution: Substitution) -> float:
        left = self.left.evaluate(substitution)
        right = self.right.evaluate(substitution)
        if self.operator == "/" and right == 0:
            raise LogicError("division by zero in rule condition")
        return _OPERATIONS[self.operator](left, right)

    def variables(self) -> set[Variable]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


#: Anything accepted where an expression is expected by the builder helpers.
ExpressionLike = Union[Expression, Variable, int, float]


def as_expression(value: ExpressionLike) -> Expression:
    """Coerce numbers and variables into expressions (variables → TermValue)."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, Variable):
        return TermValue(value)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Number(float(value))
    raise LogicError(f"cannot interpret {value!r} as an arithmetic expression")
