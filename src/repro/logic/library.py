"""Predefined rules and constraints.

The demo ships with "a set of predefined constraints and inference rules" the
audience can modify.  This module provides them:

* the paper's running-example rules **f1–f3** (Figure 4) and constraints
  **c1–c3** (Figure 6) for the sports domain;
* a *sports pack* and a *biography pack* used by the dataset generators and
  benchmarks;
* small helpers to look packs up by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import LogicError
from .builder import (
    ConstraintBuilder,
    RuleBuilder,
    before,
    compare,
    disjoint,
    equal,
    intersect,
    not_equal,
    overlaps,
    quad,
)
from .constraint import ConstraintKind, TemporalConstraint
from .expressions import IntervalStart, Number
from .rule import TemporalRule
from .terms import Variable


# --------------------------------------------------------------------------- #
# The paper's running example (Figures 4 and 6)
# --------------------------------------------------------------------------- #
def rule_f1() -> TemporalRule:
    """f1: a footballer who plays for a club works for that club (w = 2.5)."""
    return (
        RuleBuilder("f1")
        .body(quad("x", "playsFor", "y", "t"))
        .head(quad("x", "worksFor", "y", "t"))
        .weight(2.5)
        .build()
    )


def rule_f2() -> TemporalRule:
    """f2: working for a club located in a city implies living there (w = 1.6).

    The head interval is the intersection ``t ∩ t'`` of the employment and
    location intervals, exactly as in the paper.
    """
    return (
        RuleBuilder("f2")
        .body(
            quad("x", "worksFor", "y", "t"),
            quad("y", "locatedIn", "z", "t2"),
        )
        .when(overlaps("t", "t2"))
        .head(quad("x", "livesIn", "z", "t"), interval=intersect("t", "t2"))
        .weight(1.6)
        .build()
    )


def rule_f3() -> TemporalRule:
    """f3: a footballer younger than 20 when playing is a teen player (w = 2.9).

    The paper writes the age condition as ``t' − t < 20``; with ``t`` the
    playsFor interval and ``t'`` the birthDate interval the discrete reading
    is ``start(t) − start(t') < 20``.
    """
    return (
        RuleBuilder("f3")
        .body(
            quad("x", "playsFor", "y", "t"),
            quad("x", "birthDate", "z", "t2"),
        )
.when(compare(IntervalStart(Variable("t")), "<", _plus(IntervalStart(Variable("t2")), 20)))
        .head(quad("x", "type", "TeenPlayer", "t"))
        .weight(2.9)
        .build()
    )


def _plus(expression, amount: float):
    from .expressions import BinaryOp

    return BinaryOp("+", expression, Number(amount))


def constraint_c1() -> TemporalConstraint:
    """c1: a person must be born before she dies (hard)."""
    return (
        ConstraintBuilder("c1")
        .body(
            quad("x", "birthDate", "y", "t"),
            quad("x", "deathDate", "z", "t2"),
        )
        .require(before("t", "t2"))
        .description("a person must be born before she dies")
        .kind(ConstraintKind.INCLUSION_DEPENDENCY)
        .hard()
        .build()
    )


def constraint_c2(weight: float | None = None) -> TemporalConstraint:
    """c2: a person cannot coach two clubs at the same time (hard by default)."""
    builder = (
        ConstraintBuilder("c2")
        .body(
            quad("x", "coach", "y", "t"),
            quad("x", "coach", "z", "t2"),
        )
        .when(not_equal("y", "z"))
        .require(disjoint("t", "t2"))
        .description("a person cannot coach two clubs at the same time")
        .kind(ConstraintKind.DISJOINTNESS)
    )
    return builder.weight(weight).build() if weight is not None else builder.hard().build()


def constraint_c3() -> TemporalConstraint:
    """c3: a person cannot be born in two different cities (hard)."""
    return (
        ConstraintBuilder("c3")
        .body(
            quad("x", "bornIn", "y", "t"),
            quad("x", "bornIn", "z", "t2"),
        )
        .when(overlaps("t", "t2"))
        .require(equal("y", "z"))
        .description("a person cannot be born in two different cities")
        .kind(ConstraintKind.EQUALITY_GENERATING)
        .hard()
        .build()
    )


def running_example_rules() -> list[TemporalRule]:
    """The paper's Figure 4 rule set."""
    return [rule_f1(), rule_f2(), rule_f3()]


def running_example_constraints() -> list[TemporalConstraint]:
    """The paper's Figure 6 constraint set."""
    return [constraint_c1(), constraint_c2(), constraint_c3()]


# --------------------------------------------------------------------------- #
# Domain packs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConstraintPack:
    """A named bundle of rules and constraints for one domain."""

    name: str
    description: str
    rules: tuple[TemporalRule, ...] = field(default_factory=tuple)
    constraints: tuple[TemporalConstraint, ...] = field(default_factory=tuple)


def sports_pack() -> ConstraintPack:
    """Rules and constraints for football career data (FootballDB-style).

    Includes the running example plus constraints the FootballDB experiments
    rely on: one team per player at any time, playing only after being born,
    and agreement on the birth date.
    """
    plays_one_team = (
        ConstraintBuilder("onePlaysFor")
        .body(quad("x", "playsFor", "y", "t"), quad("x", "playsFor", "z", "t2"))
        .when(not_equal("y", "z"))
        .require(disjoint("t", "t2"))
        .description("a player plays for one team at a time")
        .kind(ConstraintKind.DISJOINTNESS)
        .hard()
        .build()
    )
    # birthDate facts carry the interval [birthYear, domainEnd] (the person
    # exists from birth onwards), so "born before playing" compares interval
    # *start points* rather than requiring the Allen relation before.
    born_before_playing = (
        ConstraintBuilder("bornBeforePlaying")
        .body(quad("x", "birthDate", "y", "t"), quad("x", "playsFor", "z", "t2"))
        .require(compare(IntervalStart(Variable("t")), "<", IntervalStart(Variable("t2"))))
        .description("a player must be born before playing for a team")
        .kind(ConstraintKind.INCLUSION_DEPENDENCY)
        .hard()
        .build()
    )
    one_birth_date = (
        ConstraintBuilder("oneBirthDate")
        .body(quad("x", "birthDate", "y", "t"), quad("x", "birthDate", "z", "t2"))
        .when(not_equal("y", "z"))
        .require(disjoint("t", "t2"))
        .description("conflicting birth dates may not overlap")
        .kind(ConstraintKind.EQUALITY_GENERATING)
        .hard()
        .build()
    )
    return ConstraintPack(
        name="sports",
        description="football careers: playsFor/coach/birthDate integrity",
        rules=tuple(running_example_rules()),
        constraints=(
            *running_example_constraints(),
            plays_one_team,
            born_before_playing,
            one_birth_date,
        ),
    )


def biography_pack() -> ConstraintPack:
    """Rules and constraints for Wikidata-style biographical relations."""
    educated_after_birth = (
        ConstraintBuilder("educatedAfterBirth")
        .body(quad("x", "birthDate", "y", "t"), quad("x", "educatedAt", "z", "t2"))
        .require(compare(IntervalStart(Variable("t")), "<", IntervalStart(Variable("t2"))))
        .description("education starts after birth")
        .kind(ConstraintKind.INCLUSION_DEPENDENCY)
        .hard()
        .build()
    )
    one_spouse = (
        ConstraintBuilder("oneSpouseAtATime")
        .body(quad("x", "spouse", "y", "t"), quad("x", "spouse", "z", "t2"))
        .when(not_equal("y", "z"))
        .require(disjoint("t", "t2"))
        .description("at most one spouse at a time")
        .kind(ConstraintKind.DISJOINTNESS)
        .hard()
        .build()
    )
    one_employer = (
        ConstraintBuilder("oneMemberOf")
        .body(quad("x", "memberOf", "y", "t"), quad("x", "memberOf", "z", "t2"))
        .when(not_equal("y", "z"))
        .require(disjoint("t", "t2"))
        .description("membership intervals of different organisations may not overlap")
        .kind(ConstraintKind.DISJOINTNESS)
        .soft(1.5)
        .build()
    )
    occupation_after_birth = (
        ConstraintBuilder("occupationAfterBirth")
        .body(quad("x", "birthDate", "y", "t"), quad("x", "occupation", "z", "t2"))
        .require(compare(IntervalStart(Variable("t")), "<", IntervalStart(Variable("t2"))))
        .description("an occupation is held after birth")
        .kind(ConstraintKind.INCLUSION_DEPENDENCY)
        .hard()
        .build()
    )
    member_implies_affiliated = (
        RuleBuilder("memberAffiliation")
        .body(quad("x", "memberOf", "y", "t"))
        .head(quad("x", "affiliatedWith", "y", "t"))
        .weight(2.0)
        .build()
    )
    return ConstraintPack(
        name="biography",
        description="Wikidata-style biographies: spouse/educatedAt/memberOf/occupation",
        rules=(member_implies_affiliated,),
        constraints=(
            educated_after_birth,
            one_spouse,
            one_employer,
            occupation_after_birth,
        ),
    )


def running_example_pack() -> ConstraintPack:
    """Exactly the paper's Figures 4 and 6 (no extras)."""
    return ConstraintPack(
        name="running-example",
        description="the paper's running example: rules f1-f3, constraints c1-c3",
        rules=tuple(running_example_rules()),
        constraints=tuple(running_example_constraints()),
    )


_PACK_FACTORIES = {
    "running-example": running_example_pack,
    "sports": sports_pack,
    "biography": biography_pack,
}


def available_packs() -> list[str]:
    """Names of all predefined packs."""
    return sorted(_PACK_FACTORIES)


def load_pack(name: str) -> ConstraintPack:
    """Load a predefined pack by name (raises for unknown names)."""
    factory = _PACK_FACTORIES.get(name)
    if factory is None:
        raise LogicError(f"unknown constraint pack {name!r}; available: {available_packs()}")
    return factory()
