"""Stateful incremental resolution: sessions over an evolving UTKG.

A :class:`ResolutionSession` is the serving shape of the paper's iterative
debugging loop: resolve once, then fold streams of fact insertions and
retractions into the state and re-resolve at a cost proportional to the
*change*, not the graph.  Three layers cooperate:

1. :class:`~repro.logic.incremental.IncrementalGrounder` maintains the match
   state of the ground program under the edits (delta joins for insertions,
   support-set retraction for removals) and exposes it as an
   :class:`~repro.logic.incremental.EmissionPlan` — the program in semantic
   form, ordered exactly as a from-scratch grounding would emit it.
2. A **component-level solution cache**: the plan is split into the
   connected components of its interaction graph *at the statement-key
   level*, so untouched components are recognised — and their cached
   :class:`~repro.solvers.MAPSolution` returned verbatim — without ever
   materialising their clauses.  Only *dirty* components are built as real
   sub-programs (bit-identical to the slices
   :func:`repro.logic.decompose.decompose` would produce) and re-solved.
   The merged objective is evaluated by one arithmetic walk over the plan in
   global clause order, reproducing ``GroundProgram.objective`` float-for-
   float — so the merged solution is bit-identical to a from-scratch
   decomposed resolve.
3. Optional **warm starts**: dirty components can seed the back-end with the
   previous solution's truth values (restricted to the component's atoms by
   statement key) when the back-end advertises
   :attr:`~repro.solvers.MAPSolver.supports_warm_start` — the previous
   assignment for MaxWalkSAT, an incumbent for branch & bound, the initial
   consensus vector for ADMM.

Sessions are created through :meth:`repro.core.tecore.TeCoRe.session`;
``tecore watch`` drives one from a change-stream file, and
``TeCoRe.resolve_batch(..., incremental=True)`` diffs consecutive graphs
into session edits.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Optional

from ..kg import TemporalKnowledgeGraph
from ..kg.triple import FactLike
from ..logic.arrays import soft_objective
from ..logic.decompose import _UnionFind
from ..logic.ground import ClauseKind, GroundProgram, nonzero_weight
from ..logic.grounding import ConstraintViolation
from ..logic.incremental import EmissionPlan, GroundingDelta, IncrementalGrounder
from ..solvers import MAPSolution, SolverStats
from .registry import make_solver, resolve_kernel, solver_capabilities, solver_family
from .result import DeltaStatistics, ResolutionResult, ResolutionStatistics
from .threshold import ThresholdFilter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tecore ← session)
    from .tecore import TeCoRe


class ComponentSolutionCache:
    """Bounded LRU cache from component content keys to MAP solutions."""

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, MAPSolution]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[MAPSolution]:
        solution = self._entries.get(key)
        if solution is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return solution

    def put(self, key: tuple, solution: MAPSolution) -> None:
        self._entries[key] = solution
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss statistics.

        The statistics are surfaced by ``tecore watch`` summaries and the
        serving ``/stats`` endpoint; a reset must not leak counters from the
        previous generation.
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class _Component:
    """One connected component of the plan's interaction graph (semantic)."""

    __slots__ = ("atom_indices", "firings", "violations", "key")

    def __init__(self) -> None:
        self.atom_indices: list[int] = []
        self.firings: list = []  # (record, emit_prior) pairs, global order
        self.violations: list = []  # records, global order
        self.key: tuple = ()


def component_content_key(program: GroundProgram) -> tuple:
    """Order-sensitive content identity of a materialised (sub-)program.

    Used by the degraded session path (and tests); the fast path computes
    the equivalent identity from the emission plan without building clauses.
    A key collision implies content equality, which is what makes returning
    a cached solution for it sound.
    """
    return (
        tuple(
            (atom.fact.statement_key, atom.is_evidence, atom.derived_by, atom.fact.confidence)
            for atom in program.atoms
        ),
        tuple(
            (clause.literals, clause.weight, clause.kind.value, clause.origin)
            for clause in program.clauses
        ),
    )


class ResolutionSession:
    """A stateful resolve-apply-resolve loop over one evolving UTKG.

    Parameters
    ----------
    system:
        The configured :class:`~repro.core.tecore.TeCoRe` facade providing
        rules, constraints, solver name/options, threshold, and max_rounds.
    graph:
        The initial evidence graph (copied; the caller's graph is never
        mutated by the session).
    warm_start:
        Seed dirty-component solves with the previous solution's truth
        values when the back-end supports it.  Off by default: warm starts
        keep exact back-ends exact but can steer *anytime* back-ends to a
        different (usually better) local optimum than a cold solve, which
        breaks bit-for-bit reproducibility against one-shot resolution.
    cache_size:
        Maximum number of component solutions kept in the LRU cache.

    Attributes
    ----------
    result:
        The most recent :class:`~repro.core.result.ResolutionResult` (the
        initial resolve right after construction).
    """

    def __init__(
        self,
        system: "TeCoRe",
        graph: TemporalKnowledgeGraph,
        warm_start: bool = False,
        cache_size: int = 8192,
    ) -> None:
        self._system = system
        self.warm_start = warm_start
        #: Concurrency seam: a session is single-writer — the grounder's
        #: match state, the solution cache, and ``result`` all mutate on
        #: :meth:`apply`.  Concurrent callers (the serving session pool)
        #: must hold this lock around ``apply``/``result`` accesses; direct
        #: single-threaded use can ignore it.
        self.lock = threading.RLock()
        self._grounder = IncrementalGrounder(
            graph,
            rules=tuple(system.rules),
            constraints=tuple(system.constraints),
            max_rounds=system.max_rounds,
        )
        self._solver = make_solver(
            resolve_kernel(system.solver, system.kernel), **system.solver_options
        )
        # Resolving the capability probe keeps parity with the translator's
        # expressivity verification.  The grounding engines only ever emit
        # clauses with at most one positive literal (evidence/prior units,
        # denial constraints, single-head rule clauses), which every
        # registered family accepts, so no per-apply structural check is
        # needed on the fast path.
        self._capabilities = solver_capabilities(system.solver)
        self._family = solver_family(system.solver)
        self._threshold = ThresholdFilter(system.threshold)
        self.cache = ComponentSolutionCache(max_entries=cache_size)
        self._previous_truth: dict[tuple, float] = {}
        self._previous_clauses: set = set()
        self.steps = 0
        self.result = self._resolve(GroundingDelta())

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> TemporalKnowledgeGraph:
        """The session's current evidence graph (treat as read-only; use
        :meth:`apply` to mutate)."""
        return self._grounder.graph

    def apply(
        self,
        adds: Iterable[FactLike] = (),
        removes: Iterable[FactLike] = (),
        graph_name: str | None = None,
    ) -> ResolutionResult:
        """Fold an edit into the session and re-resolve incrementally.

        ``removes`` are applied before ``adds``.  Returns the new
        :class:`ResolutionResult` with :attr:`ResolutionResult.delta`
        populated; a no-op edit returns the previous result (with fresh,
        all-zero delta statistics) without re-grounding or re-solving.
        """
        grounding_delta = self._grounder.apply(adds=adds, removes=removes)
        if graph_name is not None:
            self._grounder.graph.name = graph_name
        if grounding_delta.is_empty:
            result = replace(self.result, delta=DeltaStatistics())
            if graph_name is not None and result.input_graph.name != graph_name:
                result = replace(result, input_graph=result.input_graph.copy(name=graph_name))
            self.result = result
            return self.result
        self.result = self._resolve(grounding_delta)
        return self.result

    # ------------------------------------------------------------------ #
    # Resolution over the emission plan
    # ------------------------------------------------------------------ #
    def _resolve(self, grounding_delta: GroundingDelta) -> ResolutionResult:
        started = time.perf_counter()
        grounder = self._grounder
        if not grounder.saturated:
            # Degraded mode (rule set outran the maintained fix point):
            # materialise the whole program and treat it as one dirty
            # component — correct, but without the incremental savings.
            return self._resolve_degraded(grounding_delta, started)

        plan = grounder.emit_plan()
        grounding_seconds = time.perf_counter() - started
        solve_started = time.perf_counter()

        components, unconstrained = self._split_components(plan)
        num_atoms = plan.num_atoms
        assignment = [False] * num_atoms
        truth_values = [0.0] * num_atoms
        dirty = cached = warm_started = 0
        runtime_sum = 0.0
        iterations_sum = 0
        all_optimal = True
        inner_name = self._solver.name
        for component in components:
            solution = self.cache.get(component.key)
            if solution is None:
                subprogram = self._materialise(plan, component)
                solution, warmed = self._solve_component(subprogram)
                warm_started += warmed
                self.cache.put(component.key, solution)
                dirty += 1
                # Only work actually performed this step counts as runtime
                # (cached solutions carry their historical solve stats).
                runtime_sum += solution.stats.runtime_seconds
                iterations_sum += solution.stats.iterations
            else:
                cached += 1
            soft = solution.truth_values or tuple(
                1.0 if value else 0.0 for value in solution.assignment
            )
            for local, global_index in enumerate(component.atom_indices):
                assignment[global_index] = solution.assignment[local]
                truth_values[global_index] = soft[local]
            all_optimal = all_optimal and solution.stats.optimal
        for global_index in unconstrained:
            keep = plan.atoms[global_index].fact.log_weight > 0
            assignment[global_index] = keep
            truth_values[global_index] = 1.0 if keep else 0.0

        objective = self._objective(plan, assignment)
        solve_seconds = time.perf_counter() - solve_started

        stats = SolverStats(
            # Mirror DecomposedSolver: a trivial decomposition is a bypass.
            solver=inner_name if len(components) <= 1 and not unconstrained
            else f"decomposed({inner_name})",
            runtime_seconds=runtime_sum,
            iterations=iterations_sum,
            atoms=num_atoms,
            clauses=plan.num_clauses,
            optimal=all_optimal if components else True,
            extra=(
                ("components", float(len(components))),
                ("components_cached", float(cached)),
                ("unconstrained_atoms", float(len(unconstrained))),
            ),
        )
        solution = MAPSolution(
            assignment=tuple(assignment),
            objective=objective,
            stats=stats,
            truth_values=tuple(truth_values),
        )

        self._previous_truth = {
            atom.fact.statement_key: truth_values[atom.index] for atom in plan.atoms
        }
        clause_ids = self._clause_identities(plan)
        delta = DeltaStatistics(
            facts_added=grounding_delta.facts_added,
            facts_removed=grounding_delta.facts_removed,
            facts_updated=grounding_delta.facts_updated,
            clauses_added=len(clause_ids - self._previous_clauses),
            clauses_retracted=len(self._previous_clauses - clause_ids),
            components_total=len(components),
            components_dirty=dirty,
            components_cached=cached,
            warm_started=warm_started,
            grounding_seconds=grounding_seconds,
            solve_seconds=solve_seconds,
        )
        self._previous_clauses = clause_ids
        self.steps += 1
        return self._assemble_result(plan, solution, delta, started)

    # ------------------------------------------------------------------ #
    def _split_components(self, plan: EmissionPlan):
        """Connected components of the plan's interaction graph, keyed.

        Mirrors :func:`repro.logic.decompose.decompose` — components ordered
        by smallest atom index, atoms ascending, per-component clause lists
        in global emission order — but works entirely on statement keys and
        maintained records, so clean components cost a few appends each.
        """
        num_atoms = plan.num_atoms
        atom_index = plan.atom_index
        union_find = _UnionFind(num_atoms)
        in_clause = [False] * num_atoms
        # Evidence unit clauses.
        for index in range(plan.evidence_count):
            in_clause[index] = True
        # Rule clauses (and their derived-prior units) couple body and head.
        for record, _ in plan.firings:
            head = atom_index[record.head_key]
            in_clause[head] = True
            for key in record.body_keys:
                body = atom_index[key]
                in_clause[body] = True
                union_find.union(head, body)
        # Constraint clauses couple their conflict sets.
        for record in plan.violations:
            first = atom_index[record.fact_keys[0]]
            in_clause[first] = True
            for key in record.fact_keys[1:]:
                other = atom_index[key]
                in_clause[other] = True
                union_find.union(first, other)

        find = union_find.find
        components: dict[int, _Component] = {}
        unconstrained: list[int] = []
        for index in range(num_atoms):
            if not in_clause[index]:
                unconstrained.append(index)
                continue
            root = find(index)
            component = components.get(root)
            if component is None:
                component = components[root] = _Component()
            component.atom_indices.append(index)
        for item in plan.firings:
            components[find(atom_index[item[0].head_key])].firings.append(item)
        for record in plan.violations:
            components[find(atom_index[record.fact_keys[0]])].violations.append(record)

        atoms = plan.atoms
        ordered = list(components.values())
        for component in ordered:
            atom_entries = tuple(
                (
                    atoms[index].fact.statement_key,
                    atoms[index].is_evidence,
                    atoms[index].derived_by,
                    atoms[index].fact.confidence,
                )
                for index in component.atom_indices
            )
            component.key = (
                atom_entries,
                tuple(record.signature for record, _ in component.firings),
                tuple(record.signature for record in component.violations),
            )
        return ordered, unconstrained

    def _materialise(self, plan: EmissionPlan, component: _Component) -> GroundProgram:
        """Build one component's sub-program, identical to a decompose slice."""
        grounder = self._grounder
        sub = GroundProgram()
        local = {}
        atoms = plan.atoms
        for global_index in component.atom_indices:
            atom = atoms[global_index]
            local[global_index] = sub.add_atom(atom.fact, atom.is_evidence, atom.derived_by).index
        for global_index in component.atom_indices:
            atom = atoms[global_index]
            if atom.is_evidence:
                sub.add_clause(
                    [(local[global_index], True)],
                    weight=atom.fact.log_weight + grounder.keep_bias,
                    kind=ClauseKind.EVIDENCE,
                    origin="evidence",
                )
        atom_index = plan.atom_index
        for record, emit_prior in component.firings:
            rule = grounder.rules[record.rule_index]
            head = local[atom_index[record.head_key]]
            if emit_prior:
                sub.add_clause(
                    [(head, True)],
                    weight=-grounder.derived_prior,
                    kind=ClauseKind.PRIOR,
                    origin=f"prior:{record.rule_name}",
                )
            literals = [(local[atom_index[key]], False) for key in record.body_keys]
            literals.append((head, True))
            sub.add_clause(
                literals, weight=rule.weight, kind=ClauseKind.RULE, origin=record.rule_name
            )
        for record in component.violations:
            constraint = grounder.constraints[record.constraint_index]
            sub.add_clause(
                [(local[atom_index[key]], False) for key in record.fact_keys],
                weight=constraint.weight,
                kind=ClauseKind.CONSTRAINT,
                origin=constraint.name,
            )
        return sub

    def _objective(self, plan: EmissionPlan, assignment: list[bool]) -> float:
        """Satisfied soft weight, accumulated in global clause order.

        Reproduces ``GroundProgram.objective`` on the materialised program
        float-for-float: same clause order, same left-to-right summation,
        same weight normalisation (negative unit clauses flip their literal,
        zero weights get :data:`~repro.logic.ground.ZERO_WEIGHT_EPSILON` via
        :func:`~repro.logic.ground.nonzero_weight`).  Under the array kernel
        the walk lowers the plan's soft clauses to flat literal columns and
        evaluates them with the same masked-dot-product kernel the array
        solvers use (:func:`repro.logic.arrays.soft_objective`) — the ordered
        final sum keeps the result bit-identical to this object walk.
        """
        if self._system.kernel == "array":
            return self._objective_arrays(plan, assignment)
        grounder = self._grounder
        atom_index = plan.atom_index
        atoms = plan.atoms
        keep_bias = grounder.keep_bias
        derived_prior = grounder.derived_prior
        total = 0.0
        for index in range(plan.evidence_count):
            weight = atoms[index].fact.log_weight + keep_bias
            if weight < 0:
                if not assignment[index]:
                    total += -weight
            elif assignment[index]:
                total += nonzero_weight(weight)
        for record, emit_prior in plan.firings:
            head = atom_index[record.head_key]
            if emit_prior and not assignment[head]:
                total += derived_prior  # the prior unit clause, flipped
            weight = grounder.rules[record.rule_index].weight
            if weight is None:
                continue
            if assignment[head] or any(not assignment[atom_index[key]] for key in record.body_keys):
                total += nonzero_weight(weight)
        for record in plan.violations:
            weight = grounder.constraints[record.constraint_index].weight
            if weight is None:
                continue
            if any(not assignment[atom_index[key]] for key in record.fact_keys):
                total += nonzero_weight(weight)
        return total

    def _objective_arrays(self, plan: EmissionPlan, assignment: list[bool]) -> float:
        """Array-kernel variant of :meth:`_objective`.

        Builds the plan's soft clauses as flat literal columns in the exact
        emission order (evidence units, firing prior/rule clauses,
        violations — hard clauses skipped, negative evidence units flipped,
        the same normalisation as the object walk) and hands them to one
        vectorized satisfied-mask evaluation.
        """
        grounder = self._grounder
        atom_index = plan.atom_index
        atoms = plan.atoms
        keep_bias = grounder.keep_bias
        derived_prior = grounder.derived_prior
        literal_atoms: list[int] = []
        literal_signs: list[bool] = []
        literal_clauses: list[int] = []
        weights: list[float] = []

        def emit(literals: list[tuple[int, bool]], weight: float) -> None:
            clause = len(weights)
            weights.append(weight)
            for atom, sign in literals:
                literal_atoms.append(atom)
                literal_signs.append(sign)
                literal_clauses.append(clause)

        for index in range(plan.evidence_count):
            weight = atoms[index].fact.log_weight + keep_bias
            if weight < 0:
                emit([(index, False)], -weight)
            else:
                emit([(index, True)], nonzero_weight(weight))
        for record, emit_prior in plan.firings:
            head = atom_index[record.head_key]
            if emit_prior:
                emit([(head, False)], derived_prior)  # the prior unit, flipped
            weight = grounder.rules[record.rule_index].weight
            if weight is None:
                continue
            literals = [(atom_index[key], False) for key in record.body_keys]
            literals.append((head, True))
            emit(literals, nonzero_weight(weight))
        for record in plan.violations:
            weight = grounder.constraints[record.constraint_index].weight
            if weight is None:
                continue
            emit(
                [(atom_index[key], False) for key in record.fact_keys],
                nonzero_weight(weight),
            )
        return soft_objective(literal_atoms, literal_signs, literal_clauses, weights, assignment)

    def _clause_identities(self, plan: EmissionPlan) -> set:
        """Content identities of the emitted clauses (for delta statistics)."""
        identities: set = set()
        for index in range(plan.evidence_count):
            fact = plan.atoms[index].fact
            identities.add(("evidence", fact.statement_key, fact.confidence))
        for record, emit_prior in plan.firings:
            identities.add(record.signature)
            if emit_prior:
                identities.add(("prior", record.head_key, record.rule_name))
        for record in plan.violations:
            identities.add(record.signature)
        return identities

    # ------------------------------------------------------------------ #
    def _solve_component(self, program: GroundProgram) -> tuple[MAPSolution, int]:
        """Solve one (sub-)program, warm-starting when enabled and possible."""
        if (
            self.warm_start
            and self._previous_truth
            and getattr(self._solver, "supports_warm_start", False)
        ):
            warm = [
                self._previous_truth.get(atom.fact.statement_key, 1.0) for atom in program.atoms
            ]
            return self._solver.solve(program, warm_start=warm), 1
        return self._solver.solve(program), 0

    def _resolve_degraded(
        self, grounding_delta: GroundingDelta, started: float
    ) -> ResolutionResult:
        """Correct-but-uncached path used when the rule set never saturates."""
        grounding = self._grounder.ground()
        program = grounding.program
        grounding_seconds = time.perf_counter() - started
        solve_started = time.perf_counter()
        key = component_content_key(program)
        solution = self.cache.get(key)
        dirty = cached = warm_started = 0
        if solution is None:
            solution, warm_started = self._solve_component(program)
            self.cache.put(key, solution)
            dirty = 1
        else:
            cached = 1
        solve_seconds = time.perf_counter() - solve_started
        self._previous_truth = {
            atom.fact.statement_key: (
                solution.truth_values[atom.index]
                if solution.truth_values
                else (1.0 if solution.assignment[atom.index] else 0.0)
            )
            for atom in program.atoms
        }
        delta = DeltaStatistics(
            facts_added=grounding_delta.facts_added,
            facts_removed=grounding_delta.facts_removed,
            facts_updated=grounding_delta.facts_updated,
            components_total=1,
            components_dirty=dirty,
            components_cached=cached,
            warm_started=warm_started,
            grounding_seconds=grounding_seconds,
            solve_seconds=solve_seconds,
        )
        self.steps += 1
        snapshot = self.graph.copy(name=self.graph.name)
        from .translator import TranslatedProgram

        translated = TranslatedProgram(
            solver_name=self._system.solver,
            family=self._family,
            grounding=grounding,
            rules=tuple(self._system.rules),
            constraints=tuple(self._system.constraints),
        )
        result = self._system._build_result(snapshot, translated, solution, started)
        return replace(result, delta=delta)

    # ------------------------------------------------------------------ #
    # Result assembly (mirrors TeCoRe._build_result over the plan)
    # ------------------------------------------------------------------ #
    def _assemble_result(
        self,
        plan: EmissionPlan,
        solution: MAPSolution,
        delta: DeltaStatistics,
        started: float,
    ) -> ResolutionResult:
        grounder = self._grounder
        assignment = solution.assignment
        removed = tuple(
            atom.fact for atom in plan.atoms if atom.is_evidence and not assignment[atom.index]
        )
        snapshot = self.graph.copy(name=self.graph.name)
        consistent = snapshot.without_statements(
            (fact.statement_key for fact in removed),
            name=f"{snapshot.name}-consistent",
        )

        derived_kept = [
            atom.fact for atom in plan.atoms if not atom.is_evidence and assignment[atom.index]
        ]
        inferred, below_threshold = self._threshold.split(derived_kept)
        expanded = consistent.copy(name=f"{snapshot.name}-inferred")
        expanded.add_all(inferred)

        violations = tuple(
            ConstraintViolation(
                grounder.constraints[record.constraint_index].name,
                grounder.fresh_facts(record.facts),
                grounder.constraints[record.constraint_index].weight,
            )
            for record in plan.violations
        )
        conflicting_by_key: dict[tuple, object] = {}
        for violation in violations:
            for fact in violation.facts:
                conflicting_by_key.setdefault(fact.statement_key, fact)
        conflicting = tuple(conflicting_by_key.values())
        runtime = time.perf_counter() - started

        statistics = ResolutionStatistics(
            input_facts=len(snapshot),
            consistent_facts=len(consistent),
            removed_facts=len(removed),
            inferred_facts=len(inferred),
            conflicting_facts=len(conflicting),
            violations=len(violations),
            hard_violations=sum(1 for violation in violations if violation.is_hard),
            soft_violations=sum(1 for violation in violations if not violation.is_hard),
            objective=solution.objective,
            runtime_seconds=runtime,
            solver=self._system.solver,
            ground_atoms=plan.num_atoms,
            ground_clauses=plan.num_clauses,
            threshold=self._system.threshold,
            inferred_below_threshold=len(below_threshold),
        )
        return ResolutionResult(
            input_graph=snapshot,
            consistent_graph=consistent,
            expanded_graph=expanded,
            removed_facts=removed,
            inferred_facts=tuple(inferred),
            violations=violations,
            conflicting_facts=conflicting,
            solution=solution,
            statistics=statistics,
            inferred_below_threshold=tuple(below_threshold),
            delta=delta,
        )

    # ------------------------------------------------------------------ #
    def state_digest(self) -> tuple:
        """Content identity of the session's evidence graph.

        Two sessions with equal digests hold bit-identical evidence state:
        the resolution result is a pure function of exactly this key plus
        the (fixed) system configuration.  The serializability checker in
        :mod:`repro.verify` uses it to memoise replay states and to label
        divergence points in violation reports.
        """
        return self.graph.content_key()

    def state_summary(self) -> dict[str, int]:
        """Maintained-state and cache sizes (diagnostics)."""
        summary = self._grounder.state_summary()
        summary["cache_entries"] = len(self.cache)
        summary["cache_hits"] = self.cache.hits
        summary["cache_misses"] = self.cache.misses
        summary["steps"] = self.steps
        return summary

    def __repr__(self) -> str:
        return (
            f"ResolutionSession(graph={self.graph.name!r}, facts={len(self.graph)}, "
            f"steps={self.steps}, cache={len(self.cache)})"
        )
