"""Unified solver registry.

TeCoRe dispatches to one of two reasoner families — nRockIt (MLN) or the PSL
solver — and is designed so that "any off-the-shelf ProbFOL system ... can be
seamlessly integrated".  The registry maps user-facing solver names to
back-end factories across both families and is the single place a new
back-end has to be registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from functools import partial

from ..errors import SolverNotAvailableError
from ..mln import (
    ArrayMaxWalkSATSolver,
    BranchAndBoundSolver,
    CuttingPlaneSolver,
    ILPMapSolver,
    MaxWalkSATSolver,
)
from ..psl import ADMMSolver, ArrayADMMSolver, ProjectedGradientSolver
from ..solvers import MAPSolver, instantiate_solver


@dataclass(frozen=True, slots=True)
class SolverEntry:
    """One registered solver."""

    name: str
    family: str
    description: str
    factory: Callable[..., MAPSolver]


_REGISTRY: dict[str, SolverEntry] = {}


def register_solver(
    name: str, family: str, description: str, factory: Callable[..., MAPSolver]
) -> None:
    """Register (or replace) a solver under ``name``."""
    _REGISTRY[name] = SolverEntry(
        name=name, family=family, description=description, factory=factory
    )
    _CAPABILITY_PROBES.pop(name, None)


def available_solvers() -> list[str]:
    """All registered solver names."""
    return sorted(_REGISTRY)


def describe_solvers() -> list[SolverEntry]:
    """All registry entries, sorted by name."""
    return [_REGISTRY[name] for name in available_solvers()]


def make_solver(name: str, **kwargs) -> MAPSolver:
    """Instantiate a registered solver by name."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise SolverNotAvailableError(f"unknown solver {name!r}; available: {available_solvers()}")
    return instantiate_solver(entry.factory, f"solver {name!r}", **kwargs)


def solver_family(name: str) -> str:
    """The family ("mln" or "psl") a registered solver belongs to."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise SolverNotAvailableError(f"unknown solver {name!r}; available: {available_solvers()}")
    return entry.family


_CAPABILITY_PROBES: dict[str, MAPSolver] = {}


def solver_capabilities(name: str):
    """Expressivity descriptor of a registered solver.

    Instantiates one probe solver per name (with default options) and caches
    it, so callers that only need the capabilities — the translator's
    expressivity check, run per graph in :meth:`repro.core.TeCoRe.resolve_batch`
    — do not pay for a fresh back-end construction every time.
    """
    probe = _CAPABILITY_PROBES.get(name)
    if probe is None:
        probe = make_solver(name)
        _CAPABILITY_PROBES[name] = probe
    return probe.capabilities


# --------------------------------------------------------------------------- #
# Built-in registrations.  "nrockit" and "npsl" are the two reasoners the demo
# runs on; the rest are the ablation back-ends.
# --------------------------------------------------------------------------- #
register_solver(
    "nrockit", "mln", "MLN with numerical constraints, exact MAP via HiGHS ILP", ILPMapSolver
)
register_solver(
    "nrockit-cpa", "mln", "MLN MAP via RockIt-style cutting-plane aggregation", CuttingPlaneSolver
)
register_solver(
    "nrockit-bnb", "mln", "MLN MAP via pure-Python branch & bound", BranchAndBoundSolver
)
register_solver(
    "maxwalksat", "mln", "approximate MLN MAP via stochastic local search", MaxWalkSATSolver
)
register_solver(
    "npsl", "psl", "PSL/nPSL MAP via consensus ADMM over the hinge-loss MRF", ADMMSolver
)
register_solver(
    "npsl-pgd", "psl", "PSL/nPSL MAP via projected subgradient descent", ProjectedGradientSolver
)
register_solver(
    "nrockit-bnb-array",
    "mln",
    "branch & bound with array-native objective/feasibility evaluation (bit-identical)",
    partial(BranchAndBoundSolver, kernel="array"),
)
register_solver(
    "maxwalksat-array",
    "mln",
    "batched array-kernel MaxWalkSAT over the columnar ground program",
    ArrayMaxWalkSATSolver,
)
register_solver(
    "npsl-array",
    "psl",
    "consensus ADMM over a potential matrix lowered from the columnar arrays (bit-identical)",
    ArrayADMMSolver,
)

#: Object solver → its array-kernel counterpart.  Exact variants are
#: bit-identical; ``maxwalksat-array`` is tolerance-pinned (stochastic).
ARRAY_VARIANTS: dict[str, str] = {
    "nrockit-bnb": "nrockit-bnb-array",
    "maxwalksat": "maxwalksat-array",
    "npsl": "npsl-array",
}


def resolve_kernel(name: str, kernel: str = "object") -> str:
    """Map a solver name to the requested kernel's registry name.

    ``"object"`` returns ``name`` unchanged.  ``"array"`` substitutes the
    array-native variant when one exists and otherwise falls back to the
    object solver (ILP and cutting-plane already run on compiled encodings,
    so an array request is not an error for them).
    """
    if kernel == "object":
        return name
    if kernel == "array":
        return ARRAY_VARIANTS.get(name, name)
    raise SolverNotAvailableError(f"unknown solver kernel {kernel!r}; expected 'object' or 'array'")
