"""Confidence-threshold filtering of derived facts.

"Besides, TeCoRe allows to set a threshold value and remove derived facts
below that." (paper, Section 1)

The threshold applies to *derived* (inferred) facts only: evidence facts are
governed by the MAP state, while inferred facts additionally need a derived
confidence of at least the threshold to enter the expanded KG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import TecoreError
from ..kg import TemporalFact


@dataclass(frozen=True, slots=True)
class ThresholdFilter:
    """Splits derived facts into accepted / rejected by confidence."""

    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.threshold is not None and not (0.0 <= self.threshold <= 1.0):
            raise TecoreError(f"threshold must lie in [0, 1], got {self.threshold}")

    def accepts(self, fact: TemporalFact) -> bool:
        """True when ``fact`` passes the threshold (always true when unset)."""
        if self.threshold is None:
            return True
        return fact.confidence >= self.threshold

    def split(self, facts: Iterable[TemporalFact]) -> tuple[list[TemporalFact], list[TemporalFact]]:
        """Partition ``facts`` into (accepted, rejected)."""
        accepted: list[TemporalFact] = []
        rejected: list[TemporalFact] = []
        for fact in facts:
            (accepted if self.accepts(fact) else rejected).append(fact)
        return accepted, rejected


def sweep_thresholds(
    facts: Sequence[TemporalFact], thresholds: Sequence[float]
) -> list[tuple[float, int]]:
    """For each threshold, how many derived facts would survive it.

    Used by the threshold-sweep benchmark (E7) and handy for picking a value
    interactively.
    """
    results: list[tuple[float, int]] = []
    for threshold in thresholds:
        accepted, _ = ThresholdFilter(threshold).split(facts)
        results.append((threshold, len(accepted)))
    return results
