"""The TeCoRe facade: temporal conflict resolution end-to-end.

This is the public entry point of the library, mirroring the demo workflow:

1. select a UTKG, a set of temporal inference rules and temporal constraints
   (hand-built, parsed from the Datalog-style syntax, or taken from a
   predefined pack);
2. choose a reasoner — ``"nrockit"`` (MLN, exact, expressive) or ``"npsl"``
   (PSL, scalable) — and optionally a confidence threshold for derived facts;
3. call :meth:`TeCoRe.resolve` to compute the most probable conflict-free and
   expanded temporal KG, together with the debugging statistics the demo's
   result panel displays.

Example
-------
>>> from repro import TeCoRe
>>> from repro.datasets import ranieri_graph
>>> system = TeCoRe.from_pack("running-example", solver="nrockit")
>>> result = system.resolve(ranieri_graph())
>>> [str(fact.object) for fact in result.removed_facts]
['Napoli']
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import ProgramLintError
from ..kg import TemporalKnowledgeGraph
from ..logic import (
    TemporalConstraint,
    TemporalRule,
    load_pack,
    parse_program,
)
from ..solvers import MAPSolution, MAPSolver, wrap_decomposed
from .registry import available_solvers, make_solver, resolve_kernel
from .result import BatchResolution, ResolutionResult, ResolutionStatistics
from .threshold import ThresholdFilter
from .translator import TecoreTranslator, TranslatedProgram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session ← tecore)
    from .session import ResolutionSession


@dataclass
class TeCoRe:
    """Temporal conflict resolution over uncertain temporal knowledge graphs.

    Parameters
    ----------
    rules, constraints:
        The temporal inference rules and constraints to enforce.
    solver:
        Registered solver name (see :func:`repro.core.registry.available_solvers`).
    threshold:
        Optional confidence threshold for derived facts.
    max_rounds:
        Forward-chaining bound for rule application during grounding.
    solver_options:
        Extra keyword arguments for the solver factory (e.g. ``time_limit``).
    engine:
        Grounding engine: ``"indexed"`` (semi-naive, the default),
        ``"vectorized"`` (columnar numpy joins, the fastest), ``"naive"``
        (the reference implementation), or ``"incremental"``.  All produce
        identical ground programs.
    decompose:
        Solve the connected components of the ground program's interaction
        graph independently and merge (exact for exact back-ends; see
        :mod:`repro.logic.decompose`).
    jobs:
        Worker processes for the decomposed solve (1 = sequential; only
        meaningful with ``decompose=True``).
    kernel:
        Solver kernel: ``"object"`` (the default back-ends) or ``"array"``
        (the columnar kernels over :class:`~repro.logic.GroundProgramArrays`
        — see :func:`repro.core.registry.resolve_kernel`).  Exact solvers
        return bit-identical results either way; solvers without an array
        variant (ILP, cutting-plane) fall back to their object form.
    lint:
        Static-analysis mode for the rule program (see
        :mod:`repro.analysis`): ``"off"`` (default) skips analysis,
        ``"warn"`` emits a Python warning when the analyzer finds problems,
        ``"strict"`` raises :class:`~repro.errors.ProgramLintError` on
        error-severity findings (and warns on warning-severity ones).
        The report is computed once per rule/constraint set and cached.
    """

    rules: list[TemporalRule] = field(default_factory=list)
    constraints: list[TemporalConstraint] = field(default_factory=list)
    solver: str = "nrockit"
    threshold: float | None = None
    max_rounds: int = 5
    solver_options: dict = field(default_factory=dict)
    engine: str = "indexed"
    decompose: bool = False
    jobs: int = 1
    kernel: str = "object"
    lint: str = "off"
    _lint_cache: tuple | None = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pack(cls, pack_name: str, solver: str = "nrockit", **kwargs) -> "TeCoRe":
        """Build a system from a predefined rule/constraint pack."""
        pack = load_pack(pack_name)
        return cls(
            rules=list(pack.rules),
            constraints=list(pack.constraints),
            solver=solver,
            **kwargs,
        )

    @classmethod
    def from_text(cls, program_text: str, solver: str = "nrockit", **kwargs) -> "TeCoRe":
        """Build a system from Datalog-style rule/constraint text."""
        parsed = parse_program(program_text)
        return cls(
            rules=list(parsed.rules),
            constraints=list(parsed.constraints),
            solver=solver,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Configuration helpers
    # ------------------------------------------------------------------ #
    def add_rule(self, rule: TemporalRule) -> "TeCoRe":
        self.rules.append(rule)
        return self

    def add_constraint(self, constraint: TemporalConstraint) -> "TeCoRe":
        self.constraints.append(constraint)
        return self

    def with_solver(self, solver: str, **options) -> "TeCoRe":
        """Copy of this system targeting a different solver."""
        return TeCoRe(
            rules=list(self.rules),
            constraints=list(self.constraints),
            solver=solver,
            threshold=self.threshold,
            max_rounds=self.max_rounds,
            solver_options=dict(options or self.solver_options),
            engine=self.engine,
            decompose=self.decompose,
            jobs=self.jobs,
            kernel=self.kernel,
            lint=self.lint,
        )

    def _make_backend(self) -> MAPSolver:
        """The configured MAP back-end, optionally decomposition-wrapped."""
        return wrap_decomposed(
            partial(
                make_solver,
                resolve_kernel(self.solver, self.kernel),
                **self.solver_options,
            ),
            self.decompose,
            self.jobs,
        )

    @staticmethod
    def available_solvers() -> list[str]:
        return available_solvers()

    # ------------------------------------------------------------------ #
    # Static analysis
    # ------------------------------------------------------------------ #
    def lint_report(self, graph: TemporalKnowledgeGraph | None = None):
        """The static analyzer's :class:`~repro.analysis.LintReport`.

        Graph-independent reports (``graph=None``) are cached per
        rule/constraint set; passing a graph additionally enables the
        unknown-predicate and grounding-estimate checks.
        """
        translator = TecoreTranslator(max_rounds=self.max_rounds, engine=self.engine)
        if graph is not None:
            return translator.lint_program(self.rules, self.constraints, graph)
        key = (tuple(self.rules), tuple(self.constraints))
        if self._lint_cache is None or self._lint_cache[0] != key:
            report = translator.lint_program(self.rules, self.constraints)
            self._lint_cache = (key, report)
        return self._lint_cache[1]

    def _enforce_lint(self) -> None:
        """Apply the configured ``lint`` mode (called before translation)."""
        if self.lint == "off":
            return
        if self.lint not in ("warn", "strict"):
            raise ValueError(f"unknown lint mode {self.lint!r} (off/warn/strict)")
        report = self.lint_report()
        if not report.findings:
            return
        if self.lint == "strict" and report.errors:
            raise ProgramLintError(
                "static analysis found "
                f"{len(report.errors)} error(s) in the rule program:\n"
                + report.render(),
                report=report,
            )
        if report.errors or report.warnings:
            warnings.warn(
                f"tecore lint: {report.summary_line()}\n{report.render()}",
                stacklevel=3,
            )

    # ------------------------------------------------------------------ #
    # Main operations
    # ------------------------------------------------------------------ #
    def translate(self, graph: TemporalKnowledgeGraph) -> TranslatedProgram:
        """Ground and validate the inputs for the configured solver."""
        self._enforce_lint()
        translator = TecoreTranslator(max_rounds=self.max_rounds, engine=self.engine)
        return translator.translate(graph, self.rules, self.constraints, solver=self.solver)

    def detect_conflicts(self, graph: TemporalKnowledgeGraph):
        """Constraint violations in ``graph`` (no inference, no repair)."""
        translator = TecoreTranslator(max_rounds=self.max_rounds, engine=self.engine)
        return translator.detect_conflicts(graph, self.constraints).violations

    def expand(self, graph: TemporalKnowledgeGraph) -> TemporalKnowledgeGraph:
        """Apply the inference rules only (no conflict resolution).

        Returns the graph expanded with all derivable facts that pass the
        confidence threshold.
        """
        translated = self.translate(graph)
        expanded = graph.copy(name=f"{graph.name}-expanded")
        threshold_filter = ThresholdFilter(self.threshold)
        for fact in translated.grounding.derived_facts():
            if threshold_filter.accepts(fact):
                expanded.add(fact)
        return expanded

    def resolve(self, graph: TemporalKnowledgeGraph) -> ResolutionResult:
        """Compute the most probable conflict-free (and expanded) temporal KG."""
        started = time.perf_counter()
        translated = self.translate(graph)
        program = translated.program
        backend = self._make_backend()
        solution = backend.solve(program)
        return self._build_result(graph, translated, solution, started)

    def session(
        self,
        graph: TemporalKnowledgeGraph,
        warm_start: bool = False,
        cache_size: int = 8192,
    ) -> "ResolutionSession":
        """Open a stateful incremental-resolution session on ``graph``.

        The session performs the initial resolve immediately (available as
        ``session.result``); subsequent edits go through
        :meth:`~repro.core.session.ResolutionSession.apply`, which re-grounds
        only the delta and re-solves only the dirty components of the ground
        program.  ``warm_start`` seeds dirty-component solves from the
        previous solution on back-ends that support it (MaxWalkSAT, branch &
        bound, ADMM); ``cache_size`` bounds the component solution cache.
        """
        from .session import ResolutionSession

        return ResolutionSession(self, graph, warm_start=warm_start, cache_size=cache_size)

    def shared_resolver(self) -> "SharedResolver":
        """A reusable translate-and-solve pipeline for serving.

        The returned :class:`SharedResolver` holds one translator (with its
        cached expressivity probe) and one solver back-end for this system's
        configuration, so each call only pays for its own grounding and MAP
        solve.  It is **not thread-safe**: confine each instance to a single
        thread (the serving micro-batcher runs one on its flush worker) or
        guard it externally.
        """
        return SharedResolver(self)

    def resolve_batch(
        self,
        graphs: Iterable[TemporalKnowledgeGraph],
        incremental: bool = False,
    ) -> BatchResolution:
        """Resolve many UTKGs, reusing the translated program template and solver.

        This is the heavy-traffic serving shape: the rule/constraint program,
        the translator (with its cached expressivity probe), and the solver
        back-end are constructed once (one :class:`SharedResolver`), and each
        incoming graph only pays for its own (indexed) grounding and MAP
        solve.  Results come back in input order as a
        :class:`~repro.core.result.BatchResolution`.

        With ``incremental=True`` the batch is served by one
        :class:`~repro.core.session.ResolutionSession`: each graph after the
        first is *diffed* against the previous one and applied as an edit, so
        near-duplicate graphs (the common case in tenant fan-out and replayed
        debugging sessions) only pay for the facts that actually differ.
        Sessions always solve component-decomposed (``jobs`` is not used):
        results are those of a ``decompose=True`` resolve — identical for
        exact back-ends, while anytime back-ends (MaxWalkSAT, PSL) may settle
        in different (typically better) local optima than a monolithic solve.
        """
        if incremental:
            return self._resolve_batch_incremental(graphs)
        return self.shared_resolver().resolve_many(graphs)

    def _resolve_batch_incremental(
        self, graphs: Iterable[TemporalKnowledgeGraph]
    ) -> BatchResolution:
        """Serve a batch through one session, diffing consecutive graphs."""
        batch_started = time.perf_counter()
        session = None
        results = []
        for graph in graphs:
            if session is None:
                session = self.session(graph)
                results.append(session.result)
                continue
            current = {fact.statement_key: fact for fact in session.graph}
            incoming = {fact.statement_key: fact for fact in graph}
            removes = [
                fact
                for key, fact in current.items()
                if key not in incoming or incoming[key].confidence != fact.confidence
            ]
            adds = [
                fact
                for key, fact in incoming.items()
                if key not in current or current[key].confidence != fact.confidence
            ]
            results.append(session.apply(adds=adds, removes=removes, graph_name=graph.name))
        return BatchResolution(
            results=tuple(results),
            runtime_seconds=time.perf_counter() - batch_started,
        )

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _build_result(
        self,
        graph: TemporalKnowledgeGraph,
        translated: TranslatedProgram,
        solution: MAPSolution,
        started: float,
    ) -> ResolutionResult:
        program = translated.program
        threshold_filter = ThresholdFilter(self.threshold)

        removed = tuple(solution.removed_facts(program))
        removed_keys = {fact.statement_key for fact in removed}
        consistent = graph.filter(
            lambda fact: fact.statement_key not in removed_keys,
            name=f"{graph.name}-consistent",
        )

        derived_kept = solution.derived_kept_facts(program)
        inferred, below_threshold = threshold_filter.split(derived_kept)
        expanded = consistent.copy(name=f"{graph.name}-inferred")
        expanded.add_all(inferred)

        violations = tuple(translated.grounding.violations)
        conflicting = tuple(translated.grounding.conflicting_facts())
        runtime = time.perf_counter() - started

        statistics = ResolutionStatistics(
            input_facts=len(graph),
            consistent_facts=len(consistent),
            removed_facts=len(removed),
            inferred_facts=len(inferred),
            conflicting_facts=len(conflicting),
            violations=len(violations),
            hard_violations=sum(1 for violation in violations if violation.is_hard),
            soft_violations=sum(1 for violation in violations if not violation.is_hard),
            objective=solution.objective,
            runtime_seconds=runtime,
            solver=self.solver,
            ground_atoms=program.num_atoms,
            ground_clauses=program.num_clauses,
            threshold=self.threshold,
            inferred_below_threshold=len(below_threshold),
        )
        return ResolutionResult(
            input_graph=graph,
            consistent_graph=consistent,
            expanded_graph=expanded,
            removed_facts=removed,
            inferred_facts=tuple(inferred),
            violations=violations,
            conflicting_facts=conflicting,
            solution=solution,
            statistics=statistics,
            inferred_below_threshold=tuple(below_threshold),
        )


class SharedResolver:
    """One translator + one solver back-end, reused across many resolves.

    The per-request serving pipeline of :meth:`TeCoRe.resolve_batch` and of
    the ``tecore serve`` micro-batcher: the rule/constraint tuples, the
    translator, and the (optionally decomposition-wrapped) back-end are
    built once, and :meth:`resolve` is then bit-identical to
    :meth:`TeCoRe.resolve` for every graph — the translator is stateless
    across graphs and every registered back-end re-seeds per solve.

    **Thread confinement:** instances are not thread-safe (the decomposed
    wrapper and some back-ends keep per-solve scratch state).  Use one
    instance per thread, or serialise calls — the serving layer funnels all
    traffic through the micro-batcher's single flush worker.
    """

    def __init__(self, system: TeCoRe) -> None:
        self._system = system
        system._enforce_lint()
        self._translator = TecoreTranslator(max_rounds=system.max_rounds, engine=system.engine)
        self._rules = tuple(system.rules)
        self._constraints = tuple(system.constraints)
        self._backend = system._make_backend()
        #: Number of graphs resolved through this pipeline (serving counter).
        self.resolves = 0

    @property
    def solver(self) -> str:
        return self._system.solver

    def resolve(self, graph: TemporalKnowledgeGraph) -> ResolutionResult:
        """Resolve one graph through the shared pipeline."""
        started = time.perf_counter()
        translated = self._translator.translate(
            graph, self._rules, self._constraints, solver=self._system.solver
        )
        solution = self._backend.solve(translated.program)
        self.resolves += 1
        return self._system._build_result(graph, translated, solution, started)

    def resolve_many(self, graphs: Iterable[TemporalKnowledgeGraph]) -> BatchResolution:
        """Resolve graphs in order, as one :class:`BatchResolution`."""
        batch_started = time.perf_counter()
        results = tuple(self.resolve(graph) for graph in graphs)
        return BatchResolution(
            results=results,
            runtime_seconds=time.perf_counter() - batch_started,
        )


# --------------------------------------------------------------------------- #
# Module-level convenience functions
# --------------------------------------------------------------------------- #
def resolve(
    graph: TemporalKnowledgeGraph,
    rules: Iterable[TemporalRule] = (),
    constraints: Iterable[TemporalConstraint] = (),
    solver: str = "nrockit",
    threshold: float | None = None,
    decompose: bool = False,
    jobs: int = 1,
    kernel: str = "object",
    **solver_options,
) -> ResolutionResult:
    """One-shot conflict resolution without building a :class:`TeCoRe` object."""
    system = TeCoRe(
        rules=list(rules),
        constraints=list(constraints),
        solver=solver,
        threshold=threshold,
        solver_options=solver_options,
        decompose=decompose,
        jobs=jobs,
        kernel=kernel,
    )
    return system.resolve(graph)


def resolve_batch(
    graphs: Iterable[TemporalKnowledgeGraph],
    rules: Iterable[TemporalRule] = (),
    constraints: Iterable[TemporalConstraint] = (),
    solver: str = "nrockit",
    threshold: float | None = None,
    decompose: bool = False,
    jobs: int = 1,
    incremental: bool = False,
    kernel: str = "object",
    **solver_options,
) -> BatchResolution:
    """One-shot batched conflict resolution over many graphs."""
    system = TeCoRe(
        rules=list(rules),
        constraints=list(constraints),
        solver=solver,
        threshold=threshold,
        solver_options=solver_options,
        decompose=decompose,
        jobs=jobs,
        kernel=kernel,
    )
    return system.resolve_batch(graphs, incremental=incremental)


def detect_conflicts(
    graph: TemporalKnowledgeGraph,
    constraints: Iterable[TemporalConstraint],
) -> Sequence:
    """One-shot conflict detection (the Figure 8 counters)."""
    system = TeCoRe(constraints=list(constraints))
    return system.detect_conflicts(graph)
