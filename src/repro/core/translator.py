"""The TeCoRe translator.

"The translator parses data, inference rules, and temporal constraints, and
transforms those into the specific syntax of the chosen solver (e.g. nRockIt,
PSL).  Special care is taken to verify that the input adheres to the
expressivity of the solver." (paper, Section 2.1)

In this reproduction both solver families consume the same ground program, so
the translator's jobs are:

1. ground the UTKG with the rules and constraints (shared front-end);
2. verify the result against the chosen solver's expressivity;
3. optionally emit a human-readable program listing in the style of the
   target system (an ``.mln``-like listing for nRockIt, a rule listing for
   PSL) — useful for debugging and for the demo walk-through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..kg import TemporalKnowledgeGraph
from ..logic import (
    GroundingResult,
    TemporalConstraint,
    TemporalRule,
    make_grounder,
)
from ..solvers import check_expressivity
from .registry import solver_capabilities, solver_family


@dataclass
class TranslatedProgram:
    """Output of the translator: a solver-ready ground program plus metadata."""

    solver_name: str
    family: str
    grounding: GroundingResult
    rules: tuple[TemporalRule, ...] = field(default_factory=tuple)
    constraints: tuple[TemporalConstraint, ...] = field(default_factory=tuple)

    @property
    def program(self):
        return self.grounding.program

    # ------------------------------------------------------------------ #
    # Program listings in the flavour of the target system
    # ------------------------------------------------------------------ #
    def template_listing(self) -> str:
        """First-order (template) listing: weighted rules and constraints."""
        lines = [f"// TeCoRe program for {self.solver_name} ({self.family})"]
        for rule in self.rules:
            lines.append(str(rule))
        for constraint in self.constraints:
            lines.append(str(constraint))
        return "\n".join(lines)

    def ground_listing(self, limit: int | None = 50) -> str:
        """Ground-clause listing (truncated to ``limit`` clauses by default)."""
        program = self.program
        lines = [f"// {program.num_atoms} ground atoms, {program.num_clauses} ground clauses"]
        clauses = program.clauses if limit is None else program.clauses[:limit]
        for clause in clauses:
            lines.append(str(clause))
        if limit is not None and program.num_clauses > limit:
            lines.append(f"// ... {program.num_clauses - limit} more clauses")
        return "\n".join(lines)

    def evidence_listing(self, limit: int | None = 50) -> str:
        """Evidence listing (the ``.db`` file of an MLN system)."""
        atoms = self.program.evidence_atoms()
        shown = atoms if limit is None else atoms[:limit]
        lines = [f"// {len(atoms)} evidence atoms"]
        lines += [str(atom.fact) for atom in shown]
        if limit is not None and len(atoms) > limit:
            lines.append(f"// ... {len(atoms) - limit} more atoms")
        return "\n".join(lines)

    def summary(self) -> dict[str, int]:
        summary = self.program.summary()
        summary["rule_templates"] = len(self.rules)
        summary["constraint_templates"] = len(self.constraints)
        return summary


class TecoreTranslator:
    """Grounds and validates inputs for a chosen solver.

    ``engine`` selects the grounding engine ("indexed" — the semi-naive
    default — "vectorized" (columnar numpy joins), "naive" (the reference
    rescan-everything implementation), or "incremental"; all emit identical
    programs).  A translator instance is reusable across
    graphs: solver capabilities are resolved through the registry's cached
    probes, which is what makes :meth:`repro.core.TeCoRe.resolve_batch`
    cheap per graph.
    """

    def __init__(
        self, max_rounds: int = 5, keep_bias: float = 1e-3, engine: str = "indexed"
    ) -> None:
        self.max_rounds = max_rounds
        self.keep_bias = keep_bias
        self.engine = engine

    def translate(
        self,
        graph: TemporalKnowledgeGraph,
        rules: Iterable[TemporalRule],
        constraints: Iterable[TemporalConstraint],
        solver: str = "nrockit",
    ) -> TranslatedProgram:
        """Ground ``graph`` with the rules/constraints and validate for ``solver``."""
        rules = tuple(rules)
        constraints = tuple(constraints)
        family = solver_family(solver)
        grounder = make_grounder(
            self.engine,
            graph,
            rules=rules,
            constraints=constraints,
            max_rounds=self.max_rounds,
            keep_bias=self.keep_bias,
        )
        grounding = grounder.ground()
        # Expressivity verification against the actual back-end capabilities.
        check_expressivity(grounding.program, solver_capabilities(solver))
        return TranslatedProgram(
            solver_name=solver,
            family=family,
            grounding=grounding,
            rules=rules,
            constraints=constraints,
        )

    def lint_program(
        self,
        rules: Iterable[TemporalRule],
        constraints: Iterable[TemporalConstraint],
        graph: TemporalKnowledgeGraph | None = None,
    ):
        """Static analysis of the rule program *before* any grounding.

        Returns the :class:`~repro.analysis.LintReport` of the full analyzer
        (safety, schema, temporal satisfiability, hard-conflict coupling,
        duplicates, vectorization-coverage lints).  Passing ``graph`` enables
        the graph-dependent checks (unknown predicates, grounding estimate).
        """
        from ..analysis import analyze_program

        return analyze_program(tuple(rules), tuple(constraints), graph)

    def detect_conflicts(
        self,
        graph: TemporalKnowledgeGraph,
        constraints: Iterable[TemporalConstraint],
    ) -> GroundingResult:
        """Constraint-only grounding (conflict detection without inference)."""
        grounder = make_grounder(
            self.engine,
            graph,
            rules=(),
            constraints=tuple(constraints),
            derive_facts=False,
            keep_bias=self.keep_bias,
        )
        return grounder.ground()
