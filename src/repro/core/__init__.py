"""TeCoRe core: translator, solver registry, resolution facade, reports."""

from .registry import (
    ARRAY_VARIANTS,
    SolverEntry,
    available_solvers,
    describe_solvers,
    make_solver,
    register_solver,
    resolve_kernel,
    solver_capabilities,
    solver_family,
)
from .report import render_comparison, render_graph_summary, render_report
from .result import (
    BatchResolution,
    DeltaStatistics,
    ResolutionResult,
    ResolutionStatistics,
)
from .session import ComponentSolutionCache, ResolutionSession
from .tecore import SharedResolver, TeCoRe, detect_conflicts, resolve, resolve_batch
from .threshold import ThresholdFilter, sweep_thresholds
from .translator import TecoreTranslator, TranslatedProgram

__all__ = [
    "ARRAY_VARIANTS",
    "BatchResolution",
    "ComponentSolutionCache",
    "DeltaStatistics",
    "ResolutionResult",
    "ResolutionSession",
    "ResolutionStatistics",
    "SharedResolver",
    "SolverEntry",
    "TeCoRe",
    "TecoreTranslator",
    "ThresholdFilter",
    "TranslatedProgram",
    "available_solvers",
    "describe_solvers",
    "detect_conflicts",
    "make_solver",
    "register_solver",
    "render_comparison",
    "render_graph_summary",
    "render_report",
    "resolve",
    "resolve_batch",
    "resolve_kernel",
    "solver_capabilities",
    "solver_family",
    "sweep_thresholds",
]
