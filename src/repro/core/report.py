"""Text reports mirroring the demo's result panels.

The web UI displays result statistics and browsable lists of consistent and
conflicting statements (Figure 8); :func:`render_report` produces the same
information as plain text for the CLI, the examples and the benchmark logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..kg import TemporalFact, TemporalKnowledgeGraph, graph_stats
from .result import ResolutionResult


def _format_table(rows: Sequence[Sequence[object]], headers: Sequence[str]) -> str:
    """Minimal fixed-width table renderer (no external dependencies)."""
    columns = [[str(header)] + [str(row[i]) for row in rows] for i, header in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    def render_row(cells: Sequence[object]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))
    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines += [render_row(row) for row in rows]
    return "\n".join(lines)


def render_graph_summary(graph: TemporalKnowledgeGraph) -> str:
    """Dataset summary: overall counts plus the per-predicate inventory table."""
    stats = graph_stats(graph)
    span = f"[{stats.time_span[0]},{stats.time_span[1]}]" if stats.time_span else "-"
    header = (
        f"UTKG {stats.name!r}: {stats.fact_count} facts, {stats.entity_count} entities, "
        f"{stats.predicate_count} predicates, span {span}, "
        f"mean confidence {stats.mean_confidence:.2f}"
    )
    rows = [
        [
            row["predicate"],
            row["facts"],
            row["subjects"],
            row["objects"],
            row["mean_confidence"],
            row["span"],
        ]
        for row in stats.as_rows()
    ]
    table = _format_table(rows, ["predicate", "facts", "subjects", "objects", "conf", "span"])
    return f"{header}\n\n{table}"


def _fact_lines(facts: Iterable[TemporalFact], limit: int | None) -> list[str]:
    facts = list(facts)
    shown = facts if limit is None else facts[:limit]
    lines = [f"  {fact}" for fact in shown]
    if limit is not None and len(facts) > limit:
        lines.append(f"  ... {len(facts) - limit} more")
    return lines


def render_report(result: ResolutionResult, limit: int | None = 20) -> str:
    """The statistics + browsable-statements panel for one resolution run."""
    stats = result.statistics
    lines = [
        f"TeCoRe debugging report for UTKG {result.input_graph.name!r}",
        f"  solver                : {stats.solver}",
        f"  runtime               : {stats.runtime_seconds * 1000:.1f} ms",
        f"  input facts           : {stats.input_facts}",
        f"  conflicting facts     : {stats.conflicting_facts} "
        f"({stats.conflict_rate * 100:.1f}% of input)",
        f"  constraint violations : {stats.violations} "
        f"({stats.hard_violations} hard, {stats.soft_violations} soft)",
        f"  removed facts         : {stats.removed_facts} "
        f"({stats.removal_rate * 100:.1f}% of input)",
        f"  consistent facts      : {stats.consistent_facts}",
        f"  inferred facts        : {stats.inferred_facts}"
        + (
            f" (threshold {stats.threshold}: {stats.inferred_below_threshold} filtered out)"
            if stats.threshold is not None
            else ""
        ),
        f"  ground network        : {stats.ground_atoms} atoms, {stats.ground_clauses} clauses",
        f"  MAP objective         : {stats.objective:.3f}",
    ]
    if result.violations_by_constraint():
        lines.append("  violations by constraint:")
        for name, count in sorted(result.violations_by_constraint().items()):
            lines.append(f"    {name}: {count}")
    if result.removed_facts:
        lines.append("removed (conflicting) statements:")
        lines += _fact_lines(result.removed_facts, limit)
    if result.inferred_facts:
        lines.append("newly inferred statements:")
        lines += _fact_lines(result.inferred_facts, limit)
    lines.append("consistent statements:")
    lines += _fact_lines(result.consistent_graph, limit)
    return "\n".join(lines)


def render_comparison(results: Sequence[ResolutionResult]) -> str:
    """Side-by-side table of several resolution runs (e.g. nRockIt vs nPSL)."""
    rows = [
        [
            result.statistics.solver,
            result.statistics.input_facts,
            result.statistics.removed_facts,
            result.statistics.inferred_facts,
            result.statistics.conflicting_facts,
            f"{result.statistics.objective:.2f}",
            f"{result.statistics.runtime_seconds * 1000:.0f}",
        ]
        for result in results
    ]
    return _format_table(
        rows,
        ["solver", "facts", "removed", "inferred", "conflicting", "objective", "ms"],
    )
