"""Resolution results and debugging statistics.

After MAP inference the demo shows "the maximal consistent subset of the
utkg, and displays statistics (e.g., number of noisy facts removed) about the
debugging process", with browsable consistent and conflicting statements
(Figure 8).  :class:`ResolutionResult` is that output as a data structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..kg import TemporalFact, TemporalKnowledgeGraph
from ..logic import ConstraintViolation
from ..solvers import MAPSolution, SolverStats


@dataclass(frozen=True, slots=True)
class ResolutionStatistics:
    """The numbers shown in the demo's statistics panel."""

    input_facts: int
    consistent_facts: int
    removed_facts: int
    inferred_facts: int
    conflicting_facts: int
    violations: int
    hard_violations: int
    soft_violations: int
    objective: float
    runtime_seconds: float
    solver: str
    ground_atoms: int
    ground_clauses: int
    threshold: float | None = None
    inferred_below_threshold: int = 0

    @property
    def removal_rate(self) -> float:
        """Fraction of input facts removed by the repair."""
        return self.removed_facts / self.input_facts if self.input_facts else 0.0

    @property
    def conflict_rate(self) -> float:
        """Fraction of input facts involved in at least one conflict."""
        return self.conflicting_facts / self.input_facts if self.input_facts else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "input_facts": self.input_facts,
            "consistent_facts": self.consistent_facts,
            "removed_facts": self.removed_facts,
            "inferred_facts": self.inferred_facts,
            "conflicting_facts": self.conflicting_facts,
            "violations": self.violations,
            "hard_violations": self.hard_violations,
            "soft_violations": self.soft_violations,
            "objective": self.objective,
            "runtime_seconds": self.runtime_seconds,
            "solver": self.solver,
            "ground_atoms": self.ground_atoms,
            "ground_clauses": self.ground_clauses,
            "removal_rate": self.removal_rate,
            "conflict_rate": self.conflict_rate,
            "threshold": self.threshold,
            "inferred_below_threshold": self.inferred_below_threshold,
        }


@dataclass(frozen=True, slots=True)
class DeltaStatistics:
    """What one incremental :meth:`ResolutionSession.apply` step did.

    The serving counters of the incremental engine: how big the edit was,
    how much of the ground program it touched, and how much of the MAP solve
    the component cache avoided.
    """

    facts_added: int = 0
    facts_removed: int = 0
    facts_updated: int = 0
    clauses_added: int = 0
    clauses_retracted: int = 0
    components_total: int = 0
    components_dirty: int = 0
    components_cached: int = 0
    warm_started: int = 0
    grounding_seconds: float = 0.0
    solve_seconds: float = 0.0

    @property
    def facts_changed(self) -> int:
        """Total number of evidence statements touched by the edit."""
        return self.facts_added + self.facts_removed + self.facts_updated

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of components answered from the solution cache."""
        if not self.components_total:
            return 0.0
        return self.components_cached / self.components_total

    def as_dict(self) -> dict[str, Any]:
        return {
            "facts_added": self.facts_added,
            "facts_removed": self.facts_removed,
            "facts_updated": self.facts_updated,
            "facts_changed": self.facts_changed,
            "clauses_added": self.clauses_added,
            "clauses_retracted": self.clauses_retracted,
            "components_total": self.components_total,
            "components_dirty": self.components_dirty,
            "components_cached": self.components_cached,
            "cache_hit_rate": self.cache_hit_rate,
            "warm_started": self.warm_started,
            "grounding_seconds": self.grounding_seconds,
            "solve_seconds": self.solve_seconds,
        }


@dataclass(frozen=True)
class ResolutionResult:
    """Everything produced by one TeCoRe resolution run.

    Attributes
    ----------
    input_graph:
        The UTKG handed to :meth:`TeCoRe.resolve`.
    consistent_graph:
        The most probable conflict-free subset of the input (evidence facts
        kept by the MAP state).
    expanded_graph:
        ``consistent_graph`` plus the inferred facts the MAP state accepted
        (after threshold filtering) — the paper's G\\ :sub:`inferred`.
    removed_facts / inferred_facts:
        Evidence facts dropped, and derived facts added, by the MAP state.
    violations / conflicting_facts:
        The grounded constraint violations found in the *input* and the
        distinct input facts participating in them (Figure 8's counters).
    solution:
        The raw MAP solution (assignment, objective, solver statistics).
    statistics:
        Aggregated numbers for the statistics panel.
    delta:
        For results produced by an incremental
        :class:`~repro.core.session.ResolutionSession`, the edit and cache
        statistics of the step that produced this result; ``None`` for
        one-shot resolutions.
    """

    input_graph: TemporalKnowledgeGraph
    consistent_graph: TemporalKnowledgeGraph
    expanded_graph: TemporalKnowledgeGraph
    removed_facts: tuple[TemporalFact, ...]
    inferred_facts: tuple[TemporalFact, ...]
    violations: tuple[ConstraintViolation, ...]
    conflicting_facts: tuple[TemporalFact, ...]
    solution: MAPSolution
    statistics: ResolutionStatistics
    inferred_below_threshold: tuple[TemporalFact, ...] = field(default_factory=tuple)
    delta: DeltaStatistics | None = None

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def solver_stats(self) -> SolverStats:
        return self.solution.stats

    @property
    def objective(self) -> float:
        return self.solution.objective

    def kept(self, fact: TemporalFact) -> bool:
        """True when ``fact`` (an input fact) survived the repair."""
        return fact in self.consistent_graph

    def removed(self, fact: TemporalFact) -> bool:
        """True when ``fact`` was removed by the repair."""
        removed_keys = {removed.statement_key for removed in self.removed_facts}
        return fact.statement_key in removed_keys

    def violations_by_constraint(self) -> dict[str, int]:
        """Number of grounded violations per constraint name."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.constraint] = counts.get(violation.constraint, 0) + 1
        return counts

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly summary (used by the CLI and benchmark harnesses)."""
        summary = {
            "graph": self.input_graph.name,
            "statistics": self.statistics.as_dict(),
            "violations_by_constraint": self.violations_by_constraint(),
            "removed_facts": [str(fact) for fact in self.removed_facts],
            "inferred_facts": [str(fact) for fact in self.inferred_facts],
        }
        if self.delta is not None:
            summary["delta"] = self.delta.as_dict()
        return summary


@dataclass(frozen=True)
class BatchResolution:
    """Results of resolving many UTKGs with one shared translator/solver.

    Produced by :meth:`repro.core.TeCoRe.resolve_batch` — the heavy-traffic
    serving shape, where the rule/constraint program and the solver back-end
    are built once and reused for every incoming graph.

    Attributes
    ----------
    results:
        One :class:`ResolutionResult` per input graph, in input order.
    runtime_seconds:
        Wall-clock time for the whole batch (shared setup included).
    """

    results: tuple[ResolutionResult, ...]
    runtime_seconds: float

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> ResolutionResult:
        return self.results[index]

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_input_facts(self) -> int:
        return sum(result.statistics.input_facts for result in self.results)

    @property
    def total_removed_facts(self) -> int:
        return sum(result.statistics.removed_facts for result in self.results)

    @property
    def total_inferred_facts(self) -> int:
        return sum(result.statistics.inferred_facts for result in self.results)

    @property
    def total_violations(self) -> int:
        return sum(result.statistics.violations for result in self.results)

    @property
    def graphs_per_second(self) -> float:
        """Batch serving throughput (graphs resolved per wall-clock second)."""
        if self.runtime_seconds <= 0:
            return 0.0
        return len(self.results) / self.runtime_seconds

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly aggregate summary plus per-graph statistics."""
        return {
            "graphs": len(self.results),
            "runtime_seconds": self.runtime_seconds,
            "graphs_per_second": self.graphs_per_second,
            "total_input_facts": self.total_input_facts,
            "total_removed_facts": self.total_removed_facts,
            "total_inferred_facts": self.total_inferred_facts,
            "total_violations": self.total_violations,
            "results": [result.as_dict() for result in self.results],
        }
