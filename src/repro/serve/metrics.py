"""Thread-safe serving metrics: request counters and latency percentiles.

Every endpoint observation lands in a :class:`LatencyRecorder` — a bounded
ring of recent latencies plus monotonic counters — and :class:`ServiceMetrics`
aggregates one recorder per endpoint into the ``GET /stats`` payload.  The
percentiles are computed over a sliding window (the last ``window`` samples)
with the nearest-rank method, which is what most serving dashboards report
and keeps memory constant under sustained traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

#: Latency percentiles reported by ``GET /stats``.
PERCENTILES = (50, 90, 99)


class LatencyRecorder:
    """Counters plus a bounded window of recent request latencies."""

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float, error: bool = False) -> None:
        with self._lock:
            self.count += 1
            self.total_seconds += seconds
            if error:
                self.errors += 1
            self._latencies.append(seconds)

    def clear(self) -> None:
        """Reset counters and drop the latency window.

        Mirrors ``ComponentSolutionCache.clear``: a generation reset must
        not leak the previous generation's counters into ``mean_ms`` or the
        percentiles (long-soak runs clear between phases).
        """
        with self._lock:
            self._latencies.clear()
            self.count = 0
            self.errors = 0
            self.total_seconds = 0.0

    def percentiles(self) -> dict[str, float]:
        """Nearest-rank percentiles over the recent-latency window, in ms."""
        with self._lock:
            window = sorted(self._latencies)
        if not window:
            return {f"p{p}_ms": 0.0 for p in PERCENTILES}
        return {
f"p{p}_ms": round(window[min(len(window) - 1, (p * len(window)) // 100)] * 1000, 3)
            for p in PERCENTILES
        }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            count, errors, total = self.count, self.errors, self.total_seconds
        summary: dict[str, Any] = {
            "requests": count,
            "errors": errors,
            "mean_ms": round(total / count * 1000, 3) if count else 0.0,
        }
        summary.update(self.percentiles())
        return summary


class ServiceMetrics:
    """Per-endpoint latency recorders for the whole service."""

    def __init__(self, window: int = 1024) -> None:
        self._window = window
        self._lock = threading.Lock()
        self._recorders: dict[str, LatencyRecorder] = {}

    def recorder(self, endpoint: str) -> LatencyRecorder:
        with self._lock:
            recorder = self._recorders.get(endpoint)
            if recorder is None:
                recorder = self._recorders[endpoint] = LatencyRecorder(self._window)
            return recorder

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        self.recorder(endpoint).observe(seconds, error=error)

    def clear(self) -> None:
        """Reset every endpoint recorder (the recorder map is kept)."""
        with self._lock:
            recorders = list(self._recorders.values())
        for recorder in recorders:
            recorder.clear()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            recorders = dict(self._recorders)
        return {name: recorder.snapshot() for name, recorder in sorted(recorders.items())}
