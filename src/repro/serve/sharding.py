"""Sharded multi-process serving: one front-end over N resolver workers.

``tecore serve --workers N`` splits the serving tier HTAP-style (the
Polynesia architecture from the related-work survey): a **front-end**
process owns the listening socket, the write-ahead log, and admission
control, while ``N`` **resolver worker** processes (forked via
:mod:`multiprocessing`, see :mod:`repro.serve.worker`) each hold a session
shard backed by the incremental grounder, with the micro-batcher running
per worker::

                       ┌────────────────────────────┐
      HTTP clients ──▶ │ front-end                  │
                       │  socket · WAL · admission  │
                       │  consistent-hash ring      │
                       └──┬─────────┬─────────┬─────┘
                    pipe  │         │         │   (change-stream edits,
                          ▼         ▼         ▼    snapshot keys, restores)
                       worker 0  worker 1  worker 2
                       batcher   batcher   batcher
                       sessions  sessions  sessions

Routing
-------
* Sessions are placed by **consistent hashing** on the session id
  (:class:`ConsistentHashRing`), so every edit/read/delete of a session
  lands on the same worker — the grounder state it needs lives exactly
  there, and a ring change moves only ~1/N of the sessions.
* One-shot ``/resolve`` requests fan out **round-robin** over the ready
  workers; each worker's own micro-batcher coalesces and caches them.
  Repeated base-graph documents are replaced by a **snapshot key** once a
  worker has seen them (the worker-side LRU answers the internal
  :data:`~repro.serve.worker.SNAPSHOT_MISS` when it has not), and the
  front-end keeps its own content-keyed LRU of served responses
  (``config.response_cache``, the same bound the in-process batcher uses)
  so a hot-key repeat skips the worker round-trip entirely — resolution
  is deterministic and ``/resolve`` is stateless, which is exactly the
  argument the single-process response cache rests on.

Durability and crash recovery
-----------------------------
The WAL protocol is unchanged (log-before-apply, see
:mod:`repro.serve.server`): the front-end appends the mutation record,
*then* forwards the request to the owning worker.  A per-session front-end
lock keeps the per-session log order equal to the apply order.  When a
worker dies (e.g. SIGKILL), the monitor thread respawns it and replays
**only its shard**: the live log is folded
(:func:`repro.serve.recovery.fold_records`), the folds owned by the dead
worker's ring node are shipped over the fresh pipe as ``restore``
messages, and only after replay does the front-end re-admit traffic to the
worker — responses are bit-identical per
:func:`~repro.serve.protocol.stable_view` because replay goes through the
same ``session.apply`` delta path that served the edits live.

Failure mapping (what clients observe):

=============================================  ===========================
worker dead/replaying before the WAL append    503 + Retry-After (no
                                               record, nothing applied)
worker died *after* the append (mutating op)   connection dropped with no
                                               response — the operation is
                                               pending; recovery replays
                                               the logged record
one-shot resolve failure                       503 (stateless, retryable)
=============================================  ===========================

The dropped connection is deliberate: a 503 would promise "not applied"
and a 200 would promise "applied", but recovery decides later.  The
serializability checker's pending-operation semantics admit exactly this
("a pending edit may take effect at any legal point of the serialization,
or not at all"), and the chaos clients never resend a mutating request
whose connection dropped.

Session capacity is enforced by **admission** here (a create beyond
``max_sessions`` answers 503) rather than by the single-process LRU
eviction — a front-end that silently forgets sessions it logged could not
keep its routing table authoritative.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import secrets
import threading
import time
from bisect import bisect_right, insort
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Iterable, Mapping

from ..core.tecore import TeCoRe
from ..errors import TecoreError
from ..kg.io import json_io
from .batcher import RequestDeadlineExceeded, ServiceOverloadedError
from .protocol import ProtocolError, decode_edits, decode_graph, decode_json
from .recovery import RecoveryReport, fold_records
from .server import _SESSION_ROUTE, DropConnection, ServerConfig, ServiceCore
from .sessions import UnknownSessionError
from .wal import WriteAheadLog, scan_wal_dir
from .worker import SNAPSHOT_MISS, worker_main

#: Virtual nodes per worker on the hash ring.
RING_REPLICAS = 64

#: Snapshot keys remembered per worker on the front-end side (mirrors the
#: worker's own LRU size; a stale entry just costs one resend round-trip).
SNAPSHOT_KEYS_PER_WORKER = 64

#: Grace added to worker call timeouts over the request's own budget, so
#: the worker's in-band 504 (which carries the precise error) wins the race
#: against the front-end's pipe timeout.
CALL_TIMEOUT_GRACE = 5.0

#: Bound on one shard replay (initial resolves plus edit replays).
RESTORE_TIMEOUT = 300.0


class WorkerDiedError(TecoreError):
    """A resolver worker exited (or its pipe broke) mid-conversation."""


class ConsistentHashRing:
    """Consistent hashing of string keys onto named nodes.

    Each node owns ``replicas`` points on a 64-bit ring (blake2b); a key
    routes to the first point at or after its own hash, wrapping around.
    Adding or removing one node moves only the keys of the arcs that node
    owns — about ``1/len(nodes)`` of the key space — which is what keeps a
    worker-count change from reshuffling every session (the rebalance
    property the unit tests pin).  Not thread-safe by itself; the sharded
    service builds it once and never mutates it while serving.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = RING_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            insort(self._points, (self._hash(f"{node}#{replica}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def lookup(self, key: str) -> str:
        """The node owning ``key`` (deterministic for a fixed node set)."""
        if not self._points:
            raise ValueError("cannot look up a key on an empty ring")
        index = bisect_right(self._points, (self._hash(key), ""))
        return self._points[index % len(self._points)][1]


class _PendingCall:
    """One in-flight request to a worker, awaited by a front-end thread."""

    __slots__ = ("event", "status", "payload", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.status: int | None = None
        self.payload: dict[str, Any] | None = None
        self.failed = False


class _SessionRoute:
    """Front-end routing entry: owning ring node plus the ordering lock.

    The lock serialises mutating requests to one session *before* the WAL
    append, so the per-session record order in the log is exactly the
    order the worker applies them — the invariant shard replay relies on.
    """

    __slots__ = ("node", "lock")

    def __init__(self, node: str) -> None:
        self.node = node
        self.lock = threading.Lock()


class WorkerHandle:
    """One resolver worker process and its front-end bookkeeping.

    All hand-offs go through :meth:`call`: the caller registers a pending
    slot, the dedicated reader thread distributes responses by request id.
    ``alive`` tracks the pipe/process; ``ready`` additionally gates client
    traffic (False while a respawned worker replays its shard).
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.node = f"w{index}"
        self.process: Any = None
        self.generation = 0
        self._conn: Any = None
        self._lock = threading.Lock()
        self._calls: dict[int, _PendingCall] = {}
        self._request_ids = itertools.count()
        self.alive = False
        self.ready = False
        self.inflight = 0
        self._snapshot_keys: "dict[str, None]" = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, ctx: Any, system: TeCoRe, config: ServerConfig, inherited: list[Any]) -> None:
        """Fork a fresh worker process and begin reading its pipe."""
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=worker_main,
            # The child also inherits its *own* parent-side end (the object
            # exists before the fork); it must close that copy too, or EOF
            # would never reach it when the front-end dies.
            args=(child_conn, inherited + [parent_conn], system, config, self.index),
            name=f"tecore-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with self._lock:
            self._conn = parent_conn
            self.process = process
            self.generation += 1
            self._snapshot_keys = {}
            self.alive = True
            self.ready = False
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent_conn,),
            name=f"tecore-worker-{self.index}-reader",
            daemon=True,
        )
        reader.start()

    @property
    def connection(self) -> Any:
        with self._lock:
            return self._conn

    @property
    def pid(self) -> int | None:
        process = self.process
        return process.pid if process is not None else None

    def mark_ready(self) -> None:
        with self._lock:
            if self.alive:
                self.ready = True

    def mark_dead(self, conn: Any = None) -> None:
        """Fail every pending call and stop admitting traffic.

        ``conn`` guards against a stale reader of a previous generation
        declaring the *respawned* worker dead.
        """
        with self._lock:
            if conn is not None and conn is not self._conn:
                return
            self.alive = False
            self.ready = False
            calls, self._calls = self._calls, {}
        for call in calls.values():
            call.failed = True
            call.event.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: ask the worker to exit, then make sure."""
        process = self.process
        try:
            self.call("shutdown", {}, timeout=timeout)
        except TecoreError:
            pass
        self.mark_dead()
        if process is not None:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        with self._lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed is fine
                pass

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #
    def call(
        self, op: str, payload: Mapping[str, Any], timeout: float | None = None
    ) -> tuple[int, dict[str, Any]]:
        """Send one op and await its response; raises on death or timeout."""
        pending = _PendingCall()
        with self._lock:
            if not self.alive:
                raise WorkerDiedError(f"worker {self.index} is not running")
            request_id = next(self._request_ids)
            self._calls[request_id] = pending
            try:
                self._conn.send((request_id, op, dict(payload)))
            except (OSError, ValueError, BrokenPipeError) as exc:
                del self._calls[request_id]
                self.alive = False
                self.ready = False
                raise WorkerDiedError(f"worker {self.index} pipe broke: {exc}") from exc
        if not pending.event.wait(timeout):
            with self._lock:
                self._calls.pop(request_id, None)
            raise RequestDeadlineExceeded(
                f"worker {self.index} did not answer {op!r} within {timeout:g}s"
            )
        if pending.failed:
            raise WorkerDiedError(f"worker {self.index} died mid-request")
        assert pending.status is not None and pending.payload is not None
        return pending.status, pending.payload

    def _read_loop(self, conn: Any) -> None:
        """Distribute worker responses to their pending calls (one thread)."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            request_id, status, payload = message
            with self._lock:
                pending = self._calls.pop(request_id, None)
            if pending is not None:
                pending.status = status
                pending.payload = payload
                pending.event.set()
        self.mark_dead(conn)

    # ------------------------------------------------------------------ #
    # Admission and snapshot bookkeeping
    # ------------------------------------------------------------------ #
    def admit(self, limit: int) -> bool:
        """Reserve one in-flight resolve slot (False when saturated)."""
        with self._lock:
            if not (self.alive and self.ready) or self.inflight >= limit:
                return False
            self.inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            self.inflight -= 1

    def knows_snapshot(self, key: str) -> bool:
        with self._lock:
            return key in self._snapshot_keys

    def learn_snapshot(self, key: str) -> None:
        with self._lock:
            self._snapshot_keys[key] = None
            while len(self._snapshot_keys) > SNAPSHOT_KEYS_PER_WORKER:
                self._snapshot_keys.pop(next(iter(self._snapshot_keys)))

    def forget_snapshot(self, key: str) -> None:
        with self._lock:
            self._snapshot_keys.pop(key, None)


def _sum_counters(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Key-wise sum of numeric counters (rates are recomputed by callers)."""
    totals: dict[str, Any] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if key.endswith("_rate"):
                continue
            totals[key] = totals.get(key, 0) + value
    return totals


class ShardedResolutionService(ServiceCore):
    """The multi-process front-end behind ``tecore serve --workers N``.

    Drop-in for :class:`~repro.serve.server.ResolutionService` under
    :class:`~repro.serve.server.TecoreHTTPServer`: same endpoints, same
    wire format, same WAL protocol — but every resolve/edit executes in
    one of the forked resolver workers.  See the module docstring for the
    architecture and failure semantics.
    """

    def __init__(
        self,
        system: TeCoRe,
        config: ServerConfig | None = None,
        recorder: Any = None,
        injector: Any = None,
    ) -> None:
        super().__init__(system, config, recorder=recorder, injector=injector)
        if self.config.workers < 1:
            raise ValueError(
                f"sharded service needs workers >= 1, got {self.config.workers}"
            )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise TecoreError(
                "sharded serving requires the 'fork' multiprocessing start "
                "method; use --workers 0 on this platform"
            ) from exc
        # Workers run batcher/pool shards only: no WAL (durability is the
        # front-end's), no second lint pass, and workers=0 so a worker can
        # never recursively shard.
        self._worker_config = replace(self.config, wal_dir=None, lint="off", workers=0)
        self.handles = [WorkerHandle(index) for index in range(self.config.workers)]
        self._by_node = {handle.node: handle for handle in self.handles}
        self.ring = ConsistentHashRing(handle.node for handle in self.handles)
        self._routes: dict[str, _SessionRoute] = {}
        self._routes_lock = threading.Lock()
        self._round_robin = itertools.count()
        # Front-end response cache: body bytes → served 200 payload.  Keyed
        # stricter than the workers' graph-content key (the raw body also
        # captures include_graphs etc.), so a hit is always bit-identical
        # to what the worker would re-serve.
        self._responses: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self._responses_lock = threading.Lock()
        self.response_cache_hits = 0
        self.response_cache_misses = 0
        self._stopping = False
        self._monitor_wake = threading.Event()
        self.respawns_total = 0
        self.dropped_connections_total = 0
        self.snapshot_omitted_total = 0
        self.snapshot_resent_total = 0
        self.last_replay: dict[str, Any] | None = None

        # Scan the log *before* opening it for appends (mirrors the
        # single-process boot order), then fork workers and replay each
        # shard into its owner over the pipes.
        boot_records: list[dict[str, Any]] = []
        boot_torn = False
        has_log = False
        if self.config.wal_dir is not None:
            boot_records, boot_torn, segment = scan_wal_dir(self.config.wal_dir)
            has_log = segment is not None
            self.wal = WriteAheadLog(
                self.config.wal_dir,
                fsync_policy=self.config.fsync_policy,
                fsync_batch=self.config.fsync_batch,
                fsync_interval=self.config.fsync_interval,
                injector=injector,
            )
        for handle in self.handles:
            self._spawn(handle)
        if has_log:
            self.recovery = self._replay_boot(boot_records, boot_torn)
        else:
            for handle in self.handles:
                handle.mark_ready()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="tecore-shard-monitor", daemon=True
        )
        self._monitor.start()

    def close(self) -> None:
        self._stopping = True
        self._monitor_wake.set()
        self._monitor.join(timeout=5.0)
        for handle in self.handles:
            handle.stop()
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, handle: WorkerHandle) -> None:
        # Pipe hygiene: the forked child inherits every *other* worker's
        # parent-side connection; pass them along so the child closes its
        # copies — otherwise one worker's EOF could be masked by a sibling
        # still holding the write end.
        inherited = [
            other.connection
            for other in self.handles
            if other is not handle and other.connection is not None
        ]
        handle.start(self._ctx, self.system, self._worker_config, inherited)

    def _monitor_loop(self) -> None:
        """Detect dead workers and bring them back (shard replay included)."""
        while not self._stopping:
            self._monitor_wake.wait(0.05)
            for handle in self.handles:
                if self._stopping:
                    return
                process = handle.process
                if process is None:
                    continue
                if handle.alive and not process.is_alive():
                    handle.mark_dead()
                if not handle.alive:
                    try:
                        self._respawn(handle)
                    except TecoreError:
                        # Replay failed (e.g. the fresh worker died too);
                        # routing keeps answering 503 and the next tick
                        # retries from scratch.
                        handle.mark_dead()

    def _respawn(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is not None:
            process.join(timeout=5.0)  # reap the killed child
            if process.is_alive():  # pragma: no cover - hung, not dead
                process.terminate()
                process.join(timeout=5.0)
        records: list[dict[str, Any]] = []
        torn = False
        if self.wal is not None:
            records, torn = self.wal.records()
        self._spawn(handle)
        report = self._replay_shard(handle, records, torn)
        handle.mark_ready()  # re-admit only after the shard is rebuilt
        self.respawns_total += 1
        self.last_replay = report.as_dict()

    def _replay_boot(self, records: list[dict[str, Any]], torn: bool) -> RecoveryReport:
        """Start-up recovery: replay every shard into its owning worker."""
        combined = RecoveryReport(
            wal_dir=self.config.wal_dir or "",
            records_scanned=len(records),
            torn_tail=torn,
        )
        started = time.perf_counter()
        for handle in self.handles:
            try:
                report = self._replay_shard(handle, records, torn)
            except TecoreError:
                handle.mark_dead()  # the monitor retries this worker
                continue
            handle.mark_ready()
            combined.sessions_restored += report.sessions_restored
            combined.sessions_skipped += report.sessions_skipped
            combined.sessions_failed.extend(report.sessions_failed)
            combined.edits_replayed += report.edits_replayed
            combined.edits_skipped += report.edits_skipped
            combined.sessions_deleted = report.sessions_deleted
            combined.resolves_logged = report.resolves_logged
        combined.duration_seconds = time.perf_counter() - started
        return combined

    def _replay_shard(
        self, handle: WorkerHandle, records: list[dict[str, Any]], torn: bool
    ) -> RecoveryReport:
        """Restore the sessions owned by ``handle``'s ring node from the log."""
        started = time.perf_counter()
        report = RecoveryReport(
            wal_dir=self.config.wal_dir or "",
            records_scanned=len(records),
            torn_tail=torn,
        )
        state = fold_records(records)
        report.sessions_deleted = len(state.deleted)
        report.resolves_logged = state.resolves
        owned = [
            fold
            for fold in state.sessions.values()
            if self.ring.lookup(fold.session_id) == handle.node
        ]
        owned.sort(key=lambda fold: fold.last_seq)
        if len(owned) > self.config.max_sessions:
            report.sessions_skipped = len(owned) - self.config.max_sessions
            owned = owned[-self.config.max_sessions :]
        restored: set[str] = set()
        for fold in owned:
            try:
                status, payload = handle.call(
                    "restore",
                    {
                        "session_id": fold.session_id,
                        "graph": fold.graph_doc,
                        "warm_start": fold.warm_start,
                        "cache_size": fold.cache_size,
                        "edits_applied": fold.base_edits,
                        "edits": fold.edits,
                    },
                    timeout=RESTORE_TIMEOUT,
                )
            except (WorkerDiedError, RequestDeadlineExceeded):
                handle.mark_dead()
                raise
            if status != 200:
                # The same failure the live create would have hit (e.g. a
                # solver error); drop the session rather than the worker.
                report.sessions_failed.append(fold.session_id)
                continue
            restored.add(fold.session_id)
            report.sessions_restored += 1
            report.edits_replayed += int(payload.get("edits_replayed", 0))
            report.edits_skipped += int(payload.get("edits_skipped", 0))
        with self._routes_lock:
            for sid in [
                sid
                for sid, route in self._routes.items()
                if route.node == handle.node and sid not in restored
            ]:
                del self._routes[sid]
            for sid in restored:
                self._routes.setdefault(sid, _SessionRoute(handle.node))
        report.duration_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        op: Any = None,
        deadline: float | None = None,
    ) -> tuple[int, dict[str, Any]]:
        if self.injector is not None:
            self.injector.fire("server.dispatch", method=method, path=path)
        if path == "/healthz" and method == "GET":
            return 200, self._health()
        if path == "/stats" and method == "GET":
            return 200, self._stats()
        if path == "/resolve" and method == "POST":
            return self._resolve(body, op, deadline)
        if path == "/sessions" and method == "POST":
            return self._create_session(decode_json(body), op)
        match = _SESSION_ROUTE.match(path)
        if match:
            sid, tail = match.group("sid"), match.group("tail")
            if tail == "/edits" and method == "POST":
                return self._apply_edits(sid, decode_json(body), op, deadline)
            if tail == "/result" and method == "GET":
                return self._session_result(sid, query, op, deadline)
            if tail is None and method == "DELETE":
                return self._delete_session(sid, op, deadline)
        return 404, {"error": f"no endpoint {method} {path}"}

    def _route(self, sid: str) -> tuple[_SessionRoute, WorkerHandle]:
        with self._routes_lock:
            route = self._routes.get(sid)
        if route is None:
            raise UnknownSessionError(f"no session {sid!r}")
        return route, self._by_node[route.node]

    def _acquire_route(self, route: _SessionRoute, deadline: float | None) -> None:
        """Take the per-session ordering lock within the deadline (else 504)."""
        remaining = self._remaining(deadline)
        if remaining is None:
            route.lock.acquire()
        elif not route.lock.acquire(timeout=remaining):
            raise RequestDeadlineExceeded(
                f"request deadline of {self.config.request_deadline:g}s exceeded "
                "waiting for the session lock"
            )

    def _require_ready(self, handle: WorkerHandle) -> None:
        """503 (retryable, pre-WAL, nothing applied) unless admitting."""
        if not (handle.alive and handle.ready):
            raise ServiceOverloadedError(
                f"resolver worker {handle.index} is restarting; retry"
            )

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _resolve(
        self, body: bytes, op: Any = None, deadline: float | None = None
    ) -> tuple[int, dict[str, Any]]:
        document = decode_json(body)
        timeout = self.config.request_timeout
        remaining = self._remaining(deadline)
        if remaining is not None:
            timeout = min(timeout, remaining)
        key = hashlib.blake2b(body, digest_size=16).hexdigest()
        if self.config.response_cache > 0:
            with self._responses_lock:
                cached = self._responses.get(key)
                if cached is not None:
                    self._responses.move_to_end(key)
                    self.response_cache_hits += 1
                    return 200, cached
                self.response_cache_misses += 1
        handle = self._pick_worker()
        if op is not None:
            op.worker = handle.index
        try:
            payload: dict[str, Any] = {"snapshot_key": key, "timeout": timeout}
            if handle.knows_snapshot(key):
                self.snapshot_omitted_total += 1
            else:
                payload["document"] = dict(document)
            try:
                status, response = handle.call(
                    "resolve", payload, timeout=timeout + CALL_TIMEOUT_GRACE
                )
                if status == SNAPSHOT_MISS:
                    # The worker's LRU dropped the document (or a respawn
                    # cleared it and our key set was stale): resend inline.
                    handle.forget_snapshot(key)
                    self.snapshot_resent_total += 1
                    payload["document"] = dict(document)
                    status, response = handle.call(
                        "resolve", payload, timeout=timeout + CALL_TIMEOUT_GRACE
                    )
            except WorkerDiedError as exc:
                # Stateless: nothing was logged and nothing survives the
                # worker, so a retryable 503 is honest.
                raise ServiceOverloadedError(
                    f"resolver worker died serving /resolve; retry ({exc})"
                ) from exc
        finally:
            handle.release()
        if status == 200:
            handle.learn_snapshot(key)
            if self.config.response_cache > 0:
                with self._responses_lock:
                    self._responses[key] = response
                    self._responses.move_to_end(key)
                    while len(self._responses) > self.config.response_cache:
                        self._responses.popitem(last=False)
            if self.wal is not None:
                # Audit record of an accepted resolve (appended after
                # success, folded away by compaction) — same shape as the
                # single-process service's.
                inner = document.get("graph", document)
                if not isinstance(inner, Mapping):  # pragma: no cover - 400 upstream
                    inner = {}
                self.wal.append(
                    {
                        "kind": "resolve",
                        "name": str(inner.get("name", "request")),
                        "facts": len(inner.get("facts") or []),
                    }
                )
        return status, response

    def _pick_worker(self) -> WorkerHandle:
        """Round-robin over ready workers with an in-flight admission cap."""
        count = len(self.handles)
        start = next(self._round_robin)
        for offset in range(count):
            handle = self.handles[(start + offset) % count]
            if handle.admit(self.config.queue_limit):
                return handle
        raise ServiceOverloadedError(
            "all resolver workers are saturated or restarting; retry"
        )

    def _create_session(
        self, document: Mapping[str, Any], op: Any = None
    ) -> tuple[int, dict[str, Any]]:
        # Validate before admitting or logging (same error precedence as
        # the single-process path: graph first, then cache_size).
        graph = decode_graph(document, default_name="session")
        cache_size = document.get("cache_size", 8192)
        if not isinstance(cache_size, int) or cache_size < 1:
            raise ProtocolError(
                f"cache_size must be a positive integer, got {cache_size!r}"
            )
        warm_start = bool(document.get("warm_start"))
        session_id = secrets.token_hex(8)
        handle = self._by_node[self.ring.lookup(session_id)]
        if op is not None:
            op.worker = handle.index
        route = _SessionRoute(handle.node)
        with self._routes_lock:
            if len(self._routes) >= self.config.max_sessions:
                raise ServiceOverloadedError(
                    f"session capacity ({self.config.max_sessions}) reached; "
                    "delete sessions or retry later"
                )
            self._routes[session_id] = route
        logged = False
        try:
            self._require_ready(handle)
            if self.wal is not None:
                # Log-before-apply with the id pinned, as in the
                # single-process service.
                self.wal.append(
                    {
                        "kind": "create",
                        "session_id": session_id,
                        "graph": json_io.to_dict(graph),
                        "warm_start": warm_start,
                        "cache_size": cache_size,
                    }
                )
            logged = True
            status, response = handle.call(
                "create", {"document": dict(document), "session_id": session_id}
            )
        except WorkerDiedError as exc:
            if logged:
                # The create is durable but unacknowledged: recovery will
                # restore it, the client must treat it as pending.
                self.dropped_connections_total += 1
                raise DropConnection(str(exc)) from exc
            with self._routes_lock:
                self._routes.pop(session_id, None)
            raise ServiceOverloadedError(
                f"resolver worker died before the create was logged; retry ({exc})"
            ) from exc
        except BaseException:
            with self._routes_lock:
                self._routes.pop(session_id, None)
            raise
        if status != 201:
            with self._routes_lock:
                self._routes.pop(session_id, None)
        return status, response

    def _apply_edits(
        self,
        sid: str,
        document: Mapping[str, Any],
        op: Any = None,
        deadline: float | None = None,
    ) -> tuple[int, dict[str, Any]]:
        adds, removes = decode_edits(document)  # 400 before anything routes
        route, handle = self._route(sid)
        if op is not None:
            op.worker = handle.index
        self._acquire_route(route, deadline)
        try:
            with self._routes_lock:
                if self._routes.get(sid) is not route:
                    # Lost the race against DELETE: its response already
                    # pinned the session's final state.
                    raise UnknownSessionError(f"no session {sid!r}")
            self._require_ready(handle)
            if self.wal is not None:
                # Log-before-apply under the route lock: per-session log
                # order is exactly the worker's apply order.
                self.wal.append(
                    {
                        "kind": "edit",
                        "session_id": sid,
                        "adds": [json_io.fact_to_dict(fact) for fact in adds],
                        "removes": [json_io.fact_to_dict(fact) for fact in removes],
                    }
                )
            try:
                status, response = handle.call(
                    "edit", {"session_id": sid, "document": dict(document)}
                )
            except WorkerDiedError as exc:
                self.dropped_connections_total += 1
                raise DropConnection(str(exc)) from exc
        finally:
            route.lock.release()
        return status, response

    def _session_result(
        self, sid: str, query: str, op: Any = None, deadline: float | None = None
    ) -> tuple[int, dict[str, Any]]:
        route, handle = self._route(sid)
        if op is not None:
            op.worker = handle.index
        self._require_ready(handle)
        include_graphs = "include_graphs=1" in query or "include_graphs=true" in query
        timeout = self.config.request_timeout
        remaining = self._remaining(deadline)
        if remaining is not None:
            timeout = min(timeout, remaining)
        try:
            return handle.call(
                "read",
                {"session_id": sid, "include_graphs": include_graphs},
                timeout=timeout + CALL_TIMEOUT_GRACE,
            )
        except WorkerDiedError as exc:
            raise ServiceOverloadedError(
                f"resolver worker died serving the read; retry ({exc})"
            ) from exc

    def _delete_session(
        self, sid: str, op: Any = None, deadline: float | None = None
    ) -> tuple[int, dict[str, Any]]:
        route, handle = self._route(sid)
        if op is not None:
            op.worker = handle.index
        self._acquire_route(route, deadline)
        try:
            with self._routes_lock:
                if self._routes.get(sid) is not route:
                    raise UnknownSessionError(f"no session {sid!r}")
            self._require_ready(handle)
            if self.wal is not None:
                # Tombstone-before-unroute, as in the single-process path.
                self.wal.append({"kind": "delete", "session_id": sid})
            try:
                status, response = handle.call("delete", {"session_id": sid})
            except WorkerDiedError as exc:
                # The tombstone is durable: the session can never be
                # resurrected, so unroute it and leave the op pending.
                with self._routes_lock:
                    self._routes.pop(sid, None)
                self.dropped_connections_total += 1
                raise DropConnection(str(exc)) from exc
        finally:
            route.lock.release()
        with self._routes_lock:
            self._routes.pop(sid, None)
        return status, response

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _health(self) -> dict[str, Any]:
        alive = sum(1 for handle in self.handles if handle.alive)
        ready = sum(1 for handle in self.handles if handle.ready)
        with self._routes_lock:
            sessions = len(self._routes)
        health = {
            "status": "ok" if ready else "degraded",
            "solver": self.system.solver,
            "engine": self.system.engine,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "sessions": sessions,
            "queue_depth": sum(handle.inflight for handle in self.handles),
            "durable": self.wal is not None,
            "workers": len(self.handles),
            "workers_alive": alive,
            "workers_ready": ready,
            "worker_pids": [handle.pid for handle in self.handles],
            "respawns": self.respawns_total,
        }
        if self.recovery is not None:
            health["recovered_sessions"] = self.recovery.sessions_restored
        return health

    def _stats(self) -> dict[str, Any]:
        workers: list[dict[str, Any]] = []
        for handle in self.handles:
            info: dict[str, Any] = {
                "index": handle.index,
                "node": handle.node,
                "pid": handle.pid,
                "alive": handle.alive,
                "ready": handle.ready,
                "generation": handle.generation,
                "inflight": handle.inflight,
            }
            if handle.alive:
                try:
                    status, payload = handle.call("stats", {}, timeout=5.0)
                    if status == 200:
                        info.update(payload)
                except TecoreError:
                    pass  # a worker mid-crash just reports its flags
            workers.append(info)
        batcher = _sum_counters(worker.get("batcher", {}) for worker in workers)
        hits = batcher.get("response_cache_hits", 0)
        lookups = hits + batcher.get("response_cache_misses", 0)
        batcher["response_cache_hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
        sessions = _sum_counters(worker.get("sessions", {}) for worker in workers)
        sessions["max_sessions"] = self.config.max_sessions
        hits = sessions.get("component_cache_hits", 0)
        lookups = hits + sessions.get("component_cache_misses", 0)
        sessions["component_cache_hit_rate"] = (
            round(hits / lookups, 4) if lookups else 0.0
        )
        with self._routes_lock:
            sessions["routed"] = len(self._routes)
        snapshots = _sum_counters(worker.get("snapshots", {}) for worker in workers)
        snapshots["omitted"] = self.snapshot_omitted_total
        snapshots["resent"] = self.snapshot_resent_total
        hits, misses = self.response_cache_hits, self.response_cache_misses
        with self._responses_lock:
            cache_entries = len(self._responses)
        frontend_cache = {
            "entries": cache_entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        }
        stats = {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "endpoints": self.metrics.snapshot(),
            "batcher": batcher,
            "sessions": sessions,
            "workers": workers,
            "sharding": {
                "workers": len(self.handles),
                "ring_replicas": self.ring.replicas,
                "respawns": self.respawns_total,
                "dropped_connections": self.dropped_connections_total,
                "snapshots": snapshots,
                "frontend_cache": frontend_cache,
            },
        }
        if self.last_replay is not None:
            stats["sharding"]["last_replay"] = self.last_replay
        if self.wal is not None:
            stats["wal"] = self.wal.snapshot()
        if self.recovery is not None:
            stats["recovery"] = self.recovery.as_dict()
        return stats
