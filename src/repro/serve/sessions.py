"""A concurrent pool of incremental resolution sessions.

Each ``POST /sessions`` creates one
:class:`~repro.core.session.ResolutionSession`; subsequent edits and result
reads address it by id.  Two locking levels keep the pool safe under the
threaded HTTP server:

* the **pool lock** guards only the id → entry map (create/lookup/evict/
  delete are map operations — never a resolve);
* each session's own :attr:`~repro.core.session.ResolutionSession.lock`
  (the thread-safety seam on the session itself) serialises edits and
  result reads *per session*, so concurrent edits to one session are
  applied one at a time against a consistent grounder state while edits to
  different sessions proceed in parallel.

The pool is LRU-bounded: creating a session beyond ``max_sessions`` evicts
the least recently *used* one (creates, edits, and result reads all count
as use).  A **deleted** session is closed under its own lock
(:attr:`SessionEntry.closed`), and handlers re-check the flag after
acquiring the lock: the ``DELETE`` response reports the session's final
fact and edit counts, so an in-flight edit that loses the lock race must
answer 404 rather than mutate a session whose final state a client already
observed (the serializability harness in :mod:`repro.verify` caught
exactly that).  An **evicted** session merely becomes unroutable — there
is no client-visible "final state" response, so an in-flight request may
still finish against the orphaned entry safely.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ..core.session import ResolutionSession
from ..errors import TecoreError
from ..kg import TemporalKnowledgeGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.tecore import TeCoRe


class UnknownSessionError(TecoreError):
    """No session with the requested id (served as HTTP 404)."""


class SessionEntry:
    """One pooled session plus its serving bookkeeping."""

    __slots__ = ("session_id", "session", "created", "edits_applied", "closed")

    def __init__(self, session_id: str, session: ResolutionSession) -> None:
        self.session_id = session_id
        self.session = session
        self.created = time.monotonic()
        self.edits_applied = 0
        #: Set under :attr:`lock` when the session is deleted.  Handlers
        #: holding a stale entry reference must re-check it after acquiring
        #: the lock: the delete response pinned the session's final state,
        #: so post-delete operations answer 404 instead of mutating.
        self.closed = False

    @property
    def lock(self) -> threading.RLock:
        return self.session.lock


class SessionPool:
    """LRU-bounded, per-session-locked pool of resolution sessions.

    ``injector`` is the fault-injection seam (see
    :mod:`repro.verify.faults`); when given, it fires at ``pool.create``
    (before the initial resolve) and ``pool.evict`` (under the pool lock,
    as an entry falls off the LRU end).
    """

    def __init__(self, system: "TeCoRe", max_sessions: int = 64, injector: Any = None) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self._system = system
        self.max_sessions = max_sessions
        self.injector = injector
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self.created_total = 0
        self.evicted_total = 0
        self.deleted_total = 0
        self.restored_total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    def create(
        self,
        graph: TemporalKnowledgeGraph,
        warm_start: bool = False,
        cache_size: int = 8192,
        session_id: str | None = None,
    ) -> SessionEntry:
        """Open a session (runs the initial resolve) and register it.

        ``session_id`` lets the durable serve path pin the id it already
        wrote to the write-ahead log; by default a fresh random id is
        generated here.
        """
        if self.injector is not None:
            self.injector.fire("pool.create", session_id=session_id)
        # The initial resolve is the expensive part — do it outside the pool
        # lock so concurrent creates don't serialise on each other.
        session = self._system.session(graph, warm_start=warm_start, cache_size=cache_size)
        if session_id is None:
            session_id = secrets.token_hex(8)
        entry = SessionEntry(session_id, session)
        with self._lock:
            self._entries[session_id] = entry
            self.created_total += 1
            while len(self._entries) > self.max_sessions:
                evicted_id, _ = self._entries.popitem(last=False)
                self.evicted_total += 1
                if self.injector is not None:
                    self.injector.fire("pool.evict", session_id=evicted_id)
        return entry

    def restore(
        self,
        session_id: str,
        graph: TemporalKnowledgeGraph,
        warm_start: bool = False,
        cache_size: int = 8192,
        edits_applied: int = 0,
    ) -> SessionEntry:
        """Re-open a recovered session under its original id.

        Used only by crash recovery (:mod:`repro.serve.recovery`):
        identical to :meth:`create` except the id is pinned and the
        ``edits_applied`` counter is seeded from the log (compaction bakes
        earlier edits into the snapshot graph).
        """
        entry = self.create(
            graph, warm_start=warm_start, cache_size=cache_size, session_id=session_id
        )
        entry.edits_applied = edits_applied
        with self._lock:
            self.restored_total += 1
        return entry

    def get(self, session_id: str) -> SessionEntry:
        """Look up a session and mark it most recently used."""
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                raise UnknownSessionError(f"no session {session_id!r}")
            self._entries.move_to_end(session_id)
            return entry

    def delete(self, session_id: str) -> SessionEntry:
        with self._lock:
            entry = self._entries.pop(session_id, None)
            if entry is None:
                raise UnknownSessionError(f"no session {session_id!r}")
            self.deleted_total += 1
            return entry

    def discard(self, session_id: str) -> None:
        """Unroute a session if still present (no error when evicted).

        The durable delete path closes the entry under its own lock *after*
        logging the tombstone, then unroutes it here — by which time an LRU
        eviction may already have dropped it from the map.
        """
        with self._lock:
            if self._entries.pop(session_id, None) is not None:
                self.deleted_total += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """Pool and aggregated component-cache statistics for ``/stats``."""
        with self._lock:
            entries = list(self._entries.values())
            counters = {
                "active": len(entries),
                "max_sessions": self.max_sessions,
                "created": self.created_total,
                "evicted": self.evicted_total,
                "deleted": self.deleted_total,
                "restored": self.restored_total,
            }
        hits = misses = edits = steps = 0
        for entry in entries:
            # Plain int reads — consistent enough for monitoring without
            # taking every per-session lock.
            hits += entry.session.cache.hits
            misses += entry.session.cache.misses
            steps += entry.session.steps
            edits += entry.edits_applied
        lookups = hits + misses
        counters.update(
            {
                "edits_applied": edits,
                "resolve_steps": steps,
                "component_cache_hits": hits,
                "component_cache_misses": misses,
                "component_cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            }
        )
        return counters
