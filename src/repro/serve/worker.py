"""Resolver worker process of the sharded serving tier.

One worker = one :func:`worker_main` loop over a :class:`multiprocessing`
pipe, holding its own :class:`~repro.serve.batcher.MicroBatcher` (so
micro-batching and the response cache run *per worker*) and its own
:class:`~repro.serve.sessions.SessionPool` shard.  The front-end
(:class:`~repro.serve.sharding.ShardedResolutionService`) routes sessions
here by consistent hashing on the session id and fans one-shot ``/resolve``
requests out round-robin.

Wire protocol (over the pipe; everything is plain picklable data):

* parent → worker: ``(request_id, op, payload)`` where ``op`` is one of
  ``resolve`` / ``create`` / ``edit`` / ``read`` / ``delete`` / ``restore``
  / ``stats`` / ``ping`` / ``shutdown``;
* worker → parent: ``(request_id, status, payload)`` with ``status`` the
  HTTP status the front-end relays (worker-side errors are mapped to the
  same codes :class:`~repro.serve.server.ResolutionService` uses).

Edits travel in the change-stream JSON shape (``adds``/``removes`` fact
dictionaries, see :mod:`repro.kg.io.changestream`) — both live requests
(the decoded ``POST .../edits`` body is forwarded verbatim) and the WAL
``edit`` records replayed through the ``restore`` op after a worker crash.

Snapshot sharing: one-shot resolve payloads may carry a ``snapshot_key``
instead of the full graph document.  The worker keeps a small LRU of
recently seen documents by key; on a miss it answers the internal
:data:`SNAPSHOT_MISS` status and the front-end re-sends the document.  Hot
base-graph snapshots therefore cross the pipe once per worker, not once
per request.

:func:`worker_main` is equally runnable on a plain thread — the in-process
unit tests drive it over a pipe without forking.
"""

from __future__ import annotations

import os
import queue
import threading
from collections import OrderedDict
from typing import Any, Mapping

from ..core.tecore import TeCoRe
from ..errors import TecoreError
from ..kg.io import json_io
from .batcher import MicroBatcher, RequestDeadlineExceeded, ServiceOverloadedError
from .protocol import ProtocolError, decode_edits, decode_graph, encode_result
from .recovery import decode_edit_record
from .sessions import SessionPool, UnknownSessionError

#: Internal status a worker answers when a resolve payload references a
#: snapshot key it does not hold; the front-end re-sends the full document.
#: Never client-visible.
SNAPSHOT_MISS = 409

#: Handler threads per worker: enough concurrency for the worker's
#: micro-batcher to actually form batches while session edits proceed.
WORKER_THREADS = 8

#: Documents kept in the per-worker snapshot LRU.
SNAPSHOT_CACHE_SIZE = 32


class WorkerRuntime:
    """The serving state of one resolver worker.

    A shard-local mirror of :class:`~repro.serve.server.ResolutionService`
    minus the WAL (durability is the front-end's job): its own batcher over
    a shared resolver, its own session pool, and the snapshot LRU.  Safe
    for concurrent :meth:`dispatch` calls from the handler threads.
    """

    def __init__(
        self,
        system: TeCoRe,
        config: Any,
        index: int,
        snapshot_cache: int = SNAPSHOT_CACHE_SIZE,
    ) -> None:
        self.system = system
        self.config = config
        self.index = index
        self.batcher = MicroBatcher(
            system.shared_resolver(),
            max_batch=config.max_batch,
            max_delay=config.batch_delay,
            queue_limit=config.queue_limit,
            coalesce=config.coalesce,
            cache_size=config.response_cache,
        )
        self.sessions = SessionPool(system, max_sessions=config.max_sessions)
        self._snap_lock = threading.Lock()
        self._snapshots: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self._snapshot_cache = snapshot_cache
        self.snapshot_hits = 0
        self.snapshot_misses = 0
        self.restores_total = 0

    def close(self) -> None:
        self.batcher.close()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def dispatch(self, op: str, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        """Serve one pipe message; returns ``(status, response_payload)``.

        The exception → status mapping mirrors ``ResolutionService.handle``
        so the front-end can relay worker responses verbatim.
        """
        handler = self._OPS.get(op)
        if handler is None:
            return 500, {"error": f"unknown worker op {op!r}"}
        try:
            return handler(self, payload)
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        except UnknownSessionError as exc:
            return 404, {"error": str(exc)}
        except ServiceOverloadedError as exc:
            return 503, {"error": str(exc), "retry_after_seconds": 1}
        except RequestDeadlineExceeded as exc:
            return 504, {"error": str(exc), "retry_after_seconds": 1}
        except TecoreError as exc:
            return 500, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a request must never kill the worker loop
            return 500, {"error": f"internal error: {exc}"}

    # ------------------------------------------------------------------ #
    # Snapshot sharing
    # ------------------------------------------------------------------ #
    def _snapshot_document(self, payload: Mapping[str, Any]) -> dict[str, Any] | None:
        """The resolve document: sent inline, or recalled by snapshot key.

        Returns ``None`` on a cache miss (the caller answers
        :data:`SNAPSHOT_MISS`); inline documents tagged with a key are
        cached for later key-only requests.
        """
        document = payload.get("document")
        key = payload.get("snapshot_key")
        if document is None:
            if not isinstance(key, str):
                raise ProtocolError("resolve payload carries neither document nor key")
            with self._snap_lock:
                cached = self._snapshots.get(key)
                if cached is None:
                    self.snapshot_misses += 1
                    return None
                self._snapshots.move_to_end(key)
                self.snapshot_hits += 1
                return cached
        if isinstance(key, str):
            with self._snap_lock:
                self._snapshots[key] = dict(document)
                self._snapshots.move_to_end(key)
                while len(self._snapshots) > self._snapshot_cache:
                    self._snapshots.popitem(last=False)
        return dict(document)

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def _op_resolve(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        document = self._snapshot_document(payload)
        if document is None:
            return SNAPSHOT_MISS, {"error": "unknown snapshot key"}
        graph = decode_graph(document)
        timeout = payload.get("timeout")
        result = self.batcher.submit(
            graph,
            timeout=timeout if timeout is not None else self.config.request_timeout,
            shed_depth=self.config.shed_resolve_at,
        )
        return 200, encode_result(
            result, include_graphs=bool(document.get("include_graphs"))
        )

    def _op_create(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        document = dict(payload["document"])
        graph = decode_graph(document, default_name="session")
        cache_size = document.get("cache_size", 8192)
        if not isinstance(cache_size, int) or cache_size < 1:
            raise ProtocolError(
                f"cache_size must be a positive integer, got {cache_size!r}"
            )
        entry = self.sessions.create(
            graph,
            warm_start=bool(document.get("warm_start")),
            cache_size=cache_size,
            session_id=payload["session_id"],
        )
        with entry.lock:
            result = encode_result(
                entry.session.result,
                include_graphs=bool(document.get("include_graphs")),
            )
        return 201, {"session_id": entry.session_id, "result": result}

    def _op_edit(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        document = dict(payload["document"])
        adds, removes = decode_edits(document)
        sid = payload["session_id"]
        entry = self.sessions.get(sid)
        with entry.lock:
            if entry.closed:
                raise UnknownSessionError(f"no session {sid!r}")
            result = entry.session.apply(adds=adds, removes=removes)
            entry.edits_applied += 1
            encoded = encode_result(
                result, include_graphs=bool(document.get("include_graphs"))
            )
        return 200, {"session_id": sid, "result": encoded}

    def _op_read(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        sid = payload["session_id"]
        entry = self.sessions.get(sid)
        with entry.lock:
            if entry.closed:
                raise UnknownSessionError(f"no session {sid!r}")
            encoded = encode_result(
                entry.session.result,
                include_graphs=bool(payload.get("include_graphs")),
            )
        return 200, {"session_id": sid, "result": encoded}

    def _op_delete(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        sid = payload["session_id"]
        entry = self.sessions.get(sid)
        with entry.lock:
            if entry.closed:
                raise UnknownSessionError(f"no session {sid!r}")
            entry.closed = True
            facts = len(entry.session.graph)
            edits = entry.edits_applied
        self.sessions.discard(sid)
        return 200, {
            "session_id": sid,
            "deleted": True,
            "facts": facts,
            "edits_applied": edits,
        }

    def _op_restore(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        """Replay one WAL session fold into this shard (crash recovery).

        The graph document and edit records are exactly what
        :func:`repro.serve.recovery.fold_records` produced from the
        front-end's log; edits replay through ``session.apply`` — the same
        delta path that served them live — so the restored result is
        bit-identical per ``stable_view``.
        """
        graph_doc = dict(payload["graph"])
        graph = json_io.from_dict(graph_doc, name=str(graph_doc.get("name", "session")))
        sid = payload["session_id"]
        entry = self.sessions.restore(
            sid,
            graph,
            warm_start=bool(payload.get("warm_start")),
            cache_size=int(payload.get("cache_size", 8192)),
            edits_applied=int(payload.get("edits_applied", 0)),
        )
        replayed = skipped = 0
        for record in payload.get("edits") or []:
            try:
                adds, removes = decode_edit_record(record)
                with entry.lock:
                    entry.session.apply(adds=adds, removes=removes)
                    entry.edits_applied += 1
            except TecoreError:
                # The same edit failed the same validation when served live
                # (validation precedes any mutation), so skipping keeps the
                # replayed state aligned with the live history.
                skipped += 1
                continue
            replayed += 1
        self.restores_total += 1
        return 200, {
            "session_id": sid,
            "edits_replayed": replayed,
            "edits_skipped": skipped,
        }

    def _op_stats(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        with self._snap_lock:
            snapshots = {
                "cached": len(self._snapshots),
                "hits": self.snapshot_hits,
                "misses": self.snapshot_misses,
            }
        return 200, {
            "pid": os.getpid(),
            "restores": self.restores_total,
            "batcher": self.batcher.snapshot(),
            "sessions": self.sessions.snapshot(),
            "snapshots": snapshots,
        }

    def _op_ping(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        return 200, {"pid": os.getpid(), "index": self.index}

    _OPS = {
        "resolve": _op_resolve,
        "create": _op_create,
        "edit": _op_edit,
        "read": _op_read,
        "delete": _op_delete,
        "restore": _op_restore,
        "stats": _op_stats,
        "ping": _op_ping,
    }


def worker_main(
    conn: Any,
    inherited: list[Any],
    system: TeCoRe,
    config: Any,
    index: int,
    threads: int = WORKER_THREADS,
) -> None:
    """Entry point of one resolver worker (process target or plain thread).

    ``inherited`` lists pipe connections this (forked) process inherited
    but does not own — its own parent-side end and every sibling worker's
    — which must be closed so EOF propagates correctly when any single
    process exits.  A single reader drains the pipe into an inbox served
    by ``threads`` handler threads (a :class:`multiprocessing.connection.
    Connection` is not safe for concurrent ``recv``); sends are serialised
    by one lock.  The loop exits on ``shutdown``, on pipe EOF, or when the
    front-end process disappears (orphan check once per idle second).
    """
    for other in inherited:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed is fine
            pass
    runtime = WorkerRuntime(system, config, index)
    send_lock = threading.Lock()
    inbox: "queue.Queue[tuple[int, str, Any] | None]" = queue.Queue()

    def _handler() -> None:
        while True:
            item = inbox.get()
            if item is None:
                return
            request_id, op, payload = item
            status, response = runtime.dispatch(op, payload or {})
            try:
                with send_lock:
                    conn.send((request_id, status, response))
            except (OSError, ValueError, BrokenPipeError):
                return  # front-end gone; the reader loop is exiting too

    handlers = [
        threading.Thread(target=_handler, name=f"tecore-worker-{index}-h{n}", daemon=True)
        for n in range(threads)
    ]
    for thread in handlers:
        thread.start()

    parent_pid = os.getppid()
    shutdown_id = None
    try:
        while True:
            try:
                if not conn.poll(1.0):
                    # Idle: orphan check — if the front-end died without the
                    # pipe EOF reaching us (an inherited fd kept it open),
                    # exit rather than linger as a zombie resolver.
                    if os.getppid() != parent_pid:
                        break
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break
            request_id, op, payload = message
            if op == "shutdown":
                shutdown_id = request_id
                break
            inbox.put((request_id, op, payload))
    finally:
        for _ in handlers:
            inbox.put(None)
        for thread in handlers:
            thread.join(timeout=5.0)
        runtime.close()
        if shutdown_id is not None:
            try:
                with send_lock:
                    conn.send((shutdown_id, 200, {"stopped": True}))
            except (OSError, ValueError, BrokenPipeError):  # pragma: no cover
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
