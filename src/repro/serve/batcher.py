"""Micro-batching for concurrent one-shot resolution requests.

Concurrent ``POST /resolve`` requests do not each get their own translator
and solver: they are parked in a bounded queue and drained by a single flush
worker, which serves every batch through one shared
:class:`~repro.core.tecore.SharedResolver` (one translator, one back-end —
the thread-confinement contract of that class is satisfied by construction,
since only the flush worker ever touches it).

Batching policy
---------------
* **flush on size** — a batch is closed as soon as ``max_batch`` requests
  are waiting;
* **flush on deadline** — otherwise the oldest waiting request is served at
  most ``max_delay`` seconds after it arrived (the micro-batching window);
* **backpressure** — submissions beyond ``queue_limit`` waiting requests
  fail fast with :class:`ServiceOverloadedError`, which the HTTP layer maps
  to ``503 Retry-After`` instead of letting the queue grow without bound;
* **coalescing** — within one batch, requests whose graphs are
  content-identical (same name, statements, confidences, and statement
  order — see :func:`repro.serve.protocol.graph_content_key`) share a
  single resolve: resolution is a pure function of that content, so every
  coalesced requester receives the bit-identical result it would have
  gotten from its own solve.  This is the classic collapsed-forwarding
  optimisation for hot-key traffic;
* **response caching** — the same purity argument extends across batch
  windows: resolved results are kept in a content-keyed LRU (reusing the
  generic :class:`~repro.core.session.ComponentSolutionCache` machinery),
  so a repeat of a recently served graph returns immediately without even
  entering the queue.  ``cache_size=0`` disables it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional

from ..core.result import ResolutionResult
from ..core.session import ComponentSolutionCache
from ..core.tecore import SharedResolver
from ..errors import TecoreError
from ..kg import TemporalKnowledgeGraph
from .protocol import graph_content_key


class ServiceOverloadedError(TecoreError):
    """The request queue is full (served as HTTP 503 with Retry-After)."""


class RequestDeadlineExceeded(TecoreError):
    """A request overran its deadline (served as HTTP 504 with Retry-After).

    Raised both by :meth:`MicroBatcher.submit` when the batch-queue wait
    exceeds its timeout and by the session endpoints when a per-session
    lock cannot be acquired within the configured ``request_deadline``.
    The work already enqueued may still complete server-side — the client
    only loses the response, exactly like a real gateway timeout."""


class _PendingRequest:
    __slots__ = ("graph", "key", "tag", "arrival", "done", "result", "error")

    def __init__(self, graph: TemporalKnowledgeGraph, keyed: bool, tag: Any = None) -> None:
        self.graph = graph
        self.key = graph_content_key(graph) if keyed else None
        self.tag = tag
        self.arrival = time.monotonic()
        self.done = threading.Event()
        self.result: Optional[ResolutionResult] = None
        self.error: Optional[BaseException] = None


class BatchObserver:
    """Observation seam for the concurrency-correctness harness.

    An observer sees the *client-visible* serving decisions the batcher makes
    for tagged requests: which submissions were answered straight from the
    response cache, and which groups of in-flight requests were coalesced
    onto a single solve.  Both callbacks run on serving threads (``submit``
    callers and the flush worker respectively) and must be cheap and
    exception-free; tags are the opaque values callers passed to
    :meth:`MicroBatcher.submit`.
    """

    def on_cache_hit(self, tag: Any) -> None:  # pragma: no cover - interface
        """A tagged submission was served from the content-keyed cache."""

    def on_flush(self, groups: list[list[Any]]) -> None:  # pragma: no cover - interface
        """One batch flushed; ``groups`` holds the tags of each coalesced
        group (singletons included, in resolve order)."""


class MicroBatcher:
    """Bounded-queue micro-batcher over one shared resolver.

    Parameters
    ----------
    resolver:
        The :class:`~repro.core.tecore.SharedResolver` every batch is served
        through.  Only the internal flush worker calls it.
    max_batch:
        Flush as soon as this many requests are waiting.
    max_delay:
        Maximum seconds a request waits for companions before its batch is
        flushed anyway.
    queue_limit:
        Maximum number of waiting (not yet flushed) requests; submissions
        beyond it raise :class:`ServiceOverloadedError`.
    coalesce:
        Serve content-identical graphs within a batch with one solve.
    cache_size:
        LRU bound on recently served results, keyed by graph content
        (0 disables response caching).
    observer:
        Optional :class:`BatchObserver` notified of cache hits and
        coalesced-group membership (the history recorder's seam).
    injector:
        Optional fault-injection seam (see :mod:`repro.verify.faults`);
        fires at ``batcher.submit`` (before queueing, on the caller's
        thread) and ``batcher.solve`` (before each batch resolve, on the
        flush worker — whose errors are delivered to every waiter).
    """

    def __init__(
        self,
        resolver: SharedResolver,
        max_batch: int = 8,
        max_delay: float = 0.01,
        queue_limit: int = 64,
        coalesce: bool = True,
        cache_size: int = 128,
        observer: Optional[BatchObserver] = None,
        injector: Any = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._resolver = resolver
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.queue_limit = queue_limit
        self.coalesce = coalesce
        self.cache: Optional[ComponentSolutionCache] = (
            ComponentSolutionCache(max_entries=cache_size) if cache_size else None
        )
        self.observer = observer
        self.injector = injector
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: deque[_PendingRequest] = deque()
        self._closed = False
        self._paused = False
        # Serving counters (read by /stats; mutated under the lock).
        self.requests_total = 0
        self.enqueued_total = 0
        self.rejected_total = 0
        self.batches_flushed = 0
        self.resolves_total = 0
        self.coalesced_total = 0
        self.max_batch_seen = 0
        self._worker = threading.Thread(target=self._run, name="tecore-batch-flush", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(
        self,
        graph: TemporalKnowledgeGraph,
        timeout: Optional[float] = 60.0,
        tag: Any = None,
        shed_depth: Optional[int] = None,
    ) -> ResolutionResult:
        """Serve one graph: response cache, else enqueue and await its batch.

        ``tag`` is an opaque correlation value (e.g. a history-recorder
        operation id) echoed back through the :class:`BatchObserver`
        callbacks; it never influences serving decisions.

        ``shed_depth`` lowers the admission bound for *this* submission
        below ``queue_limit`` — graceful degradation: the service sheds
        one-shot ``/resolve`` traffic at a shallower queue depth so session
        edits (which never enter this queue) keep their request threads.
        The response cache is consulted before admission, so repeats of
        recently served graphs are answered even under full saturation.
        """
        if self.injector is not None:
            self.injector.fire("batcher.submit", tag=tag)
        pending = _PendingRequest(graph, self.coalesce or self.cache is not None, tag)
        with self._wakeup:
            if self._closed:
                raise TecoreError("micro-batcher is closed")
            self.requests_total += 1
            if self.cache is not None:
                cached = self.cache.get(pending.key)
                if cached is not None:
                    if self.observer is not None and tag is not None:
                        self.observer.on_cache_hit(tag)
                    return cached
            limit = self.queue_limit
            if shed_depth is not None:
                limit = min(limit, shed_depth)
            if len(self._queue) >= limit:
                self.rejected_total += 1
                raise ServiceOverloadedError(f"resolution queue is full ({limit} waiting requests)")
            self._queue.append(pending)
            self.enqueued_total += 1
            self._wakeup.notify()
        if not pending.done.wait(timeout):
            raise RequestDeadlineExceeded(
                f"resolution timed out after {timeout:g}s in the batch queue"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def wait_for_queue_depth(self, depth: int, timeout: float = 5.0) -> bool:
        """Block until at least ``depth`` requests are waiting (or timeout).

        Event-based synchronization for tests and the verification harness:
        every ``submit`` notifies the internal condition, so this never
        needs a polling sleep loop.  Returns ``False`` on timeout.
        """
        deadline = time.monotonic() + timeout
        with self._wakeup:
            while len(self._queue) < depth:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wakeup.wait(remaining)
            return True

    def pause(self) -> None:
        """Hold the flush worker: queued requests accumulate until resume.

        A deterministic scheduling control point for tests and the
        concurrency harness — with the worker paused, submissions pile up in
        the bounded queue (eventually hitting backpressure) and a subsequent
        :meth:`resume` flushes them as one batch, which forces coalescing
        windows without wall-clock tuning.  ``close`` drains regardless.
        """
        with self._wakeup:
            self._paused = True

    def resume(self) -> None:
        """Release a paused flush worker."""
        with self._wakeup:
            self._paused = False
            self._wakeup.notify_all()

    def close(self) -> None:
        """Flush whatever is queued and stop the worker."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify()
        self._worker.join()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            cache_stats: dict[str, Any] = {"response_cache": "disabled"}
            if self.cache is not None:
                lookups = self.cache.hits + self.cache.misses
                cache_stats = {
                    "response_cache_entries": len(self.cache),
                    "response_cache_hits": self.cache.hits,
                    "response_cache_misses": self.cache.misses,
                    "response_cache_hit_rate": (
                        round(self.cache.hits / lookups, 4) if lookups else 0.0
                    ),
                }
            return {
                **cache_stats,
                "requests": self.requests_total,
                "rejected": self.rejected_total,
                "batches": self.batches_flushed,
                "resolves": self.resolves_total,
                "coalesced": self.coalesced_total,
                "max_batch_size": self.max_batch_seen,
                "mean_batch_size": (
                    round(self.enqueued_total / self.batches_flushed, 3)
                    if self.batches_flushed
                    else 0.0
                ),
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
            }

    # ------------------------------------------------------------------ #
    # Flush worker
    # ------------------------------------------------------------------ #
    def _collect(self) -> list[_PendingRequest]:
        """Wait for work, honour the batching window, and drain one batch."""
        with self._wakeup:
            # A pause holds the worker here; close always drains the queue.
            while (not self._queue or self._paused) and not self._closed:
                self._wakeup.wait()
            if not self._queue:
                return []
            deadline = self._queue[0].arrival + self.max_delay
            while len(self._queue) < self.max_batch and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._wakeup.wait(timeout=remaining)
            size = min(self.max_batch, len(self._queue))
            return [self._queue.popleft() for _ in range(size)]

    def _flush(self, batch: list[_PendingRequest]) -> None:
        coalesced = 0
        flushed_groups: list[list[Any]] = []
        try:
            if self.injector is not None:
                self.injector.fire("batcher.solve", size=len(batch))
            if self.coalesce:
                groups: dict[tuple, list[_PendingRequest]] = {}
                order: list[tuple] = []
                for pending in batch:
                    members = groups.get(pending.key)
                    if members is None:
                        groups[pending.key] = [pending]
                        order.append(pending.key)
                    else:
                        members.append(pending)
                resolved = self._resolver.resolve_many(groups[key][0].graph for key in order)
                for key, result in zip(order, resolved):
                    for pending in groups[key]:
                        pending.result = result
                flushed_groups = [[pending.tag for pending in groups[key]] for key in order]
                coalesced = len(batch) - len(order)
                resolves = len(order)
            else:
                resolved = self._resolver.resolve_many(pending.graph for pending in batch)
                for pending, result in zip(batch, resolved):
                    pending.result = result
                flushed_groups = [[pending.tag] for pending in batch]
                resolves = len(batch)
            if self.cache is not None:
                with self._lock:
                    for pending in batch:
                        if pending.result is not None and pending.key is not None:
                            self.cache.put(pending.key, pending.result)
        except BaseException as exc:  # noqa: BLE001 - delivered to the waiters
            for pending in batch:
                pending.error = exc
            resolves = 0
        finally:
            # The observer must see the grouping before any waiter can issue
            # a follow-up request that depends on this response.
            if self.observer is not None and flushed_groups:
                self.observer.on_flush(flushed_groups)
            for pending in batch:
                pending.done.set()
        with self._lock:
            self.batches_flushed += 1
            self.resolves_total += resolves
            self.coalesced_total += coalesced
            self.max_batch_seen = max(self.max_batch_seen, len(batch))

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return
            self._flush(batch)
