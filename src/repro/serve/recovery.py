"""Crash recovery for the serving tier: replay the WAL into sessions.

On a ``tecore serve --wal-dir`` startup, the active log segment is scanned
(tolerating a torn tail, see :mod:`repro.serve.wal`), folded into
per-session histories, and every surviving session is rebuilt by replaying
its logged edits **through** :class:`~repro.core.session.ResolutionSession`
— i.e. through the same :class:`~repro.logic.incremental.IncrementalGrounder`
delta path that served the original requests.  Because incremental
resolution is pinned bit-identical to from-scratch resolution, a recovered
session's ``GET /sessions/{id}/result`` payload is bit-identical to the one
an uncrashed process would serve.

Replay semantics
----------------
* ``create``/``snapshot`` records carry the full graph document; a
  ``snapshot`` additionally carries the pre-folded ``edits_applied``
  counter (compaction bakes earlier edits into the graph).
* ``edit`` records are applied in log order.  An edit that fails
  validation raises before mutating anything — exactly as it did (or would
  have) when served live — so it is skipped and not counted, keeping the
  replayed ``edits_applied`` equal to the live counter.
* ``delete`` records tombstone the session: recovery never resurrects an
  explicitly deleted session, even though its earlier records remain in
  the log until the next compaction.
* ``resolve`` records are a durability audit of accepted one-shot
  resolutions; they carry no session state and fold away.
* When more live sessions survive in the log than ``max_sessions``, only
  the most recently active ones are restored (the same LRU policy the pool
  applies online); the rest are reported as ``sessions_skipped``.

Sessions are restored in last-activity order so the pool's LRU order after
recovery matches the order clients most recently touched them.

:func:`compact_records` is the fold function behind periodic log
compaction: it replays each live session's edits onto a plain graph
(mirroring the grounder's remove-then-add mutation semantics, without any
solving) and emits one ``snapshot`` record per session, bounding replay
cost by the number of live sessions instead of the length of the history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

from ..errors import TecoreError
from ..kg import TemporalFact, TemporalKnowledgeGraph
from ..kg.io import json_io

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.tecore import TeCoRe
    from .sessions import SessionPool


@dataclass
class SessionFold:
    """The folded log state of one session."""

    session_id: str
    graph_doc: dict[str, Any]
    warm_start: bool = False
    cache_size: int = 8192
    #: ``edits_applied`` already baked into ``graph_doc`` (snapshot records).
    base_edits: int = 0
    #: Raw ``edit`` records still to be replayed, in log order.
    edits: list[dict[str, Any]] = field(default_factory=list)
    #: Sequence number of the session's most recent record (LRU order).
    last_seq: int = -1


@dataclass
class FoldState:
    """Every live session plus the tombstones, folded from one segment."""

    sessions: dict[str, SessionFold] = field(default_factory=dict)
    deleted: set[str] = field(default_factory=set)
    resolves: int = 0
    dropped: int = 0  # records ignored (unknown kind / orphaned edit)


@dataclass
class RecoveryReport:
    """What a startup replay did — surfaced via /healthz and /stats."""

    wal_dir: str
    records_scanned: int = 0
    torn_tail: bool = False
    sessions_restored: int = 0
    sessions_deleted: int = 0
    sessions_skipped: int = 0
    sessions_failed: list[str] = field(default_factory=list)
    edits_replayed: int = 0
    edits_skipped: int = 0
    resolves_logged: int = 0
    duration_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "wal_dir": self.wal_dir,
            "records_scanned": self.records_scanned,
            "torn_tail": self.torn_tail,
            "sessions_restored": self.sessions_restored,
            "sessions_deleted": self.sessions_deleted,
            "sessions_skipped": self.sessions_skipped,
            "sessions_failed": self.sessions_failed,
            "edits_replayed": self.edits_replayed,
            "edits_skipped": self.edits_skipped,
            "resolves_logged": self.resolves_logged,
            "duration_seconds": round(self.duration_seconds, 3),
        }


def fold_records(records: Iterable[Mapping[str, Any]]) -> FoldState:
    """Fold a record stream into per-session histories and tombstones."""
    state = FoldState()
    for record in records:
        kind = record.get("kind")
        sid = record.get("session_id")
        seq = record.get("seq", -1)
        if kind == "resolve":
            state.resolves += 1
            continue
        if not isinstance(sid, str):
            state.dropped += 1
            continue
        if kind in ("create", "snapshot"):
            state.sessions[sid] = SessionFold(
                session_id=sid,
                graph_doc=dict(record.get("graph") or {}),
                warm_start=bool(record.get("warm_start")),
                cache_size=int(record.get("cache_size", 8192)),
                base_edits=int(record.get("edits_applied", 0)),
                last_seq=seq,
            )
            state.deleted.discard(sid)
        elif kind == "edit":
            fold = state.sessions.get(sid)
            if fold is None:
                state.dropped += 1  # orphaned edit (session compacted away?)
                continue
            fold.edits.append(dict(record))
            fold.last_seq = seq
        elif kind == "delete":
            state.sessions.pop(sid, None)
            state.deleted.add(sid)
        else:
            state.dropped += 1
    return state


def decode_edit_record(
    record: Mapping[str, Any],
) -> tuple[list[TemporalFact], list[TemporalFact]]:
    """Decode one WAL ``edit`` record into ``(adds, removes)`` fact lists.

    The record shape is the change-stream JSON form (``adds``/``removes``
    fact dictionaries); this is also how edits travel to resolver workers
    during sharded crash recovery (see :mod:`repro.serve.worker`).
    """
    adds = [
        json_io.fact_from_dict(entry, index, source="wal:adds")
        for index, entry in enumerate(record.get("adds") or [])
    ]
    removes = [
        json_io.fact_from_dict(entry, index, source="wal:removes")
        for index, entry in enumerate(record.get("removes") or [])
    ]
    return adds, removes


def _decode_graph(fold: SessionFold) -> TemporalKnowledgeGraph:
    return json_io.from_dict(fold.graph_doc, name=str(fold.graph_doc.get("name", "session")))


def recover_sessions(
    system: "TeCoRe",
    pool: "SessionPool",
    records: Iterable[Mapping[str, Any]],
    wal_dir: str,
    torn_tail: bool = False,
) -> RecoveryReport:
    """Rebuild the session pool from a scanned record stream.

    Each surviving session is re-created through ``system.session`` (the
    initial resolve) and its logged edits are replayed through
    ``session.apply`` — the exact code path that served them live.  A
    session whose replay raises unexpectedly is dropped and reported in
    ``sessions_failed`` rather than poisoning the startup.
    """
    started = time.perf_counter()
    records = list(records)
    report = RecoveryReport(wal_dir=wal_dir, records_scanned=len(records), torn_tail=torn_tail)
    state = fold_records(records)
    report.sessions_deleted = len(state.deleted)
    report.resolves_logged = state.resolves
    survivors = sorted(state.sessions.values(), key=lambda fold: fold.last_seq)
    if len(survivors) > pool.max_sessions:
        report.sessions_skipped = len(survivors) - pool.max_sessions
        survivors = survivors[-pool.max_sessions :]
    for fold in survivors:
        try:
            graph = _decode_graph(fold)
            entry = pool.restore(
                fold.session_id,
                graph,
                warm_start=fold.warm_start,
                cache_size=fold.cache_size,
                edits_applied=fold.base_edits,
            )
        except TecoreError:
            report.sessions_failed.append(fold.session_id)
            continue
        for edit in fold.edits:
            try:
                adds, removes = decode_edit_record(edit)
                entry.session.apply(adds=adds, removes=removes)
            except TecoreError:
                # The same edit failed the same validation when served live
                # (validation precedes any mutation), so skipping it keeps
                # replay aligned with the live history.
                report.edits_skipped += 1
                continue
            entry.edits_applied += 1
            report.edits_replayed += 1
        report.sessions_restored += 1
    report.duration_seconds = time.perf_counter() - started
    return report


def _fold_edit(
    graph: TemporalKnowledgeGraph,
    adds: list[TemporalFact],
    removes: list[TemporalFact],
) -> None:
    """Mutate ``graph`` exactly as ``IncrementalGrounder.apply`` would.

    Validation first (so a raising edit leaves the graph untouched, like
    the live path), then removes before adds; ``graph.add`` keeps the
    max-confidence semantics for re-added statements.
    """
    if graph.domain is not None:
        for item in adds:
            if (item.interval.start not in graph.domain or item.interval.end not in graph.domain):
                raise TecoreError(f"fact interval {item.interval} outside time domain")
    for fact in removes:
        graph.remove(fact)
    for fact in adds:
        graph.add(fact)


def compact_records(
    records: Iterable[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Fold a segment's records into one ``snapshot`` per live session.

    This is the fold function handed to :meth:`WriteAheadLog.compact`.  It
    needs no solver and takes no session locks: the graph mutation
    semantics of the incremental grounder are replayed directly on a plain
    graph, so the snapshot's content key equals the live session graph's —
    which is what keeps post-compaction recovery bit-identical.
    """
    state = fold_records(records)
    snapshots: list[dict[str, Any]] = []
    for fold in sorted(state.sessions.values(), key=lambda item: item.last_seq):
        try:
            graph = _decode_graph(fold)
        except TecoreError:  # pragma: no cover - only via external log damage
            continue
        edits_applied = fold.base_edits
        for edit in fold.edits:
            try:
                adds, removes = decode_edit_record(edit)
                _fold_edit(graph, adds, removes)
            except TecoreError:
                continue
            edits_applied += 1
        snapshots.append(
            {
                "kind": "snapshot",
                "session_id": fold.session_id,
                "graph": json_io.to_dict(graph),
                "warm_start": fold.warm_start,
                "cache_size": fold.cache_size,
                "edits_applied": edits_applied,
            }
        )
    return snapshots


def recover_from_dir(
    system: "TeCoRe", pool: "SessionPool", wal_dir: str
) -> Optional[RecoveryReport]:
    """Scan ``wal_dir``'s active segment and replay it into ``pool``.

    Returns ``None`` when the directory holds no log yet (fresh start).
    """
    from .wal import scan_wal_dir

    records, torn, segment = scan_wal_dir(wal_dir)
    if segment is None:
        return None
    return recover_sessions(system, pool, records, wal_dir, torn_tail=torn)
