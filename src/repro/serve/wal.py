"""Write-ahead session log for the serving tier.

Durability layer of ``tecore serve --wal-dir``: every session mutation
(create / edit / delete) and every accepted one-shot resolve is appended to
an on-disk log *before* the in-memory :class:`~repro.serve.sessions.
SessionPool` is touched, so a crashed process can be restarted and replayed
back to the exact client-visible state (see :mod:`repro.serve.recovery`).

Record framing
--------------
The log is a sequence of self-delimiting binary frames::

    +-------+----------------+---------------+------------------+
    | magic | payload length | CRC32(payload)| JSON payload     |
    | b"TW" | uint32 LE      | uint32 LE     | ``length`` bytes |
    +-------+----------------+---------------+------------------+

Each payload is one JSON object with at least ``kind`` (``create`` /
``edit`` / ``delete`` / ``snapshot`` / ``resolve``) and ``seq`` (the
monotone record sequence number).  A frame is only trusted when its magic,
length, and checksum all verify; the first frame that fails any of those is
treated as the **torn tail** of an interrupted append — the scan stops
there with everything before it intact, which is the standard recovery
contract of an append-only log (a crash mid-``write`` can only damage the
final frame).

Fsync policy
------------
Appends always ``write``+``flush`` atomically (one ``os.write`` worth of
bytes per frame); when the data additionally hits the platters is the
``fsync_policy`` knob:

* ``"always"`` — fsync after every record (maximum durability, slowest);
* ``"batch"``  — fsync once every ``fsync_batch`` records or
  ``fsync_interval`` seconds, whichever comes first (the default; bounds
  the post-crash loss window to one short batch);
* ``"never"``  — leave flushing to the OS (fastest; survives process
  crashes — the page cache persists — but not power loss).

Compaction
----------
:meth:`WriteAheadLog.compact` bounds replay cost: it folds the current
segment's records into per-session ``snapshot`` records (via a caller-
supplied fold function), writes them to the *next* segment file through the
atomic ``tmp`` → ``fsync`` → ``rename`` → directory-``fsync`` protocol, and
only then deletes the old segment.  Recovery always reads the
highest-numbered segment, so a crash at any point during compaction leaves
either the old or the new segment fully intact — never a blend.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from typing import Any, Callable, Iterable, Mapping, Optional

from ..errors import TecoreError

#: Frame header: magic, payload length, CRC32 of the payload (little endian).
_MAGIC = b"TW"
_HEADER = struct.Struct("<2sII")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"

FSYNC_POLICIES = ("always", "batch", "never")


class WalError(TecoreError):
    """The write-ahead log could not accept a record (served as HTTP 503)."""


def encode_record(record: Mapping[str, Any]) -> bytes:
    """Frame one record as ``magic | length | crc32 | payload`` bytes."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _scan_frames(data: bytes) -> tuple[list[dict[str, Any]], bool, int]:
    """Decode frames from ``data``; returns ``(records, torn, good_bytes)``."""
    records: list[dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        header = data[offset : offset + _HEADER.size]
        if len(header) < _HEADER.size:
            return records, True, offset
        magic, length, crc = _HEADER.unpack(header)
        if magic != _MAGIC:
            return records, True, offset
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return records, True, offset
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, True, offset
        if not isinstance(record, dict):
            return records, True, offset
        records.append(record)
        offset += _HEADER.size + length
    return records, False, offset


def read_records(path: str) -> tuple[list[dict[str, Any]], bool]:
    """Scan one segment file; returns ``(records, torn_tail)``.

    Every frame whose magic, length, and CRC32 verify is decoded; the first
    frame that does not — a short header, wrong magic, short payload, bad
    checksum, or invalid JSON — marks the torn tail of an interrupted
    append and ends the scan (``torn_tail=True``) with all earlier records
    intact.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records, torn, _ = _scan_frames(data)
    return records, torn


def _segment_number(filename: str) -> Optional[int]:
    if not (filename.startswith(_SEGMENT_PREFIX) and filename.endswith(_SEGMENT_SUFFIX)):
        return None
    stem = filename[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(stem) if stem.isdigit() else None


def _segment_name(number: int) -> str:
    return f"{_SEGMENT_PREFIX}{number:08d}{_SEGMENT_SUFFIX}"


def list_segments(wal_dir: str) -> list[tuple[int, str]]:
    """``(number, path)`` of every segment in ``wal_dir``, ascending.

    A directory that does not exist yet holds no segments — recovery runs
    before the log creates it on first start.
    """
    if not os.path.isdir(wal_dir):
        return []
    segments = []
    for name in os.listdir(wal_dir):
        number = _segment_number(name)
        if number is not None:
            segments.append((number, os.path.join(wal_dir, name)))
    segments.sort()
    return segments


def scan_wal_dir(wal_dir: str) -> tuple[list[dict[str, Any]], bool, Optional[int]]:
    """Read the records of the *active* (highest-numbered) segment.

    Returns ``(records, torn_tail, segment_number)``; ``segment_number`` is
    ``None`` when the directory holds no segment yet.  Lower-numbered
    segments are pre-compaction leftovers (a crash between the compaction
    rename and the old-segment unlink) and are intentionally ignored — the
    highest segment is always a complete fold of everything before it.
    """
    segments = list_segments(wal_dir)
    if not segments:
        return [], False, None
    number, path = segments[-1]
    records, torn = read_records(path)
    return records, torn, number


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only, checksummed, segmented session log.

    Thread-safe: one internal lock serialises appends, syncs, and
    compaction.  ``injector`` is the fault-injection seam (an object with a
    ``fire(point, **info)`` method, see :mod:`repro.verify.faults`); the
    seams are ``wal.append`` (before the frame is written), ``wal.sync``
    (before an fsync), and ``wal.commit`` (after the record is durable per
    policy).
    """

    def __init__(
        self,
        wal_dir: str,
        fsync_policy: str = "batch",
        fsync_batch: int = 8,
        fsync_interval: float = 0.05,
        injector: Any = None,
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(f"fsync_policy must be one of {FSYNC_POLICIES}, got {fsync_policy!r}")
        if fsync_batch < 1:
            raise ValueError(f"fsync_batch must be >= 1, got {fsync_batch}")
        if fsync_interval < 0:
            raise ValueError(f"fsync_interval must be >= 0, got {fsync_interval}")
        self.wal_dir = wal_dir
        self.fsync_policy = fsync_policy
        self.fsync_batch = fsync_batch
        self.fsync_interval = fsync_interval
        self.injector = injector
        os.makedirs(wal_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self._unsynced = 0
        self._last_sync = time.monotonic()
        # Counters for /stats.
        self.appended_total = 0
        self.synced_total = 0
        self.append_errors_total = 0
        self.compactions_total = 0
        self.records_since_compaction = 0
        segments = list_segments(wal_dir)
        if segments:
            self._segment_number, path = segments[-1]
            with open(path, "rb") as handle:
                data = handle.read()
            records, torn, good = _scan_frames(data)
            self._next_seq = max((r.get("seq", -1) for r in records), default=-1) + 1
            self.records_since_compaction = sum(1 for r in records if r.get("kind") != "snapshot")
            if torn:
                # Truncate the damaged tail so new appends follow the last
                # good frame instead of garbage the scanner would stop at.
                with open(path, "rb+") as handle:
                    handle.truncate(good)
        else:
            self._segment_number = 0
            self._next_seq = 0
            with open(self._segment_path(0), "ab"):
                pass
        self._handle = open(self._segment_path(self._segment_number), "ab")

    def _segment_path(self, number: int) -> str:
        return os.path.join(self.wal_dir, _segment_name(number))

    @property
    def segment_number(self) -> int:
        return self._segment_number

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._next_seq

    # ------------------------------------------------------------------ #
    def append(self, record: Mapping[str, Any]) -> int:
        """Durably frame and append one record; returns its sequence number.

        The frame is written with a single ``write`` call and flushed to the
        OS before returning; fsync follows the configured policy.  On any
        I/O failure the file is truncated back to the pre-append offset (so
        later appends never follow a half-written frame) and
        :class:`WalError` is raised — the caller must *not* apply the
        mutation.
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            seq = self._next_seq
            frame = encode_record({**record, "seq": seq})
            offset = self._handle.tell()
            try:
                # The injected-fault seam sits inside the OSError guard so a
                # simulated ENOSPC takes the same 503-no-mutation path as a
                # real one (a crash is a BaseException and still escapes).
                if self.injector is not None:
                    self.injector.fire("wal.append", kind=record.get("kind"))
                self._handle.write(frame)
                self._handle.flush()
            except OSError as exc:
                self.append_errors_total += 1
                try:  # Best effort: drop any partial frame.
                    self._handle.truncate(offset)
                except OSError:
                    pass
                raise WalError(f"write-ahead log append failed: {exc}") from exc
            self._next_seq = seq + 1
            self.appended_total += 1
            self.records_since_compaction += 1
            self._maybe_sync()
            if self.injector is not None:
                self.injector.fire("wal.commit", kind=record.get("kind"), seq=seq)
            return seq

    def _maybe_sync(self) -> None:
        """Apply the fsync policy after one append (lock held)."""
        if self.fsync_policy == "never":
            return
        self._unsynced += 1
        if self.fsync_policy == "batch":
            due = (
                self._unsynced >= self.fsync_batch
                or time.monotonic() - self._last_sync >= self.fsync_interval
            )
            if not due:
                return
        self._sync_locked()

    def _sync_locked(self) -> None:
        if self.injector is not None:
            self.injector.fire("wal.sync")
        os.fsync(self._handle.fileno())
        self.synced_total += 1
        self._unsynced = 0
        self._last_sync = time.monotonic()

    def records(self) -> tuple[list[dict[str, Any]], bool]:
        """Read the active segment back; returns ``(records, torn_tail)``.

        Used by sharded crash recovery to replay one worker's shard while
        the log keeps serving appends: the read happens under the log's own
        lock after a flush, so it observes every record appended before the
        call and never a half-written frame (``torn_tail`` can only report
        pre-existing external damage).
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            self._handle.flush()
            return read_records(self._segment_path(self._segment_number))

    def sync(self) -> None:
        """Force an fsync of everything appended so far."""
        with self._lock:
            if not self._closed:
                self._handle.flush()
                self._sync_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                if self.fsync_policy != "never":
                    os.fsync(self._handle.fileno())
            except OSError:
                pass
            self._handle.close()

    # ------------------------------------------------------------------ #
    def compact(self, fold: Callable[[list[dict[str, Any]]], Iterable[Mapping[str, Any]]]) -> int:
        """Fold the active segment into a fresh one; returns records written.

        ``fold`` receives every record of the current segment and yields the
        replacement records (typically one ``snapshot`` per live session —
        see :func:`repro.serve.recovery.compact_records`).  The new segment
        is written to a temporary file, fsynced, atomically renamed into
        place as the next segment number, and the directory fsynced before
        the old segment is unlinked; the highest-numbered segment therefore
        always holds a complete, self-contained log.
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced = 0
            old_number = self._segment_number
            records, torn = read_records(self._segment_path(old_number))
            if torn:  # pragma: no cover - only reachable via external corruption
                raise WalError("active segment has a torn tail; refusing to compact")
            folded = list(fold(records))
            new_number = old_number + 1
            new_path = self._segment_path(new_number)
            tmp_path = new_path + ".tmp"
            seq = self._next_seq
            with open(tmp_path, "wb") as handle:
                for record in folded:
                    handle.write(encode_record({**dict(record), "seq": seq}))
                    seq += 1
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, new_path)
            _fsync_dir(self.wal_dir)
            self._handle.close()
            self._handle = open(new_path, "ab")
            self._segment_number = new_number
            self._next_seq = seq
            for number, path in list_segments(self.wal_dir):
                if number < new_number:
                    os.unlink(path)
            _fsync_dir(self.wal_dir)
            self.compactions_total += 1
            self.records_since_compaction = 0
            self._last_sync = time.monotonic()
            return len(folded)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """Counters for ``/stats``."""
        with self._lock:
            return {
                "wal_dir": self.wal_dir,
                "fsync_policy": self.fsync_policy,
                "segment": self._segment_number,
                "next_seq": self._next_seq,
                "appended": self.appended_total,
                "synced": self.synced_total,
                "append_errors": self.append_errors_total,
                "compactions": self.compactions_total,
                "records_since_compaction": self.records_since_compaction,
            }
