"""The TeCoRe resolution service (``tecore serve``).

A stdlib-only concurrent HTTP layer over the library's serving primitives:

* :mod:`repro.serve.server` — the :class:`ThreadingHTTPServer` front-end and
  endpoint routing (:class:`ResolutionService`);
* :mod:`repro.serve.batcher` — micro-batching of one-shot ``/resolve``
  requests through one shared translator+solver, with flush-on-size /
  flush-on-deadline, request coalescing, and 503 backpressure;
* :mod:`repro.serve.sessions` — the LRU pool of per-session-locked
  incremental :class:`~repro.core.session.ResolutionSession` objects;
* :mod:`repro.serve.protocol` — the JSON wire codecs (reusing
  :mod:`repro.kg.io.json_io`);
* :mod:`repro.serve.metrics` — request counters and latency percentiles
  for ``GET /stats``;
* :mod:`repro.serve.wal` — the write-ahead session log behind
  ``tecore serve --wal-dir`` (checksummed frames, fsync policies,
  compaction);
* :mod:`repro.serve.recovery` — crash recovery by replaying the log
  through :class:`~repro.core.session.ResolutionSession`;
* :mod:`repro.serve.sharding` / :mod:`repro.serve.worker` — the
  multi-process front-end behind ``tecore serve --workers N``: consistent-
  hash session affinity, per-worker micro-batchers, shard-scoped WAL
  replay after a worker crash.
"""

from .batcher import (
    BatchObserver,
    MicroBatcher,
    RequestDeadlineExceeded,
    ServiceOverloadedError,
)
from .metrics import LatencyRecorder, ServiceMetrics
from .recovery import (
    RecoveryReport,
    compact_records,
    decode_edit_record,
    fold_records,
    recover_sessions,
)
from .wal import WalError, WriteAheadLog
from .protocol import (
    ProtocolError,
    decode_edits,
    decode_graph,
    decode_json,
    encode_result,
    graph_content_key,
    stable_view,
)
from .server import (
    DropConnection,
    ResolutionService,
    ServerConfig,
    ServiceCore,
    TecoreHTTPServer,
    make_server,
)
from .sessions import SessionEntry, SessionPool, UnknownSessionError
from .sharding import ConsistentHashRing, ShardedResolutionService, WorkerHandle
from .worker import WorkerRuntime, worker_main

__all__ = [
    "BatchObserver",
    "ConsistentHashRing",
    "DropConnection",
    "LatencyRecorder",
    "MicroBatcher",
    "ProtocolError",
    "RecoveryReport",
    "RequestDeadlineExceeded",
    "ResolutionService",
    "ServerConfig",
    "ServiceCore",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "SessionEntry",
    "SessionPool",
    "ShardedResolutionService",
    "TecoreHTTPServer",
    "UnknownSessionError",
    "WalError",
    "WorkerHandle",
    "WorkerRuntime",
    "WriteAheadLog",
    "compact_records",
    "decode_edit_record",
    "decode_edits",
    "decode_graph",
    "decode_json",
    "encode_result",
    "fold_records",
    "graph_content_key",
    "make_server",
    "recover_sessions",
    "stable_view",
    "worker_main",
]
