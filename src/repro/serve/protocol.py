"""JSON wire protocol of the resolution service.

Requests and responses reuse the graph interchange format of
:mod:`repro.kg.io.json_io` — a served graph document is exactly what
``tecore resolve --json`` consumes and what :func:`repro.kg.io.json_io.dumps`
emits, so clients can round-trip graphs between files and the service
without translation.

Request shapes
--------------
``POST /resolve`` and ``POST /sessions`` take either a bare graph document
(``{"name": ..., "facts": [...]}``) or an envelope ``{"graph": {...},
"include_graphs": bool}``.  ``POST /sessions/{id}/edits`` takes
``{"adds": [fact, ...], "removes": [fact, ...]}`` with facts in the same
JSON object form (a change-stream step as JSON).

Response stability
------------------
:func:`encode_result` embeds wall-clock timings (``runtime_seconds``,
delta ``grounding_seconds``/``solve_seconds``) that naturally differ between
runs; :func:`stable_view` strips exactly those, so two payloads produced
from bit-identical resolutions compare equal — the differential tests and
``benchmarks/bench_serve.py`` assert on it.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..core.result import ResolutionResult
from ..errors import ParseError, TecoreError
from ..kg import TemporalFact, TemporalKnowledgeGraph
from ..kg.io import json_io


class ProtocolError(TecoreError):
    """A malformed request body (served as HTTP 400)."""


def decode_json(body: bytes, what: str = "request") -> Mapping[str, Any]:
    """Parse a request body into a JSON object."""
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON in {what}: {exc}") from exc
    if not isinstance(document, Mapping):
        raise ProtocolError(f"{what} must be a JSON object")
    return document


def decode_graph(
    document: Mapping[str, Any], default_name: str = "request"
) -> TemporalKnowledgeGraph:
    """Extract the UTKG from a resolve/session request."""
    payload = document.get("graph", document)
    if not isinstance(payload, Mapping) or "facts" not in payload:
        raise ProtocolError("request needs a graph document with a 'facts' list")
    try:
        return json_io.from_dict(payload, name=str(payload.get("name", default_name)))
    except ParseError as exc:
        raise ProtocolError(str(exc)) from exc


def decode_edits(
    document: Mapping[str, Any],
) -> tuple[list[TemporalFact], list[TemporalFact]]:
    """Extract the ``adds``/``removes`` fact lists from an edits request."""
    adds_raw = document.get("adds", [])
    removes_raw = document.get("removes", [])
    if not isinstance(adds_raw, list) or not isinstance(removes_raw, list):
        raise ProtocolError("'adds' and 'removes' must be lists of fact objects")
    if not adds_raw and not removes_raw:
        raise ProtocolError("edit request needs at least one entry in 'adds' or 'removes'")
    try:
        adds = [
            json_io.fact_from_dict(entry, index, source="adds")
            for index, entry in enumerate(adds_raw)
        ]
        removes = [
            json_io.fact_from_dict(entry, index, source="removes")
            for index, entry in enumerate(removes_raw)
        ]
    except ParseError as exc:
        raise ProtocolError(str(exc)) from exc
    return adds, removes


def encode_result(result: ResolutionResult, include_graphs: bool = False) -> dict[str, Any]:
    """The response payload for one resolution result."""
    payload = result.as_dict()
    if include_graphs:
        payload["consistent_graph"] = json_io.to_dict(result.consistent_graph)
        payload["expanded_graph"] = json_io.to_dict(result.expanded_graph)
    return payload


#: Timing fields stripped by :func:`stable_view` (never bit-stable).
_TIMING_KEYS = ("runtime_seconds", "grounding_seconds", "solve_seconds")


def stable_view(payload: Mapping[str, Any]) -> dict[str, Any]:
    """A result payload minus wall-clock timings, for bit-identity checks."""
    stable: dict[str, Any] = {}
    for key, value in payload.items():
        if key in _TIMING_KEYS:
            continue
        stable[key] = stable_view(value) if isinstance(value, Mapping) else value
    return stable


def graph_content_key(graph: TemporalKnowledgeGraph) -> tuple:
    """Order-sensitive content identity of a request graph.

    Two requests with equal keys describe the same named graph with the same
    statements, confidences, and statement order — grounding (and therefore
    the full resolution) is a pure function of exactly that, which is what
    makes coalescing identical in-flight requests onto one solve sound.
    Delegates to :meth:`TemporalKnowledgeGraph.content_key`, which the
    verification harness shares as its replay state digest.
    """
    return graph.content_key()
