"""The ``tecore serve`` HTTP service: concurrent resolution over a UTKG API.

A stdlib-only :class:`http.server.ThreadingHTTPServer` front-end over the
library's serving primitives — one request thread per connection, with all
actual resolution funnelled into the micro-batcher's single flush worker
(one-shot requests) or the per-session locks (stateful sessions):

========  ==========================  ===========================================
method    path                        behaviour
========  ==========================  ===========================================
POST      ``/resolve``                one-shot resolution, micro-batched through
                                      a shared translator+solver
POST      ``/sessions``               open an incremental session (initial
                                      resolve included in the response)
POST      ``/sessions/{id}/edits``    apply a change-stream step (JSON ``adds``/
                                      ``removes``), returns the new result with
                                      its delta statistics
GET       ``/sessions/{id}/result``   latest result of a session
DELETE    ``/sessions/{id}``          close a session
GET       ``/healthz``                liveness + configuration summary
GET       ``/stats``                  per-endpoint latency percentiles, batcher
                                      counters, session-pool and component-cache
                                      hit rates
========  ==========================  ===========================================

Served responses are bit-identical to direct library calls: ``/resolve``
payloads match :meth:`TeCoRe.resolve <repro.core.tecore.TeCoRe.resolve>` and
session payloads match :class:`~repro.core.session.ResolutionSession`
results, modulo wall-clock timing fields (see
:func:`repro.serve.protocol.stable_view`).
"""

from __future__ import annotations

import json
import re
import secrets
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import urlsplit

from ..core.tecore import TeCoRe
from ..errors import ProgramLintError, TecoreError
from ..kg.io import json_io
from .batcher import MicroBatcher, RequestDeadlineExceeded, ServiceOverloadedError
from .metrics import ServiceMetrics
from .protocol import (
    ProtocolError,
    decode_edits,
    decode_graph,
    decode_json,
    encode_result,
)
from .recovery import RecoveryReport, compact_records, recover_from_dir
from .sessions import SessionPool, UnknownSessionError
from .wal import WalError, WriteAheadLog

_SESSION_ROUTE = re.compile(r"^/sessions/(?P<sid>[0-9a-f]+)(?P<tail>/edits|/result)?$")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the resolution service."""

    host: str = "127.0.0.1"
    port: int = 8799
    #: Micro-batching: flush when this many one-shot requests are waiting …
    max_batch: int = 8
    #: … or when the oldest waiting request is this old (seconds).
    batch_delay: float = 0.01
    #: Waiting-request bound; beyond it ``POST /resolve`` returns 503.
    queue_limit: int = 64
    #: Coalesce content-identical in-flight graphs onto one solve.
    coalesce: bool = True
    #: LRU bound on cached /resolve responses by graph content (0 disables).
    response_cache: int = 128
    #: LRU bound on concurrently open sessions.
    max_sessions: int = 64
    #: Per-request wait bound inside the batch queue (seconds).
    request_timeout: float = 60.0
    #: Latency samples kept per endpoint for the /stats percentiles.
    metrics_window: int = 1024
    #: Durability: directory of the write-ahead session log (None disables).
    wal_dir: str | None = None
    #: WAL fsync policy: "always", "batch", or "never" (see serve/wal.py).
    fsync_policy: str = "batch"
    #: "batch" policy: fsync every this many records …
    fsync_batch: int = 8
    #: … or this many seconds after the last fsync, whichever first.
    fsync_interval: float = 0.05
    #: Compact the log once this many uncompacted records accumulate.
    compact_every: int = 256
    #: End-to-end deadline per request (seconds); overruns answer 504.
    request_deadline: float | None = None
    #: Shed /resolve at this queue depth (< queue_limit) so session edits
    #: keep their request threads under saturation (None disables).
    shed_resolve_at: int | None = None
    #: Boot-time static analysis of the rule program: "strict" (default)
    #: refuses to start on error-severity findings, "off" disables.
    lint: str = "strict"
    #: Resolver worker processes for sharded serving (see
    #: :mod:`repro.serve.sharding`); 0 (the default) serves in-process.
    workers: int = 0


class DropConnection(TecoreError):
    """Internal: abandon the connection without sending any HTTP response.

    Raised by the sharded service when a mutating request's worker died
    *after* the write-ahead append: the operation may or may not take
    effect (crash recovery replays the logged record), so any definite
    status — success or failure — could be a lie.  The client observes a
    dropped connection and must treat the operation as pending, exactly
    the ambiguity the serializability checker's pending-operation
    semantics admit.  Never raised by the single-process service.
    """


class ServiceCore:
    """Request plumbing shared by the in-process and sharded services.

    Owns the pieces both front-ends need — config, boot-time program lint,
    per-endpoint metrics, the history-recorder seam, optional WAL handles —
    and the :meth:`handle` loop with its exception → HTTP-status mapping.
    Subclasses implement ``_dispatch`` (endpoint routing) and ``close``.
    """

    def __init__(
        self,
        system: TeCoRe,
        config: ServerConfig | None = None,
        recorder: Any = None,
        injector: Any = None,
    ) -> None:
        self.system = system
        self.config = config or ServerConfig()
        self.recorder = recorder
        self.injector = injector
        # Boot-time validation: a program the static analyzer proves broken
        # (dead rules, infeasible hard cores, …) must not reach the solver
        # loop where every request would hit the same failure.
        if self.config.lint != "off":
            report = system.lint_report()
            if report.errors:
                raise ProgramLintError(
                    "refusing to serve a rule program with "
                    f"{len(report.errors)} static-analysis error(s):\n"
                    + report.render(),
                    report=report,
                )
        self.metrics = ServiceMetrics(window=self.config.metrics_window)
        self.wal: WriteAheadLog | None = None
        self.recovery: RecoveryReport | None = None
        self.started = time.monotonic()

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _dispatch(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        op: Any = None,
        deadline: float | None = None,
    ) -> tuple[int, dict[str, Any]]:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def handle(
        self, method: str, target: str, body: bytes
    ) -> tuple[int | None, dict[str, Any] | None]:
        """Serve one request; returns ``(http_status, json_payload)``.

        A ``(None, None)`` return tells the HTTP layer to drop the
        connection without responding (see :class:`DropConnection`); the
        recorded operation is then left pending in the history.
        """
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = split.query
        endpoint, started = self._endpoint_label(method, path), time.perf_counter()
        deadline = (
            time.monotonic() + self.config.request_deadline
            if self.config.request_deadline is not None
            else None
        )
        op = None
        if self.recorder is not None:
            op = self._begin_record(method, path, query, body)
        try:
            status, payload = self._dispatch(method, path, query, body, op, deadline)
        except ProtocolError as exc:
            status, payload = 400, {"error": str(exc)}
        except UnknownSessionError as exc:
            status, payload = 404, {"error": str(exc)}
        except DropConnection:
            self.metrics.observe(endpoint, time.perf_counter() - started, error=True)
            self._maybe_compact()
            return None, None  # op stays pending: its effect is undecided
        except (ServiceOverloadedError, WalError) as exc:
            status, payload = 503, {"error": str(exc), "retry_after_seconds": 1}
        except RequestDeadlineExceeded as exc:
            status, payload = 504, {"error": str(exc), "retry_after_seconds": 1}
        except TecoreError as exc:
            status, payload = 500, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a request must never kill the connection silently
            status, payload = 500, {"error": f"internal error: {exc}"}
        self.metrics.observe(endpoint, time.perf_counter() - started, error=status >= 400)
        if op is not None:
            self.recorder.complete(op, status, payload)
        self._maybe_compact()
        return status, payload

    def _maybe_compact(self) -> None:
        """Fold the log into per-session snapshots once it grows long enough.

        Runs on the request thread that tipped the counter, after its
        response is recorded and with no session locks held; the fold
        itself needs only the WAL's own lock (it replays graph mutations,
        never solves), so concurrent requests keep flowing — at worst one
        racing thread compacts an already-fresh segment, which is a no-op.
        """
        if (
            self.wal is not None and self.wal.records_since_compaction >= self.config.compact_every
        ):
            try:
                self.wal.compact(compact_records)
            except (TecoreError, OSError):
                pass  # never fail a request over housekeeping; retried next time

    #: (method, path) → recorded operation kind for the fixed routes.
    _RECORDED_KINDS = {
        ("POST", "/resolve"): "resolve",
        ("POST", "/sessions"): "session_create",
    }
    _RECORDED_TAILS = {
        ("POST", "/edits"): "session_edit",
        ("GET", "/result"): "session_read",
        ("DELETE", ""): "session_delete",
    }

    def _begin_record(self, method: str, path: str, query: str, body: bytes):
        """Open a history operation for a client-visible request (or None)."""
        kind = self._RECORDED_KINDS.get((method, path))
        session_id = None
        if kind is None:
            match = _SESSION_ROUTE.match(path)
            if match is None:
                return None  # /healthz, /stats, unroutable paths
            kind = self._RECORDED_TAILS.get((method, match.group("tail") or ""))
            if kind is None:
                return None
            session_id = match.group("sid")
        if kind == "session_read":
            request = {
                "include_graphs": ("include_graphs=1" in query or "include_graphs=true" in query)
            }
        else:
            try:
                request = dict(decode_json(body))
            except ProtocolError:
                request = None  # recorded anyway; the dispatch will 400
        return self.recorder.begin(kind, request=request, session_id=session_id)

    @staticmethod
    def _endpoint_label(method: str, path: str) -> str:
        match = _SESSION_ROUTE.match(path)
        if match:
            tail = match.group("tail") or ""
            return f"{method} /sessions/{{id}}{tail}"
        if path in ("/healthz", "/stats", "/resolve", "/sessions"):
            return f"{method} {path}"
        # One shared bucket for everything unroutable: per-path recorders
        # would let a crawler grow the metrics map without bound.
        return "unmatched"

    # ------------------------------------------------------------------ #
    # Deadlines
    # ------------------------------------------------------------------ #
    def _remaining(self, deadline: float | None) -> float | None:
        """Seconds left before ``deadline`` (None = no deadline)."""
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RequestDeadlineExceeded(
                f"request deadline of {self.config.request_deadline:g}s exceeded"
            )
        return remaining

    def _acquire(self, entry: Any, deadline: float | None) -> None:
        """Take a session lock within the request deadline (else 504)."""
        remaining = self._remaining(deadline)
        if remaining is None:
            entry.lock.acquire()
        elif not entry.lock.acquire(timeout=remaining):
            raise RequestDeadlineExceeded(
                f"request deadline of {self.config.request_deadline:g}s exceeded "
                "waiting for the session lock"
            )


class ResolutionService(ServiceCore):
    """Routing and endpoint logic, independent of the HTTP plumbing.

    ``recorder`` is the concurrency-correctness seam (see
    :mod:`repro.verify.history`): when given, every client-visible operation
    — resolve, session create/edit/read/delete — is logged with its
    invocation/response ordering and stable payload, and the recorder also
    receives the batcher's coalesced-group membership as its
    :class:`~repro.serve.batcher.BatchObserver`.  Recording never changes
    serving behaviour; with ``recorder=None`` (the default) the seams are
    inert.
    """

    def __init__(
        self,
        system: TeCoRe,
        config: ServerConfig | None = None,
        recorder: Any = None,
        injector: Any = None,
    ) -> None:
        super().__init__(system, config, recorder=recorder, injector=injector)
        self.batcher = MicroBatcher(
            system.shared_resolver(),
            max_batch=self.config.max_batch,
            max_delay=self.config.batch_delay,
            queue_limit=self.config.queue_limit,
            coalesce=self.config.coalesce,
            cache_size=self.config.response_cache,
            observer=recorder,
            injector=injector,
        )
        self.sessions = SessionPool(
            system, max_sessions=self.config.max_sessions, injector=injector
        )
        # Durability: replay whatever a previous process left in the log
        # *before* opening it for appends (the WAL constructor also trims a
        # torn tail so new frames never follow damaged bytes).
        if self.config.wal_dir is not None:
            self.recovery = recover_from_dir(system, self.sessions, self.config.wal_dir)
            self.wal = WriteAheadLog(
                self.config.wal_dir,
                fsync_policy=self.config.fsync_policy,
                fsync_batch=self.config.fsync_batch,
                fsync_interval=self.config.fsync_interval,
                injector=injector,
            )

    def close(self) -> None:
        self.batcher.close()
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        op: Any = None,
        deadline: float | None = None,
    ) -> tuple[int, dict[str, Any]]:
        if self.injector is not None:
            self.injector.fire("server.dispatch", method=method, path=path)
        if path == "/healthz" and method == "GET":
            return 200, self._health()
        if path == "/stats" and method == "GET":
            return 200, self._stats()
        if path == "/resolve" and method == "POST":
            return 200, self._resolve(decode_json(body), op, deadline)
        if path == "/sessions" and method == "POST":
            return 201, self._create_session(decode_json(body))
        match = _SESSION_ROUTE.match(path)
        if match:
            sid, tail = match.group("sid"), match.group("tail")
            if tail == "/edits" and method == "POST":
                return 200, self._apply_edits(sid, decode_json(body), deadline)
            if tail == "/result" and method == "GET":
                return 200, self._session_result(sid, query, deadline)
            if tail is None and method == "DELETE":
                return 200, self._delete_session(sid, deadline)
        return 404, {"error": f"no endpoint {method} {path}"}

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _resolve(
        self,
        document: Mapping[str, Any],
        op: Any = None,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        graph = decode_graph(document)
        timeout = self.config.request_timeout
        remaining = self._remaining(deadline)
        if remaining is not None:
            timeout = min(timeout, remaining)
        result = self.batcher.submit(
            graph,
            timeout=timeout,
            tag=op.op_id if op is not None else None,
            shed_depth=self.config.shed_resolve_at,
        )
        if self.wal is not None:
            # Audit record of an *accepted* resolve — stateless, so it is
            # appended after success and folded away by compaction.
            self.wal.append({"kind": "resolve", "name": graph.name, "facts": len(graph)})
        return encode_result(result, include_graphs=bool(document.get("include_graphs")))

    def _create_session(self, document: Mapping[str, Any]) -> dict[str, Any]:
        graph = decode_graph(document, default_name="session")
        cache_size = document.get("cache_size", 8192)
        if not isinstance(cache_size, int) or cache_size < 1:
            raise ProtocolError(f"cache_size must be a positive integer, got {cache_size!r}")
        warm_start = bool(document.get("warm_start"))
        session_id = None
        if self.wal is not None:
            # Log-before-apply: pin the id, make the create durable, and
            # only then run the initial resolve.  A crash in between is
            # replayed deterministically at the next startup.
            session_id = secrets.token_hex(8)
            self.wal.append(
                {
                    "kind": "create",
                    "session_id": session_id,
                    "graph": json_io.to_dict(graph),
                    "warm_start": warm_start,
                    "cache_size": cache_size,
                }
            )
        entry = self.sessions.create(
            graph,
            warm_start=warm_start,
            cache_size=cache_size,
            session_id=session_id,
        )
        with entry.lock:
            payload = encode_result(
                entry.session.result,
                include_graphs=bool(document.get("include_graphs")),
            )
        return {"session_id": entry.session_id, "result": payload}

    def _apply_edits(
        self, sid: str, document: Mapping[str, Any], deadline: float | None = None
    ) -> dict[str, Any]:
        adds, removes = decode_edits(document)
        entry = self.sessions.get(sid)
        self._acquire(entry, deadline)
        try:
            # Re-check after winning the lock: a concurrent DELETE may have
            # reported the session's final state in the meantime, and an
            # edit applied after that response would be unserializable.
            if entry.closed:
                raise UnknownSessionError(f"no session {sid!r}")
            if self.wal is not None:
                # Log-before-apply, under the session lock: the per-session
                # record order in the log is exactly the apply order.
                self.wal.append(
                    {
                        "kind": "edit",
                        "session_id": sid,
                        "adds": [json_io.fact_to_dict(fact) for fact in adds],
                        "removes": [json_io.fact_to_dict(fact) for fact in removes],
                    }
                )
            if self.injector is not None:
                self.injector.fire("session.apply", session_id=sid)
            result = entry.session.apply(adds=adds, removes=removes)
            entry.edits_applied += 1
            payload = encode_result(result, include_graphs=bool(document.get("include_graphs")))
        finally:
            entry.lock.release()
        return {"session_id": sid, "result": payload}

    def _session_result(
        self, sid: str, query: str, deadline: float | None = None
    ) -> dict[str, Any]:
        entry = self.sessions.get(sid)
        include_graphs = "include_graphs=1" in query or "include_graphs=true" in query
        self._acquire(entry, deadline)
        try:
            if entry.closed:
                raise UnknownSessionError(f"no session {sid!r}")
            payload = encode_result(entry.session.result, include_graphs=include_graphs)
        finally:
            entry.lock.release()
        return {"session_id": sid, "result": payload}

    def _delete_session(self, sid: str, deadline: float | None = None) -> dict[str, Any]:
        # Tombstone-before-unroute: the delete must be durable *before* the
        # final state is reported (and before the id stops routing), so a
        # post-crash recovery can never resurrect a session whose deletion
        # a client observed.  A WAL failure here leaves the session alive.
        entry = self.sessions.get(sid)
        self._acquire(entry, deadline)
        try:
            if entry.closed:
                raise UnknownSessionError(f"no session {sid!r}")
            if self.wal is not None:
                self.wal.append({"kind": "delete", "session_id": sid})
            entry.closed = True
            facts = len(entry.session.graph)
            edits = entry.edits_applied
        finally:
            entry.lock.release()
        self.sessions.discard(sid)
        return {"session_id": sid, "deleted": True, "facts": facts, "edits_applied": edits}

    def _health(self) -> dict[str, Any]:
        health = {
            "status": "ok",
            "solver": self.system.solver,
            "engine": self.system.engine,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "sessions": len(self.sessions),
            "queue_depth": self.batcher.queue_depth,
            "durable": self.wal is not None,
        }
        if self.recovery is not None:
            health["recovered_sessions"] = self.recovery.sessions_restored
        return health

    def _stats(self) -> dict[str, Any]:
        stats = {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "endpoints": self.metrics.snapshot(),
            "batcher": self.batcher.snapshot(),
            "sessions": self.sessions.snapshot(),
        }
        if self.wal is not None:
            stats["wal"] = self.wal.snapshot()
        if self.recovery is not None:
            stats["recovery"] = self.recovery.as_dict()
        return stats


class _RequestHandler(BaseHTTPRequestHandler):
    server: "TecoreHTTPServer"
    protocol_version = "HTTP/1.1"

    def _serve(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            status, payload = 400, {"error": "invalid Content-Length header"}
        else:
            body = self.rfile.read(length) if length else b"{}"
            status, payload = self.server.service.handle(self.command, self.path, body)
        if status is None:
            # Sharded serving dropped this connection on purpose: the
            # request's worker died after the write-ahead append, so the
            # mutation may or may not take effect after recovery.  Any
            # definite status would over-promise; the client must treat
            # the operation as pending.
            self.close_connection = True
            return
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        if status in (503, 504):
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(encoded)

    do_GET = do_POST = do_DELETE = _serve

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics' job; keep stderr quiet


class TecoreHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one service front-end.

    ``service`` is any :class:`ServiceCore` — the in-process
    :class:`ResolutionService` or the multi-process
    :class:`~repro.serve.sharding.ShardedResolutionService`; the HTTP layer
    only ever calls ``handle`` and ``close``.
    """

    daemon_threads = True

    def __init__(self, service: ServiceCore) -> None:
        self.service = service
        super().__init__((service.config.host, service.config.port), _RequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def run_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever, name="tecore-serve", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        """Stop serving and release the batcher and the listening socket."""
        self.shutdown()
        self.server_close()
        self.service.close()


def make_server(
    system: TeCoRe,
    config: ServerConfig | None = None,
    recorder: Any = None,
    injector: Any = None,
) -> TecoreHTTPServer:
    """Build a ready-to-run server (``port=0`` picks a free port).

    ``config.workers > 0`` selects the sharded multi-process front-end
    (see :mod:`repro.serve.sharding`); the default serves in-process.
    ``recorder`` optionally attaches a history recorder (see
    :mod:`repro.verify.history`); ``injector`` a fault-injection schedule
    (see :mod:`repro.verify.faults`) — both default to inert.
    """
    config = config or ServerConfig()
    if config.workers > 0:
        from .sharding import ShardedResolutionService

        service: ServiceCore = ShardedResolutionService(
            system, config, recorder=recorder, injector=injector
        )
    else:
        service = ResolutionService(system, config, recorder=recorder, injector=injector)
    return TecoreHTTPServer(service)
