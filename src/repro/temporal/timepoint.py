"""Discrete time domain.

The paper models validity time over "a discrete time domain T as a linearly
ordered finite sequence of time points, for instance, days, minutes, or
milliseconds".  :class:`TimeDomain` captures that finite, linearly ordered
sequence; time points themselves are plain integers so that arithmetic
predicates in inference rules (``t' - t < 20``) stay trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import TimeDomainError

#: A time point is an integer index into the discrete domain (a year, a day
#: number, a millisecond offset, ...).  Using a bare ``int`` keeps grounding
#: and ILP encodings cheap.
TimePoint = int


@dataclass(frozen=True, slots=True)
class TimeDomain:
    """A finite, linearly ordered, discrete sequence of time points.

    Parameters
    ----------
    start:
        First valid time point (inclusive).
    end:
        Last valid time point (inclusive).
    granularity:
        Human-readable unit label ("year", "day", "ms"); informational only.

    Examples
    --------
    >>> dom = TimeDomain(1950, 2020, granularity="year")
    >>> 1984 in dom
    True
    >>> dom.clamp(2050)
    2020
    """

    start: TimePoint
    end: TimePoint
    granularity: str = "year"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TimeDomainError(f"time domain end ({self.end}) precedes start ({self.start})")

    def __contains__(self, point: object) -> bool:
        if not isinstance(point, int) or isinstance(point, bool):
            return False
        return self.start <= point <= self.end

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __iter__(self) -> Iterator[TimePoint]:
        return iter(range(self.start, self.end + 1))

    def validate(self, point: TimePoint) -> TimePoint:
        """Return ``point`` unchanged, raising if it lies outside the domain."""
        if point not in self:
            raise TimeDomainError(f"time point {point} outside domain [{self.start}, {self.end}]")
        return point

    def clamp(self, point: TimePoint) -> TimePoint:
        """Clamp ``point`` into the domain."""
        return min(max(point, self.start), self.end)

    def expand(self, point: TimePoint) -> "TimeDomain":
        """Return a domain widened (if necessary) to include ``point``."""
        if point in self:
            return self
        return TimeDomain(min(self.start, point), max(self.end, point), self.granularity)

    @classmethod
    def spanning(
        cls, points: Iterator[TimePoint] | list[TimePoint], granularity: str = "year"
    ) -> "TimeDomain":
        """Build the smallest domain containing every point in ``points``."""
        pts = list(points)
        if not pts:
            raise TimeDomainError("cannot build a time domain from no points")
        return cls(min(pts), max(pts), granularity)


#: Default domain used by the examples and dataset generators: modern sports
#: careers expressed in years, matching the paper's running example.
DEFAULT_DOMAIN = TimeDomain(1900, 2100, granularity="year")
