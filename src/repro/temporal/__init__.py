"""Temporal substrate: discrete time, intervals, Allen's algebra, coalescing."""

from .allen import (
    ALL_RELATIONS,
    CONSTRAINT_PREDICATES,
    AllenRelation,
    before,
    compose,
    disjoint,
    evaluate_predicate,
    overlaps,
    relation_between,
)
from .arithmetic import (
    COMPARATORS,
    INTERVAL_BINARY_FUNCTIONS,
    INTERVAL_FUNCTIONS,
    IntervalExpression,
    compare,
    difference,
    gap_between,
)
from .coalesce import coalesce_intervals, coalesce_weighted, group_and_coalesce
from .pointalgebra import (
    OPERATOR_RELATIONS,
    PREDICATE_ENCODINGS,
    PointNetwork,
    PredicateEncoding,
    compose_relations,
    invert_relation,
)
from .interval import TimeInterval, span_of, total_coverage
from .timepoint import DEFAULT_DOMAIN, TimeDomain, TimePoint

__all__ = [
    "ALL_RELATIONS",
    "COMPARATORS",
    "CONSTRAINT_PREDICATES",
    "DEFAULT_DOMAIN",
    "INTERVAL_BINARY_FUNCTIONS",
    "INTERVAL_FUNCTIONS",
    "AllenRelation",
    "IntervalExpression",
    "OPERATOR_RELATIONS",
    "PREDICATE_ENCODINGS",
    "PointNetwork",
    "PredicateEncoding",
    "TimeDomain",
    "TimeInterval",
    "TimePoint",
    "before",
    "coalesce_intervals",
    "coalesce_weighted",
    "compare",
    "compose",
    "compose_relations",
    "difference",
    "disjoint",
    "evaluate_predicate",
    "gap_between",
    "invert_relation",
    "group_and_coalesce",
    "overlaps",
    "relation_between",
    "span_of",
    "total_coverage",
]
