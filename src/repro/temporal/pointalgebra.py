"""Point algebra over interval end points.

The static analyzer (:mod:`repro.analysis`) decides *temporal satisfiability*
of a rule body without grounding anything: every interval variable ``t``
contributes two points (``start(t)``, ``end(t)``), each Allen/comparison
condition contributes a binary order constraint between points, and the
transitive closure of the resulting network either stays consistent or
collapses to the empty relation — in which case the body can never be
satisfied by any intervals at all (a *dead* rule).

A point-algebra relation is a non-empty subset of ``{<, =, >}``; the empty
set is the inconsistent relation.  Composition and intersection are the two
operations needed for the (polynomial) path-consistency closure, which is
complete for satisfiability of the convex pointisable fragment used here.

Two kinds of interval-predicate encodings are distinguished:

* **exact** encodings are equivalent to the predicate (``before(a, b)`` iff
  ``end(a) < start(b)`` for the paper's inclusive reading) — usable both for
  unsatisfiability *and* entailment/tautology checks;
* **necessary** encodings are merely implied by the predicate (discrete
  ``meets(a, b)`` means ``end(a) + 1 == start(b)``, of which only
  ``end(a) < start(b)`` is expressible) — sound for unsatisfiability but
  never used to conclude entailment.

The inclusive predicate semantics mirror
:data:`repro.temporal.allen.CONSTRAINT_PREDICATES` over closed discrete
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

# --------------------------------------------------------------------------- #
# Relations
# --------------------------------------------------------------------------- #
#: A point relation: which of ``<``, ``=``, ``>`` may hold between two points.
Relation = FrozenSet[str]

LT: Relation = frozenset({"<"})
EQ: Relation = frozenset({"="})
GT: Relation = frozenset({">"})
LE: Relation = frozenset({"<", "="})
GE: Relation = frozenset({">", "="})
NE: Relation = frozenset({"<", ">"})
FULL: Relation = frozenset({"<", "=", ">"})
EMPTY: Relation = frozenset()

#: Comparison operators of the rule language mapped onto point relations.
OPERATOR_RELATIONS: Dict[str, Relation] = {
    "<": LT,
    "<=": LE,
    ">": GT,
    ">=": GE,
    "=": EQ,
    "==": EQ,
    "!=": NE,
}

_BASE_COMPOSE: Dict[Tuple[str, str], Relation] = {
    ("<", "<"): LT,
    ("<", "="): LT,
    ("<", ">"): FULL,
    ("=", "<"): LT,
    ("=", "="): EQ,
    ("=", ">"): GT,
    (">", "<"): FULL,
    (">", "="): GT,
    (">", ">"): GT,
}

_INVERT: Dict[str, str] = {"<": ">", "=": "=", ">": "<"}


def compose_relations(first: Relation, second: Relation) -> Relation:
    """Relation between ``a`` and ``c`` given ``a first b`` and ``b second c``."""
    result: Set[str] = set()
    for r1 in first:
        for r2 in second:
            result |= _BASE_COMPOSE[(r1, r2)]
            if len(result) == 3:
                return FULL
    return frozenset(result)


def invert_relation(relation: Relation) -> Relation:
    """The converse relation (swap ``<`` and ``>``)."""
    return frozenset(_INVERT[r] for r in relation)


# --------------------------------------------------------------------------- #
# Interval-predicate encodings
# --------------------------------------------------------------------------- #
#: One point constraint of an encoding: (side, point) rel (side, point) where
#: side is "l"/"r" (left/right predicate argument) and point is "s"/"e".
PointConstraint = Tuple[Tuple[str, str], Relation, Tuple[str, str]]


@dataclass(frozen=True)
class PredicateEncoding:
    """Point-algebra reading of one named interval predicate."""

    #: True when the conjunction is *equivalent* to the predicate (usable for
    #: entailment); False when it is merely *implied* by it (unsat-only).
    exact: bool
    constraints: Tuple[PointConstraint, ...]


_L_S = ("l", "s")
_L_E = ("l", "e")
_R_S = ("r", "s")
_R_E = ("r", "e")

#: Encodings of every predicate in
#: :data:`repro.temporal.allen.CONSTRAINT_PREDICATES`.  ``disjoint`` is a
#: disjunction and has no conjunctive point encoding (empty, non-exact):
#: it constrains nothing for unsatisfiability purposes.
PREDICATE_ENCODINGS: Dict[str, PredicateEncoding] = {
    "before": PredicateEncoding(True, ((_L_E, LT, _R_S),)),
    "after": PredicateEncoding(True, ((_L_S, GT, _R_E),)),
    "overlaps": PredicateEncoding(True, ((_L_S, LE, _R_E), (_R_S, LE, _L_E))),
    "overlap": PredicateEncoding(True, ((_L_S, LE, _R_E), (_R_S, LE, _L_E))),
    "disjoint": PredicateEncoding(False, ()),
    # Discrete adjacency (end + 1 == start) is not a pure order constraint;
    # only the strict ordering it implies is kept (non-exact).
    "meets": PredicateEncoding(False, ((_L_E, LT, _R_S),)),
    "metBy": PredicateEncoding(False, ((_L_S, GT, _R_E),)),
    "starts": PredicateEncoding(True, ((_L_S, EQ, _R_S), (_L_E, LT, _R_E))),
    "startedBy": PredicateEncoding(True, ((_L_S, EQ, _R_S), (_L_E, GT, _R_E))),
    "during": PredicateEncoding(True, ((_L_S, GT, _R_S), (_L_E, LT, _R_E))),
    "contains": PredicateEncoding(True, ((_L_S, LT, _R_S), (_L_E, GT, _R_E))),
    "finishes": PredicateEncoding(True, ((_L_E, EQ, _R_E), (_L_S, GT, _R_S))),
    "finishedBy": PredicateEncoding(True, ((_L_E, EQ, _R_E), (_L_S, LT, _R_S))),
    "equals": PredicateEncoding(True, ((_L_S, EQ, _R_S), (_L_E, EQ, _R_E))),
    "within": PredicateEncoding(True, ((_L_S, GE, _R_S), (_L_E, LE, _R_E))),
}


# --------------------------------------------------------------------------- #
# The constraint network
# --------------------------------------------------------------------------- #
class PointNetwork:
    """A binary point-algebra constraint network with path-consistency closure.

    Nodes are interned by arbitrary hashable keys (the analyzer uses
    ``(variable_name, "s"|"e")`` and ``("const", value)``).  Constraints
    intersect; :meth:`close` propagates to a fixpoint and reports
    consistency.  Networks here are tiny (a handful of interval variables
    per rule body), so the cubic closure is effectively free.
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []
        self._relations: Dict[Tuple[int, int], Relation] = {}
        self._closed = False

    def __len__(self) -> int:
        return len(self._keys)

    def node(self, key: Hashable) -> int:
        """Intern ``key`` as a node and return its index."""
        index = self._index.get(key)
        if index is None:
            index = len(self._keys)
            self._index[key] = index
            self._keys.append(key)
        return index

    def _get(self, i: int, j: int) -> Relation:
        if i == j:
            return self._relations.get((i, j), EQ)
        return self._relations.get((i, j), FULL)

    def constrain(self, left: Hashable, right: Hashable, relation: Relation) -> None:
        """Intersect the constraint between two (auto-interned) nodes."""
        i = self.node(left)
        j = self.node(right)
        self._closed = False
        self._relations[(i, j)] = self._get(i, j) & relation
        self._relations[(j, i)] = self._get(j, i) & invert_relation(relation)

    def close(self) -> bool:
        """Path-consistency closure; returns False when inconsistent."""
        n = len(self._keys)
        changed = True
        while changed:
            changed = False
            for k in range(n):
                for i in range(n):
                    r_ik = self._get(i, k)
                    if r_ik is FULL or r_ik == FULL:
                        continue
                    for j in range(n):
                        composed = compose_relations(r_ik, self._get(k, j))
                        current = self._get(i, j)
                        refined = current & composed
                        if refined != current:
                            self._relations[(i, j)] = refined
                            self._relations[(j, i)] = invert_relation(refined)
                            changed = True
                        if not refined:
                            return False
        self._closed = True
        return all(self._get(i, i) == EQ for i in range(n))

    def relation(self, left: Hashable, right: Hashable) -> Relation:
        """The (closed) relation between two nodes; FULL for unknown nodes."""
        i = self._index.get(left)
        j = self._index.get(right)
        if i is None or j is None:
            return FULL
        return self._get(i, j)

    def entails(self, left: Hashable, right: Hashable, relation: Relation) -> bool:
        """True when every consistent assignment satisfies ``left rel right``.

        Only meaningful after a successful :meth:`close` — an unclosed
        network answers from the raw (unpropagated) constraints.
        """
        current = self.relation(left, right)
        return bool(current) and current <= relation

    def copy(self) -> "PointNetwork":
        duplicate = PointNetwork()
        duplicate._index = dict(self._index)
        duplicate._keys = list(self._keys)
        duplicate._relations = dict(self._relations)
        duplicate._closed = self._closed
        return duplicate
