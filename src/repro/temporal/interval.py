"""Closed discrete time intervals.

Every temporal fact in a UTKG is annotated with a validity interval
``[start, end]`` over the discrete time domain (see
:mod:`repro.temporal.timepoint`).  Intervals are closed on both ends, as in
the paper's running example ``(CR, coach, Chelsea, [2000, 2004])``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..errors import InvalidIntervalError
from .timepoint import TimePoint


@dataclass(frozen=True, order=True, slots=True)
class TimeInterval:
    """A closed interval ``[start, end]`` of discrete time points.

    Instances are immutable, hashable and totally ordered (lexicographically
    by ``(start, end)``), so they can be used as dictionary keys and sorted
    deterministically — both properties the grounding engine relies on.

    Examples
    --------
    >>> a = TimeInterval(2000, 2004)
    >>> b = TimeInterval(2001, 2003)
    >>> a.contains(b)
    True
    >>> a.intersect(b)
    TimeInterval(start=2001, end=2003)
    """

    start: TimePoint
    end: TimePoint

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise InvalidIntervalError(f"interval end ({self.end}) precedes start ({self.start})")

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def duration(self) -> int:
        """Number of time points covered (closed interval, so end-start+1)."""
        return self.end - self.start + 1

    def is_instant(self) -> bool:
        """True when the interval covers a single time point."""
        return self.start == self.end

    def __contains__(self, point: object) -> bool:
        if not isinstance(point, int) or isinstance(point, bool):
            return False
        return self.start <= point <= self.end

    def __iter__(self) -> Iterator[TimePoint]:
        return iter(range(self.start, self.end + 1))

    def points(self) -> list[TimePoint]:
        """All time points in the interval, in increasing order."""
        return list(range(self.start, self.end + 1))

    # ------------------------------------------------------------------ #
    # Relations with other intervals
    # ------------------------------------------------------------------ #
    def overlaps(self, other: "TimeInterval") -> bool:
        """True when the two closed intervals share at least one time point."""
        return self.start <= other.end and other.start <= self.end

    def disjoint(self, other: "TimeInterval") -> bool:
        """True when the intervals share no time point."""
        return not self.overlaps(other)

    def contains(self, other: "TimeInterval") -> bool:
        """True when ``other`` lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def strictly_before(self, other: "TimeInterval") -> bool:
        """True when this interval ends before ``other`` starts."""
        return self.end < other.start

    def strictly_after(self, other: "TimeInterval") -> bool:
        """True when this interval starts after ``other`` ends."""
        return self.start > other.end

    def meets(self, other: "TimeInterval") -> bool:
        """True when this interval ends exactly where ``other`` starts."""
        return self.end == other.start

    def adjacent(self, other: "TimeInterval") -> bool:
        """True when the intervals are disjoint but with no gap between them."""
        return self.end + 1 == other.start or other.end + 1 == self.start

    # ------------------------------------------------------------------ #
    # Constructive operations
    # ------------------------------------------------------------------ #
    def intersect(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Intersection ``t ∩ t'`` (used by rule f2 in the paper) or None."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return None
        return TimeInterval(start, end)

    def union(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Union when the intervals overlap or are adjacent, else None."""
        if not (self.overlaps(other) or self.adjacent(other)):
            return None
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def span(self, other: "TimeInterval") -> "TimeInterval":
        """Smallest interval covering both intervals (ignores any gap)."""
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def minus(self, other: "TimeInterval") -> list["TimeInterval"]:
        """Set difference ``self \\ other`` as zero, one or two intervals."""
        if not self.overlaps(other):
            return [self]
        pieces: list[TimeInterval] = []
        if self.start < other.start:
            pieces.append(TimeInterval(self.start, other.start - 1))
        if other.end < self.end:
            pieces.append(TimeInterval(other.end + 1, self.end))
        return pieces

    def shift(self, delta: int) -> "TimeInterval":
        """Translate the interval by ``delta`` time points."""
        return TimeInterval(self.start + delta, self.end + delta)

    def clamp(self, lower: TimePoint, upper: TimePoint) -> Optional["TimeInterval"]:
        """Clip the interval to ``[lower, upper]``; None when it falls outside."""
        start = max(self.start, lower)
        end = min(self.end, upper)
        if end < start:
            return None
        return TimeInterval(start, end)

    # ------------------------------------------------------------------ #
    # Construction helpers and formatting
    # ------------------------------------------------------------------ #
    @classmethod
    def instant(cls, point: TimePoint) -> "TimeInterval":
        """A single-point interval ``[point, point]``."""
        return cls(point, point)

    @classmethod
    def parse(cls, text: str) -> "TimeInterval":
        """Parse the paper's surface syntax ``[2000,2004]`` (also ``2000-2004``).

        A bare integer is parsed as an instant.
        """
        raw = text.strip()
        if raw.startswith("[") and raw.endswith("]"):
            raw = raw[1:-1]
        for sep in (",", "..", "--"):
            if sep in raw:
                left, _, right = raw.partition(sep)
                return cls(int(left.strip()), int(right.strip()))
        if "-" in raw.lstrip("-")[0:]:  # allow negative start points
            left, _, right = raw.rpartition("-")
            if left and not left.endswith("-"):
                return cls(int(left.strip()), int(right.strip()))
        return cls.instant(int(raw))

    def __str__(self) -> str:
        return f"[{self.start},{self.end}]"


def span_of(intervals: Iterable[TimeInterval]) -> Optional[TimeInterval]:
    """Smallest interval covering every interval in ``intervals`` (None if empty)."""
    items = list(intervals)
    if not items:
        return None
    return TimeInterval(min(i.start for i in items), max(i.end for i in items))


def total_coverage(intervals: Iterable[TimeInterval]) -> int:
    """Number of distinct time points covered by the union of ``intervals``."""
    items = sorted(intervals)
    covered = 0
    current: Optional[TimeInterval] = None
    for interval in items:
        if current is None:
            current = interval
            continue
        merged = current.union(interval)
        if merged is None:
            covered += current.duration
            current = interval
        else:
            current = merged
    if current is not None:
        covered += current.duration
    return covered
