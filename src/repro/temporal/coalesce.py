"""Temporal coalescing.

Temporal databases coalesce value-equivalent facts whose validity intervals
overlap or are adjacent into a single fact with a merged interval.  TeCoRe
uses coalescing when presenting the consistent subset and when dataset
generators merge duplicate extractions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from .interval import TimeInterval

T = TypeVar("T")


def coalesce_intervals(intervals: Iterable[TimeInterval]) -> list[TimeInterval]:
    """Merge overlapping or adjacent intervals into a minimal disjoint cover.

    The result is sorted by start point and contains pairwise disjoint,
    non-adjacent intervals covering exactly the same time points as the input.

    >>> coalesce_intervals([TimeInterval(1, 3), TimeInterval(4, 6), TimeInterval(9, 9)])
    [TimeInterval(start=1, end=6), TimeInterval(start=9, end=9)]
    """
    ordered = sorted(intervals)
    merged: list[TimeInterval] = []
    for interval in ordered:
        if not merged:
            merged.append(interval)
            continue
        last = merged[-1]
        joined = last.union(interval)
        if joined is None:
            merged.append(interval)
        else:
            merged[-1] = joined
    return merged


def coalesce_weighted(
    items: Sequence[tuple[TimeInterval, float]],
    combine: Callable[[float, float], float] = max,
) -> list[tuple[TimeInterval, float]]:
    """Coalesce (interval, confidence) pairs.

    When intervals merge, their confidences are combined with ``combine``
    (default: ``max``, matching the "keep the best-supported extraction"
    behaviour used when loading noisy OIE output).
    """
    ordered = sorted(items, key=lambda pair: pair[0])
    merged: list[tuple[TimeInterval, float]] = []
    for interval, weight in ordered:
        if not merged:
            merged.append((interval, weight))
            continue
        last_interval, last_weight = merged[-1]
        joined = last_interval.union(interval)
        if joined is None:
            merged.append((interval, weight))
        else:
            merged[-1] = (joined, combine(last_weight, weight))
    return merged


def group_and_coalesce(
    items: Iterable[tuple[T, TimeInterval]],
) -> dict[T, list[TimeInterval]]:
    """Group items by key and coalesce each group's intervals.

    ``items`` yields ``(key, interval)`` pairs; the key is typically the
    atemporal part of a fact (subject, predicate, object).
    """
    groups: dict[T, list[TimeInterval]] = {}
    for key, interval in items:
        groups.setdefault(key, []).append(interval)
    return {key: coalesce_intervals(intervals) for key, intervals in groups.items()}
