"""Allen's interval algebra.

TeCoRe constraints are "based on Allen's relations" (paper, Section 2): the
constraint editor lets users relate two predicates via one of Allen's thirteen
interval relations, and the constraint compiler turns those relations into
arithmetic conditions over interval end points.

This module implements the thirteen basic relations, the common derived
relations used in the paper (``overlaps`` in its inclusive sense, ``disjoint``)
and the composition table needed for constraint propagation.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, FrozenSet, Iterable

from .interval import TimeInterval


class AllenRelation(str, Enum):
    """The thirteen basic Allen interval relations.

    The string values match the surface syntax accepted by the constraint
    parser (:mod:`repro.logic.parser`).
    """

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "metBy"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlappedBy"
    STARTS = "starts"
    STARTED_BY = "startedBy"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finishedBy"
    EQUALS = "equals"

    @property
    def inverse(self) -> "AllenRelation":
        """The converse relation (``before`` ↔ ``after`` and so on)."""
        return _INVERSES[self]

    def holds(self, a: TimeInterval, b: TimeInterval) -> bool:
        """Evaluate the *strict* Allen relation between intervals ``a`` and ``b``."""
        return _CHECKS[self](a, b)


_INVERSES: dict[AllenRelation, AllenRelation] = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUALS: AllenRelation.EQUALS,
}

# The thirteen relations are defined so that they *partition* every pair of
# closed discrete intervals (including instants).  Classic Allen algebra is
# stated for open-ended real intervals, where "meets" means sharing only a
# boundary of measure zero; over a discrete domain the natural analogue is
# adjacency (``a.end + 1 == b.start``), and "before" then requires a gap.
# Closed intervals that share exactly their boundary point (``[1,2]``/``[2,3]``)
# are classified as overlapping, which is also what the paper's constraint
# predicates assume (a coach fact ending in 2004 conflicts with one starting
# in 2004).
_CHECKS: dict[AllenRelation, Callable[[TimeInterval, TimeInterval], bool]] = {
    AllenRelation.BEFORE: lambda a, b: a.end + 1 < b.start,
    AllenRelation.AFTER: lambda a, b: a.start > b.end + 1,
    AllenRelation.MEETS: lambda a, b: a.end + 1 == b.start,
    AllenRelation.MET_BY: lambda a, b: a.start == b.end + 1,
    AllenRelation.OVERLAPS: lambda a, b: a.start < b.start <= a.end < b.end,
    AllenRelation.OVERLAPPED_BY: lambda a, b: b.start < a.start <= b.end < a.end,
    AllenRelation.STARTS: lambda a, b: a.start == b.start and a.end < b.end,
    AllenRelation.STARTED_BY: lambda a, b: a.start == b.start and a.end > b.end,
    AllenRelation.DURING: lambda a, b: a.start > b.start and a.end < b.end,
    AllenRelation.CONTAINS: lambda a, b: a.start < b.start and a.end > b.end,
    AllenRelation.FINISHES: lambda a, b: a.end == b.end and a.start > b.start,
    AllenRelation.FINISHED_BY: lambda a, b: a.end == b.end and a.start < b.start,
    AllenRelation.EQUALS: lambda a, b: a.start == b.start and a.end == b.end,
}

#: All thirteen basic relations, in a canonical order.
ALL_RELATIONS: tuple[AllenRelation, ...] = tuple(AllenRelation)

#: Relations whose truth implies the two intervals share at least one point.
_SHARING_RELATIONS: frozenset[AllenRelation] = frozenset(
    {
        AllenRelation.OVERLAPS,
        AllenRelation.OVERLAPPED_BY,
        AllenRelation.STARTS,
        AllenRelation.STARTED_BY,
        AllenRelation.DURING,
        AllenRelation.CONTAINS,
        AllenRelation.FINISHES,
        AllenRelation.FINISHED_BY,
        AllenRelation.EQUALS,
    }
)


def relation_between(a: TimeInterval, b: TimeInterval) -> AllenRelation:
    """Return the unique basic Allen relation holding between ``a`` and ``b``."""
    for relation in ALL_RELATIONS:
        if relation.holds(a, b):
            return relation
    raise AssertionError(
        f"no Allen relation holds between {a} and {b}; the thirteen relations "
        "should partition all interval pairs"
    )


# --------------------------------------------------------------------------- #
# The paper's constraint predicates.  TeCoRe's example constraints use the
# predicates `before`, `overlaps` and `disjoint` in their *inclusive* reading:
# `overlaps(t, t')` means the intervals share at least one time point, and
# `disjoint(t, t')` means they do not (constraint c2: a coach cannot manage two
# clubs at the same time).  These differ from the strict basic relations, so
# they get their own helpers.
# --------------------------------------------------------------------------- #
def before(a: TimeInterval, b: TimeInterval) -> bool:
    """Constraint predicate ``before``: ``a`` ends strictly before ``b`` starts."""
    return a.end < b.start


def after(a: TimeInterval, b: TimeInterval) -> bool:
    """Constraint predicate ``after``: ``a`` starts strictly after ``b`` ends."""
    return a.start > b.end


def overlaps(a: TimeInterval, b: TimeInterval) -> bool:
    """Inclusive ``overlaps``: the two intervals share at least one time point."""
    return a.overlaps(b)


def disjoint(a: TimeInterval, b: TimeInterval) -> bool:
    """Inclusive ``disjoint``: the two intervals share no time point."""
    return a.disjoint(b)


def during_or_equal(a: TimeInterval, b: TimeInterval) -> bool:
    """``a`` fully contained in ``b`` (allowing equality of end points)."""
    return b.contains(a)


#: Named constraint predicates available in rule/constraint conditions.  The
#: inclusive readings shadow the strict basic relations of the same name on
#: purpose — this is the semantics used by the paper's constraints c1–c3.
CONSTRAINT_PREDICATES: dict[str, Callable[[TimeInterval, TimeInterval], bool]] = {
    "before": before,
    "after": after,
    "overlaps": overlaps,
    "overlap": overlaps,
    "disjoint": disjoint,
    "meets": AllenRelation.MEETS.holds,
    "metBy": AllenRelation.MET_BY.holds,
    "starts": AllenRelation.STARTS.holds,
    "startedBy": AllenRelation.STARTED_BY.holds,
    "during": AllenRelation.DURING.holds,
    "contains": AllenRelation.CONTAINS.holds,
    "finishes": AllenRelation.FINISHES.holds,
    "finishedBy": AllenRelation.FINISHED_BY.holds,
    "equals": AllenRelation.EQUALS.holds,
    "within": during_or_equal,
}


def evaluate_predicate(name: str, a: TimeInterval, b: TimeInterval) -> bool:
    """Evaluate a named temporal predicate; unknown names raise ``KeyError``."""
    return CONSTRAINT_PREDICATES[name](a, b)


def shares_point(relation: AllenRelation) -> bool:
    """True if the basic relation implies the intervals share a time point."""
    return relation in _SHARING_RELATIONS


# --------------------------------------------------------------------------- #
# Composition table.  compose(r1, r2) answers: given a r1 b and b r2 c, which
# basic relations may hold between a and c?  Needed for constraint propagation
# (e.g. deriving implied orderings before grounding) and exposed for users who
# build their own temporal reasoning on top of the substrate.
#
# Rather than hard-coding the classic 13x13 table we derive it once from the
# point-algebra encoding of each relation, which is less error-prone and is
# validated by the property-based tests.
# --------------------------------------------------------------------------- #
_SAMPLE_INTERVALS: list[TimeInterval] = [
    TimeInterval(s, e) for s in range(0, 9) for e in range(s, 9)
]


def _compose_all() -> dict[tuple[AllenRelation, AllenRelation], FrozenSet[AllenRelation]]:
    by_relation: dict[AllenRelation, list[tuple[TimeInterval, TimeInterval]]] = {
        r: [] for r in ALL_RELATIONS
    }
    for a in _SAMPLE_INTERVALS:
        for b in _SAMPLE_INTERVALS:
            by_relation[relation_between(a, b)].append((a, b))

    table: dict[tuple[AllenRelation, AllenRelation], set[AllenRelation]] = {
        (r1, r2): set() for r1 in ALL_RELATIONS for r2 in ALL_RELATIONS
    }
    # Index pairs by their first interval for the join.
    second_by_first: dict[AllenRelation, dict[TimeInterval, list[TimeInterval]]] = {}
    for r2 in ALL_RELATIONS:
        index: dict[TimeInterval, list[TimeInterval]] = {}
        for b, c in by_relation[r2]:
            index.setdefault(b, []).append(c)
        second_by_first[r2] = index
    for r1 in ALL_RELATIONS:
        for a, b in by_relation[r1]:
            for r2 in ALL_RELATIONS:
                for c in second_by_first[r2].get(b, ()):
                    table[(r1, r2)].add(relation_between(a, c))
    return {key: frozenset(value) for key, value in table.items()}


_COMPOSITION_TABLE: dict[
    tuple[AllenRelation, AllenRelation], FrozenSet[AllenRelation]
] | None = None


def compose(r1: AllenRelation, r2: AllenRelation) -> FrozenSet[AllenRelation]:
    """Possible relations between ``a`` and ``c`` given ``a r1 b`` and ``b r2 c``.

    The table is computed lazily on first use (over a bounded sample of
    intervals, which is exhaustive for composition purposes) and cached.
    """
    global _COMPOSITION_TABLE
    if _COMPOSITION_TABLE is None:
        _COMPOSITION_TABLE = _compose_all()
    return _COMPOSITION_TABLE[(r1, r2)]


def possible_relations(a: TimeInterval | None, b: TimeInterval | None) -> FrozenSet[AllenRelation]:
    """Relations possible between two possibly-unknown intervals.

    When both intervals are known the answer is the singleton of their actual
    relation; when either is unknown, all thirteen relations are possible.
    """
    if a is None or b is None:
        return frozenset(ALL_RELATIONS)
    return frozenset({relation_between(a, b)})


def consistent_scenario(relations: Iterable[AllenRelation]) -> bool:
    """Cheap necessary condition for a set of relations on one pair to be consistent.

    A single interval pair satisfies exactly one basic relation, so a
    constraint set over the same ordered pair is satisfiable iff it is
    non-empty (interpreted as a disjunction).
    """
    return bool(set(relations))
