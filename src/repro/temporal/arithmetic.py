"""Arithmetic predicates over time points and intervals.

Temporal inference rules in TeCoRe may embed "arithmetic predicates (e.g.
age > 40)" and interval expressions such as ``t'' = t ∩ t'`` (rule f2) or
``t' - t < 20`` (rule f3).  This module provides the evaluable vocabulary the
rule conditions compile to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Union

from ..errors import LogicError
from .interval import TimeInterval
from .timepoint import TimePoint

#: Values an arithmetic expression may take during evaluation.
NumericValue = Union[int, float]

#: Comparison operators accepted in rule conditions, in surface syntax.
COMPARATORS: dict[str, Callable[[NumericValue, NumericValue], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def compare(op: str, left: NumericValue, right: NumericValue) -> bool:
    """Evaluate a comparison operator given in surface syntax."""
    try:
        return COMPARATORS[op](left, right)
    except KeyError as exc:  # pragma: no cover - defensive
        raise LogicError(f"unknown comparison operator {op!r}") from exc


@dataclass(frozen=True, slots=True)
class IntervalExpression:
    """A symbolic expression producing an interval from bound intervals.

    Supports the expressions used by the paper's rules:

    * ``var`` — an already bound interval variable;
    * ``intersection`` — ``t ∩ t'`` (rule f2);
    * ``union`` — span of two intervals;
    * ``shift`` — translate an interval by a constant.
    """

    kind: str
    left: str | None = None
    right: str | None = None
    delta: int = 0

    def evaluate(self, bindings: Mapping[str, TimeInterval]) -> TimeInterval | None:
        """Evaluate against interval variable bindings; None when undefined."""
        if self.kind == "var":
            return bindings.get(self.left or "")
        if self.kind == "intersection":
            a, b = bindings.get(self.left or ""), bindings.get(self.right or "")
            if a is None or b is None:
                return None
            return a.intersect(b)
        if self.kind == "union":
            a, b = bindings.get(self.left or ""), bindings.get(self.right or "")
            if a is None or b is None:
                return None
            return a.span(b)
        if self.kind == "shift":
            a = bindings.get(self.left or "")
            if a is None:
                return None
            return a.shift(self.delta)
        raise LogicError(f"unknown interval expression kind {self.kind!r}")

    @classmethod
    def variable(cls, name: str) -> "IntervalExpression":
        return cls(kind="var", left=name)

    @classmethod
    def intersection(cls, left: str, right: str) -> "IntervalExpression":
        return cls(kind="intersection", left=left, right=right)

    @classmethod
    def union(cls, left: str, right: str) -> "IntervalExpression":
        return cls(kind="union", left=left, right=right)

    @classmethod
    def shift(cls, name: str, delta: int) -> "IntervalExpression":
        return cls(kind="shift", left=name, delta=delta)

    def __str__(self) -> str:
        if self.kind == "var":
            return str(self.left)
        if self.kind == "intersection":
            return f"{self.left} ∩ {self.right}"
        if self.kind == "union":
            return f"{self.left} ∪ {self.right}"
        return f"{self.left} + {self.delta}"


def interval_start(interval: TimeInterval) -> TimePoint:
    """Start point accessor, exposed as the arithmetic function ``start(t)``."""
    return interval.start


def interval_end(interval: TimeInterval) -> TimePoint:
    """End point accessor, exposed as the arithmetic function ``end(t)``."""
    return interval.end


def interval_duration(interval: TimeInterval) -> int:
    """Duration accessor, exposed as the arithmetic function ``duration(t)``."""
    return interval.duration


def gap_between(a: TimeInterval, b: TimeInterval) -> int:
    """Number of time points strictly between two disjoint intervals (0 if overlapping)."""
    if a.overlaps(b):
        return 0
    if a.end < b.start:
        return b.start - a.end - 1
    return a.start - b.end - 1


def difference(a: TimeInterval, b: TimeInterval) -> int:
    """The paper's ``t' - t`` reading: distance between interval start points.

    Rule f3 uses ``t' - t < 20`` where ``t`` is a playsFor interval and ``t'``
    a birthDate interval to state "the player is less than 20 years old at the
    start of the engagement"; the natural discrete reading is the difference
    of the two start points.
    """
    return a.start - b.start


#: Arithmetic functions over a single interval, usable in rule conditions.
INTERVAL_FUNCTIONS: dict[str, Callable[[TimeInterval], NumericValue]] = {
    "start": interval_start,
    "end": interval_end,
    "duration": interval_duration,
}

#: Arithmetic functions over two intervals.
INTERVAL_BINARY_FUNCTIONS: dict[str, Callable[[TimeInterval, TimeInterval], NumericValue]] = {
    "gap": gap_between,
    "diff": difference,
}
