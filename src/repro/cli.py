"""Command-line interface.

The demo paper exposes TeCoRe through a web UI; this CLI exposes the same
workflow for scripted use::

    tecore datasets                       # list selectable datasets
    tecore solvers                        # list registered solvers
    tecore stats --dataset footballdb     # dataset inventory (Section 4 table)
    tecore detect --dataset footballdb --pack sports
    tecore resolve --dataset ranieri --pack running-example --solver nrockit
    tecore resolve --graph mykg.csv --program rules.dl --solver npsl --threshold 0.5
    tecore resolve-batch kg1.csv kg2.csv --pack sports --solver npsl
    tecore resolve-batch kg1.csv kg1b.csv --pack sports --incremental
    tecore watch edits.stream --dataset ranieri --pack running-example
    tecore serve --pack sports --solver nrockit --port 8799
    tecore serve --pack sports --wal-dir /var/lib/tecore/wal   # durable sessions
    tecore verify --runs 25 --seed 2017   # serializability smoke
    tecore chaos --seed 2017 --save-history chaos.json   # kill/restart/certify

``--graph`` accepts any file format supported by :mod:`repro.kg.io`;
``--program`` accepts the Datalog-style rule/constraint syntax; ``watch``
consumes a change-stream file (see :mod:`repro.kg.io.changestream`) and
re-resolves incrementally after every step; ``serve`` runs the concurrent
resolution HTTP service (see :mod:`repro.serve` and ``docs/serving.md``);
``chaos`` SIGKILLs a served workload mid-flight and certifies the combined
pre/post-restart history (see :mod:`repro.verify.chaos`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .core import TeCoRe, available_solvers, render_graph_summary, render_report
from .datasets import available_datasets, load_dataset
from .errors import TecoreError
from .kg import TemporalKnowledgeGraph
from .kg.io import load_change_stream, load_graph
from .logic import available_packs, load_pack, parse_program

#: Grounding engines selectable from the command line.
ENGINE_CHOICES = ("indexed", "naive", "incremental", "vectorized")

#: Solver kernels selectable from the command line: ``object`` walks the
#: per-clause object graph, ``array`` substitutes the array-native variant
#: of the chosen solver when one exists (see ``repro.core.ARRAY_VARIANTS``).
KERNEL_CHOICES = ("object", "array")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tecore",
        description="TeCoRe: temporal conflict resolution in uncertain temporal knowledge graphs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list selectable datasets")
    subparsers.add_parser("solvers", help="list registered solvers")
    subparsers.add_parser("packs", help="list predefined rule/constraint packs")

    def add_input_arguments(sub: argparse.ArgumentParser, with_program: bool = True) -> None:
        sub.add_argument(
            "--dataset", help=f"registered dataset ({', '.join(available_datasets())})"
        )
        sub.add_argument("--graph", help="path to a graph file (.tq/.txt/.nq/.csv/.tsv/.json)")
        sub.add_argument("--scale", type=float, default=0.01, help="dataset scale factor")
        sub.add_argument("--noise", type=float, default=0.0, help="dataset noise ratio")
        sub.add_argument("--seed", type=int, default=2017, help="dataset RNG seed")
        if with_program:
            sub.add_argument("--pack", help=f"predefined pack ({', '.join(available_packs())})")
            sub.add_argument("--program", help="path to a Datalog-style rule/constraint file")

    def add_solver_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--solver", default="nrockit", choices=available_solvers(), help="MAP back-end"
        )
        sub.add_argument(
            "--kernel",
            default="object",
            choices=KERNEL_CHOICES,
            help="solver kernel: per-clause objects or array-native (columnar) variants",
        )

    def add_decomposition_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--decompose",
            action=argparse.BooleanOptionalAction,
            default=False,
            help="solve connected components of the ground program independently",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the decomposed solve (1 = sequential)",
        )

    stats = subparsers.add_parser("stats", help="show dataset statistics")
    add_input_arguments(stats, with_program=False)

    detect = subparsers.add_parser("detect", help="detect temporal conflicts")
    add_input_arguments(detect)
    detect.add_argument(
        "--engine", default="indexed", choices=ENGINE_CHOICES, help="grounding engine"
    )
    detect.add_argument("--json", action="store_true", help="emit JSON instead of text")

    resolve = subparsers.add_parser("resolve", help="compute the conflict-free MAP state")
    add_input_arguments(resolve)
    add_solver_arguments(resolve)
    resolve.add_argument("--threshold", type=float, default=None, help="derived-fact threshold")
    resolve.add_argument(
        "--engine", default="indexed", choices=ENGINE_CHOICES, help="grounding engine"
    )
    add_decomposition_arguments(resolve)
    resolve.add_argument("--json", action="store_true", help="emit JSON instead of text")
    resolve.add_argument("--limit", type=int, default=20, help="statements shown per section")

    batch = subparsers.add_parser(
        "resolve-batch",
        help="resolve many graph files with one shared program and solver",
    )
    batch.add_argument(
        "graphs", nargs="+", help="graph files (.tq/.txt/.nq/.csv/.tsv/.json) to resolve"
    )
    batch.add_argument("--pack", help=f"predefined pack ({', '.join(available_packs())})")
    batch.add_argument("--program", help="path to a Datalog-style rule/constraint file")
    add_solver_arguments(batch)
    batch.add_argument("--threshold", type=float, default=None, help="derived-fact threshold")
    batch.add_argument(
        "--engine", default="indexed", choices=ENGINE_CHOICES, help="grounding engine"
    )
    add_decomposition_arguments(batch)
    batch.add_argument(
        "--incremental",
        action="store_true",
        help="serve the batch through one incremental session, diffing consecutive graphs",
    )
    batch.add_argument("--json", action="store_true", help="emit JSON instead of text")

    watch = subparsers.add_parser(
        "watch",
        help="replay a change stream against a UTKG, re-resolving incrementally",
    )
    watch.add_argument(
        "stream",
        help="change-stream file (+/- prefixed temporal-quad lines; 'resolve' closes a step)",
    )
    add_input_arguments(watch)
    add_solver_arguments(watch)
    watch.add_argument("--threshold", type=float, default=None, help="derived-fact threshold")
    watch.add_argument(
        "--warm-start",
        action="store_true",
        help="seed dirty-component solves from the previous solution (anytime back-ends)",
    )
    watch.add_argument("--json", action="store_true", help="emit one JSON object per step (JSONL)")

    serve = subparsers.add_parser(
        "serve",
        help="run the concurrent resolution HTTP service (see docs/serving.md)",
    )
    serve.add_argument("--pack", help=f"predefined pack ({', '.join(available_packs())})")
    serve.add_argument("--program", help="path to a Datalog-style rule/constraint file")
    add_solver_arguments(serve)
    serve.add_argument("--threshold", type=float, default=None, help="derived-fact threshold")
    serve.add_argument(
        "--engine", default="indexed", choices=ENGINE_CHOICES, help="grounding engine"
    )
    add_decomposition_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8799, help="TCP port (0 picks a free port)")
    serve.add_argument(
        "--batch-max",
        type=int,
        default=8,
        metavar="N",
        help="micro-batch flush size for POST /resolve",
    )
    serve.add_argument(
        "--batch-delay",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="micro-batch flush deadline (max extra latency a request waits for companions)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="waiting-request bound; beyond it POST /resolve returns 503",
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable coalescing of content-identical in-flight graphs",
    )
    serve.add_argument(
        "--response-cache",
        type=int,
        default=128,
        metavar="N",
        help="LRU bound on cached /resolve responses by graph content (0 disables)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        metavar="N",
        help="LRU bound on concurrently open sessions",
    )
    serve.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for a fixed duration then exit (smoke tests / CI)",
    )
    serve.add_argument(
        "--wal-dir",
        metavar="DIR",
        help="write-ahead session log directory; enables crash recovery "
        "by replay on restart (see docs/serving.md)",
    )
    serve.add_argument(
        "--fsync-policy",
        default="batch",
        choices=("always", "batch", "never"),
        help="when WAL appends are fsynced (default: batch)",
    )
    serve.add_argument(
        "--fsync-batch",
        type=int,
        default=8,
        metavar="N",
        help="records per fsync under --fsync-policy batch",
    )
    serve.add_argument(
        "--fsync-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="max seconds between fsyncs under --fsync-policy batch",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=256,
        metavar="N",
        help="fold the WAL into session snapshots every N records",
    )
    serve.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; expiry answers 504 with Retry-After",
    )
    serve.add_argument(
        "--shed-resolve-at",
        type=int,
        default=None,
        metavar="N",
        help="shed POST /resolve (503) once the batch queue holds N requests, "
        "keeping headroom for session traffic (response-cache hits still served)",
    )
    serve.add_argument(
        "--faults",
        metavar="SPEC",
        help="deterministic fault schedule, e.g. 'crash@wal.append:3,"
        "solver_slow@batcher.solve:1x5' (testing/chaos only)",
    )
    serve.add_argument(
        "--lint",
        default="strict",
        choices=("strict", "off"),
        help="boot-time static analysis: refuse to serve a program with "
        "error-severity findings (default strict)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="resolver worker processes for sharded serving: sessions get "
        "consistent-hash worker affinity, /resolve fans out round-robin, "
        "a killed worker is respawned from a shard-scoped WAL replay "
        "(0 = in-process, the default; see docs/serving.md)",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="SIGKILL a live `tecore serve --wal-dir` mid-workload, restart "
        "it, and certify the combined history (see docs/verification.md)",
    )
    chaos.add_argument(
        "--pack",
        default="running-example",
        help=f"predefined pack ({', '.join(available_packs())})",
    )
    add_solver_arguments(chaos)
    chaos.add_argument("--seed", type=int, default=2017, help="workload + fault seed")
    chaos.add_argument("--clients", type=int, default=3, help="concurrent trace clients")
    chaos.add_argument("--ops-per-client", type=int, default=8, help="operations per client")
    chaos.add_argument("--sessions", type=int, default=2, help="logical sessions per trace")
    chaos.add_argument(
        "--kill-after",
        type=int,
        default=8,
        metavar="N",
        help="SIGKILL the server once N operations have completed",
    )
    chaos.add_argument(
        "--faults",
        metavar="SPEC",
        help="explicit fault schedule for the pre-crash server "
        "(default: derive one from --seed)",
    )
    chaos.add_argument(
        "--fault-count",
        type=int,
        default=2,
        metavar="N",
        help="seeded faults to derive when --faults is not given",
    )
    chaos.add_argument(
        "--wal-dir",
        metavar="DIR",
        help="WAL directory to use (default: a fresh temporary directory)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="serve the workload with N resolver worker processes "
        "(0 = in-process)",
    )
    chaos.add_argument(
        "--kill",
        default="server",
        choices=("server", "worker"),
        help="what the SIGKILL hits: the whole server (then restarted) or "
        "one resolver worker (front-end stays up and respawns it; needs "
        "--workers >= 1)",
    )
    chaos.add_argument(
        "--save-history",
        metavar="HISTORY.json",
        help="write the combined history (re-checkable via `tecore verify`)",
    )
    chaos.add_argument(
        "--no-check",
        action="store_true",
        help="skip the in-process serializability check (record only)",
    )
    chaos.add_argument("--json", action="store_true", help="emit a JSON report")

    lint = subparsers.add_parser(
        "lint",
        help="statically analyze rule programs before grounding "
        "(see docs/analysis.md)",
    )
    lint.add_argument(
        "programs",
        nargs="*",
        metavar="PROGRAM.dl",
        help="Datalog-style rule/constraint files to analyze",
    )
    lint.add_argument(
        "--pack",
        action="append",
        default=[],
        metavar="NAME",
        help=f"predefined pack to analyze ({', '.join(available_packs())}); repeatable",
    )
    lint.add_argument(
        "--all-packs",
        action="store_true",
        help="analyze every predefined pack (the built-in rule library)",
    )
    lint.add_argument("--dataset", help="load this dataset for graph-aware checks")
    lint.add_argument("--graph", help="load this graph file for graph-aware checks")
    lint.add_argument("--scale", type=float, default=0.01, help="dataset scale factor")
    lint.add_argument("--noise", type=float, default=0.0, help="dataset noise ratio")
    lint.add_argument("--seed", type=int, default=2017, help="dataset RNG seed")
    lint.add_argument(
        "--strict",
        action="store_true",
        help="warnings also gate the exit code (errors always do)",
    )
    lint.add_argument(
        "--expect-findings",
        metavar="CODES",
        help="comma-separated diagnostic codes; succeed only if ALL are "
        "reported (fixture checks, like verify's --expect-violation)",
    )
    lint.add_argument("--json", action="store_true", help="emit JSON instead of text")

    verify = subparsers.add_parser(
        "verify",
        help="check the serving tier for serializability violations "
        "(see docs/verification.md)",
    )
    verify.add_argument(
        "histories",
        nargs="*",
        metavar="HISTORY.json",
        help="saved history files to re-check (default: record fresh ones)",
    )
    verify.add_argument(
        "--pack",
        default="running-example",
        help=f"predefined pack ({', '.join(available_packs())})",
    )
    verify.add_argument("--program", help="path to a Datalog-style rule/constraint file")
    add_solver_arguments(verify)
    verify.add_argument("--threshold", type=float, default=None, help="derived-fact threshold")
    verify.add_argument(
        "--runs", type=int, default=25, metavar="N",
        help="seeded workloads to record and check (ignored with history files)",
    )
    verify.add_argument(
        "--seed", type=int, default=2017, help="base workload seed (run i uses seed+i)"
    )
    verify.add_argument("--clients", type=int, default=4, help="concurrent trace clients")
    verify.add_argument("--ops-per-client", type=int, default=10, help="operations per client")
    verify.add_argument("--sessions", type=int, default=3, help="logical sessions per trace")
    verify.add_argument("--zipf-alpha", type=float, default=1.1, help="hot-key skew (0 = uniform)")
    verify.add_argument(
        "--noise",
        default="mixed",
        choices=("conflict_burst", "churn", "flip", "duplicate", "mixed"),
        help="adversarial edit-noise model",
    )
    verify.add_argument(
        "--malformed-ratio",
        type=float,
        default=0.05,
        help="fraction of requests issued with malformed bodies",
    )
    verify.add_argument(
        "--expect-violation",
        action="store_true",
        help="succeed only if violations ARE found (regression-fixture checks)",
    )
    verify.add_argument(
        "--save-failures",
        metavar="DIR",
        help="write failing histories and their violation reports to DIR",
    )
    verify.add_argument("--json", action="store_true", help="emit a JSON summary")
    return parser


def _load_graph_from_args(args: argparse.Namespace) -> TemporalKnowledgeGraph:
    if args.graph:
        return load_graph(Path(args.graph))
    if args.dataset:
        dataset = load_dataset(
            args.dataset, scale=args.scale, noise_ratio=args.noise, seed=args.seed
        )
        return dataset.graph
    raise TecoreError("either --dataset or --graph must be given")


def _load_program_from_args(args: argparse.Namespace) -> tuple[list, list]:
    rules: list = []
    constraints: list = []
    if getattr(args, "pack", None):
        pack = load_pack(args.pack)
        rules.extend(pack.rules)
        constraints.extend(pack.constraints)
    if getattr(args, "program", None):
        parsed = parse_program(Path(args.program).read_text(encoding="utf-8"))
        rules.extend(parsed.rules)
        constraints.extend(parsed.constraints)
    if not rules and not constraints:
        raise TecoreError("no rules or constraints given; use --pack and/or --program")
    return rules, constraints


def _command_datasets() -> int:
    from .datasets import describe_datasets

    for entry in describe_datasets():
        print(f"{entry.name:20s} {entry.description}")
    return 0


def _command_solvers() -> int:
    from .core import describe_solvers

    for entry in describe_solvers():
        print(f"{entry.name:15s} [{entry.family}] {entry.description}")
    return 0


def _command_packs() -> int:
    for name in available_packs():
        pack = load_pack(name)
        print(f"{name:20s} {len(pack.rules)} rules, {len(pack.constraints)} constraints — {pack.description}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph = _load_graph_from_args(args)
    print(render_graph_summary(graph))
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    graph = _load_graph_from_args(args)
    _, constraints = _load_program_from_args(args)
    system = TeCoRe(constraints=constraints, engine=args.engine)
    violations = system.detect_conflicts(graph)
    conflicting = {fact.statement_key for violation in violations for fact in violation.facts}
    if args.json:
        print(
            json.dumps(
                {
                    "graph": graph.name,
                    "facts": len(graph),
                    "violations": len(violations),
                    "conflicting_facts": len(conflicting),
                },
                indent=2,
            )
        )
    else:
        print(f"UTKG {graph.name!r}: {len(graph)} facts")
        print(f"constraint violations : {len(violations)}")
        print(f"conflicting facts     : {len(conflicting)}")
    return 0


def _command_resolve(args: argparse.Namespace) -> int:
    graph = _load_graph_from_args(args)
    rules, constraints = _load_program_from_args(args)
    system = TeCoRe(
        rules=rules,
        constraints=constraints,
        solver=args.solver,
        kernel=args.kernel,
        threshold=args.threshold,
        engine=args.engine,
        decompose=args.decompose,
        jobs=args.jobs,
    )
    result = system.resolve(graph)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(render_report(result, limit=args.limit))
    return 0


def _command_resolve_batch(args: argparse.Namespace) -> int:
    rules, constraints = _load_program_from_args(args)
    graphs = [load_graph(Path(path)) for path in args.graphs]
    system = TeCoRe(
        rules=rules,
        constraints=constraints,
        solver=args.solver,
        kernel=args.kernel,
        threshold=args.threshold,
        engine=args.engine,
        decompose=args.decompose,
        jobs=args.jobs,
    )
    batch = system.resolve_batch(graphs, incremental=args.incremental)
    if args.json:
        print(json.dumps(batch.as_dict(), indent=2))
    else:
        for result in batch:
            statistics = result.statistics
            print(
                f"{result.input_graph.name:30s} facts={statistics.input_facts:6d} "
                f"removed={statistics.removed_facts:5d} inferred={statistics.inferred_facts:5d} "
                f"violations={statistics.violations:5d} {statistics.runtime_seconds * 1000:8.1f} ms"
            )
        print(
            f"batch: {len(batch)} graphs in {batch.runtime_seconds:.3f} s "
            f"({batch.graphs_per_second:.1f} graphs/s, solver={args.solver})"
        )
    return 0


def _watch_step_line(label: str, result) -> str:
    statistics = result.statistics
    delta = result.delta
    parts = [
        f"{label:10s}",
        f"facts={statistics.input_facts:6d}",
        f"removed={statistics.removed_facts:4d}",
        f"inferred={statistics.inferred_facts:4d}",
        f"violations={statistics.violations:4d}",
    ]
    if delta is not None:
        parts.append(f"changed={delta.facts_changed:4d}")
        parts.append(f"components={delta.components_cached}/{delta.components_total} cached")
    parts.append(f"{statistics.runtime_seconds * 1000:8.1f} ms")
    return "  ".join(parts)


def _command_watch(args: argparse.Namespace) -> int:
    graph = _load_graph_from_args(args)
    rules, constraints = _load_program_from_args(args)
    steps = load_change_stream(Path(args.stream))
    system = TeCoRe(
        rules=rules,
        constraints=constraints,
        solver=args.solver,
        kernel=args.kernel,
        threshold=args.threshold,
    )
    session = system.session(graph, warm_start=args.warm_start)
    if args.json:
        print(json.dumps({"step": 0, **session.result.as_dict()}))
    else:
        print(_watch_step_line("initial", session.result))
    for number, step in enumerate(steps, start=1):
        result = session.apply(adds=step.adds, removes=step.removes)
        if args.json:
            print(json.dumps({"step": number, **result.as_dict()}))
        else:
            print(_watch_step_line(f"step {number}", result))
    if not args.json:
        summary = session.state_summary()
        print(
            f"watched {len(steps)} steps: {summary['cache_hits']} component cache "
            f"hits, {summary['cache_misses']} misses, "
            f"{summary['firings']} firings / {summary['violations']} violations maintained"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import time as _time

    from .serve import ServerConfig, make_server

    rules, constraints = _load_program_from_args(args)
    system = TeCoRe(
        rules=rules,
        constraints=constraints,
        solver=args.solver,
        kernel=args.kernel,
        threshold=args.threshold,
        engine=args.engine,
        decompose=args.decompose,
        jobs=args.jobs,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch=args.batch_max,
        batch_delay=args.batch_delay,
        queue_limit=args.queue_limit,
        coalesce=not args.no_coalesce,
        response_cache=args.response_cache,
        max_sessions=args.max_sessions,
        wal_dir=args.wal_dir,
        fsync_policy=args.fsync_policy,
        fsync_batch=args.fsync_batch,
        fsync_interval=args.fsync_interval,
        compact_every=args.compact_every,
        request_deadline=args.request_deadline,
        shed_resolve_at=args.shed_resolve_at,
        lint=args.lint,
        workers=args.workers,
    )
    injector = None
    if args.faults:
        from .verify.faults import FaultInjector, parse_fault_spec

        try:
            injector = FaultInjector(parse_fault_spec(args.faults))
        except ValueError as error:
            raise TecoreError(str(error)) from error
    try:
        server = make_server(system, config, injector=injector)
    except (ValueError, OverflowError) as error:
        # Bad tuning values (e.g. --batch-max 0) follow the CLI's
        # `error: <message>` contract instead of surfacing a traceback.
        raise TecoreError(str(error)) from error
    durability = ""
    if args.wal_dir:
        recovery = server.service.recovery
        restored = recovery.sessions_restored if recovery is not None else 0
        durability = f", wal={args.wal_dir} ({restored} sessions recovered)"
    sharding = f", workers={args.workers}" if args.workers else ""
    print(
        f"serving on {server.url} (solver={args.solver}, "
        f"batch={args.batch_max} @ {args.batch_delay * 1000:.0f} ms, "
        f"queue={args.queue_limit}, sessions={args.max_sessions}"
        f"{sharding}{durability})",
        flush=True,
    )
    try:
        if args.for_seconds is not None:
            server.run_in_thread()
            _time.sleep(args.for_seconds)
        else:  # pragma: no cover - interactive serving loop
            server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.close()
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from .verify.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        seed=args.seed,
        clients=args.clients,
        ops_per_client=args.ops_per_client,
        sessions=args.sessions,
        kill_after=args.kill_after,
        faults=args.faults,
        fault_count=args.fault_count,
        pack=args.pack,
        solver=args.solver,
        workers=args.workers,
        kill=args.kill,
    )
    report, _history = run_chaos(
        config,
        wal_dir=args.wal_dir,
        history_path=args.save_history,
        check=not args.no_check,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        target = f"worker of {report.workers}" if report.kill == "worker" else "server"
        print(
            f"chaos seed {report.seed}: {report.total_ops} ops "
            f"({report.pending_ops} pending), killed {target} after "
            f"{report.killed_after}, "
            f"{report.recovered_sessions} sessions recovered, "
            f"{report.retries} retries, faults [{report.fault_spec}]"
        )
        if report.serializable is not None:
            verdict = (
                "combined history serializable"
                if report.serializable
                else f"{len(report.violations)} violation(s)"
            )
            print(verdict)
        if report.history_path:
            print(f"history saved to {report.history_path}")
    if report.serializable is False:
        return 1
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from .analysis import DIAGNOSTICS, LintReport, analyze_program, analyze_text

    graph = None
    if args.graph or args.dataset:
        graph = _load_graph_from_args(args)

    report = LintReport()
    inputs = 0
    for path_str in args.programs:
        text = Path(path_str).read_text(encoding="utf-8")
        report.extend(analyze_text(text, source=path_str, graph=graph))
        inputs += 1
    pack_names = list(args.pack)
    if args.all_packs:
        pack_names.extend(name for name in available_packs() if name not in pack_names)
    for name in pack_names:
        pack = load_pack(name)
        report.extend(analyze_program(pack.rules, pack.constraints, graph, source=f"pack:{name}"))
        inputs += 1
    if not inputs:
        raise TecoreError("nothing to lint; give program files, --pack, or --all-packs")

    report = report.sorted()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())

    if args.expect_findings:
        expected = {code.strip() for code in args.expect_findings.split(",") if code.strip()}
        unknown = sorted(expected - set(DIAGNOSTICS))
        if unknown:
            raise TecoreError(f"unknown diagnostic code(s): {', '.join(unknown)}")
        reported = set(report.codes())
        missing = sorted(expected - reported)
        if missing:
            print(
                f"expected finding(s) not reported: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
        return 0
    return 0 if report.ok(strict=args.strict) else 1


def _command_verify(args: argparse.Namespace) -> int:
    from .verify import (
        History,
        SerializabilityChecker,
        WorkloadConfig,
        record_workload,
    )

    rules, constraints = _load_program_from_args(args)
    system = TeCoRe(
        rules=rules,
        constraints=constraints,
        solver=args.solver,
        kernel=args.kernel,
        threshold=args.threshold,
    )
    checker = SerializabilityChecker(system)
    save_dir = Path(args.save_failures) if args.save_failures else None
    if save_dir is not None:
        save_dir.mkdir(parents=True, exist_ok=True)

    runs: list[tuple[str, History]] = []
    if args.histories:
        for path in args.histories:
            runs.append((path, History.load(Path(path))))
    else:
        for index in range(args.runs):
            seed = args.seed + index
            workload = WorkloadConfig(
                seed=seed,
                clients=args.clients,
                ops_per_client=args.ops_per_client,
                sessions=args.sessions,
                zipf_alpha=args.zipf_alpha,
                noise=args.noise,
                malformed_ratio=args.malformed_ratio,
            )
            runs.append((f"seed {seed}", record_workload(system, workload)))

    total_violations = 0
    summaries = []
    for label, history in runs:
        report = checker.check(history)
        total_violations += len(report.violations)
        summaries.append(
            {
                "history": label,
                "operations": len(history),
                "ok": report.ok,
                "violations": [violation.to_dict() for violation in report.violations],
                "stats": report.stats,
            }
        )
        if not args.json:
            print(f"{label:30s} {report.summary()}")
        if not report.ok and save_dir is not None:
            slug = label.replace(" ", "-").replace("/", "_")
            history.save(save_dir / f"history-{slug}.json")
            (save_dir / f"violations-{slug}.json").write_text(
                json.dumps([violation.to_dict() for violation in report.violations], indent=2)
                + "\n",
                encoding="utf-8",
            )
    if args.json:
        print(
            json.dumps(
                {
                    "histories": len(runs),
                    "violations": total_violations,
                    "expect_violation": args.expect_violation,
                    "runs": summaries,
                },
                indent=2,
            )
        )
    elif not args.expect_violation:
        print(
            f"checked {len(runs)} histories: "
            + ("all serializable" if not total_violations else f"{total_violations} violation(s)")
        )
    if args.expect_violation:
        if total_violations:
            if not args.json:
                print(f"expected violations confirmed ({total_violations} found)")
            return 0
        print("error: expected violations, found none", file=sys.stderr)
        return 1
    return 1 if total_violations else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _command_datasets()
        if args.command == "solvers":
            return _command_solvers()
        if args.command == "packs":
            return _command_packs()
        if args.command == "stats":
            return _command_stats(args)
        if args.command == "detect":
            return _command_detect(args)
        if args.command == "resolve":
            return _command_resolve(args)
        if args.command == "resolve-batch":
            return _command_resolve_batch(args)
        if args.command == "watch":
            return _command_watch(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "chaos":
            return _command_chaos(args)
        if args.command == "lint":
            return _command_lint(args)
        if args.command == "verify":
            return _command_verify(args)
        parser.error(f"unknown command {args.command!r}")
    except (TecoreError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
