"""Pass 2: schema conformance — sort (term-kind) checks and KG relations.

Quad atoms are fixed-arity, so the interesting conformance property is the
*sort* of each variable: a variable bound in an entity position cannot also
stand in an interval position (the vectorized grounder marks such bodies
``dead``), feed an Allen condition, or be dereferenced with ``start()`` /
``end()`` / ``duration()`` — all of which raise at grounding time.  With a
loaded graph, body predicates are additionally checked against the graph's
relations (:mod:`repro.kg.stats` cardinalities) and the program's own
derived head predicates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..logic.atom import AllenAtom, Comparison, TermEquality
from ..logic.expressions import (
    BinaryOp,
    Expression,
    IntervalDuration,
    IntervalEnd,
    IntervalStart,
)
from ..logic.terms import Variable
from .findings import Finding, LintReport
from .model import Unit


def _interval_accessors(expression: Expression) -> List[Expression]:
    """All start()/end()/duration() nodes inside an expression tree."""
    found: List[Expression] = []
    stack: List[Expression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, (IntervalStart, IntervalEnd, IntervalDuration)):
            found.append(node)
        elif isinstance(node, BinaryOp):
            stack.extend((node.left, node.right))
    return found


def check_schema(
    unit: Unit,
    known_predicates: Optional[Set[str]] = None,
    derived_predicates: Optional[Set[str]] = None,
) -> LintReport:
    """Sort clashes for one statement, plus unknown-predicate checks.

    ``known_predicates`` are the loaded graph's relations (None skips the
    W205 check); ``derived_predicates`` the head predicates of the whole
    program, which are legitimately absent from the input graph.
    """
    report = LintReport()
    entity_vars, interval_vars = unit.body_variable_positions()

    clashed = sorted(entity_vars & interval_vars)
    for name in clashed:
        span = unit.statement_span
        for index, atom in enumerate(unit.body):
            if isinstance(atom.interval, Variable) and atom.interval.name == name:
                span = unit.body_span(index)
                break
        report.findings.append(
            Finding(
                code="E201",
                message=(
                    f"variable {name} is used in both an entity and an interval "
                    "position; the body can never match"
                ),
                statement=unit.name,
                span=span,
                source=unit.source,
            )
        )

    entity_only = entity_vars - interval_vars
    for group, index, condition in unit.all_conditions():
        span = unit.span_for(group, index)
        if isinstance(condition, AllenAtom):
            for argument in (condition.left, condition.right):
                if isinstance(argument, Variable) and argument.name in entity_only:
                    report.findings.append(
                        Finding(
                            code="E202",
                            message=(
                                f"temporal predicate {condition.relation}() applied "
                                f"to entity variable {argument.name}"
                            ),
                            statement=unit.name,
                            span=span,
                            source=unit.source,
                        )
                    )
        elif isinstance(condition, TermEquality):
            for side in (condition.left, condition.right):
                if isinstance(side, Variable) and side.name in interval_vars:
                    report.findings.append(
                        Finding(
                            code="E203",
message=(f"term (in)equality over interval variable {side.name}"),
                            statement=unit.name,
                            span=span,
                            source=unit.source,
                            hint="compare intervals with equals()/overlaps() instead",
                        )
                    )
        elif isinstance(condition, Comparison):
            for expression in (condition.left, condition.right):
                for accessor in _interval_accessors(expression):
                    variable = getattr(accessor, "variable", None)
                    if isinstance(variable, Variable) and variable.name in entity_only:
                        accessor_name = type(accessor).__name__.replace("Interval", "").lower()
                        report.findings.append(
                            Finding(
                                code="E204",
                                message=(
                                    f"{accessor_name}({variable.name}) dereferences an "
                                    "entity variable as an interval"
                                ),
                                statement=unit.name,
                                span=span,
                                source=unit.source,
                            )
                        )

    if known_predicates is not None:
        derived = derived_predicates or set()
        for index, atom in enumerate(unit.body):
            predicate = atom.predicate
            if isinstance(predicate, Variable):
                continue
            name = getattr(predicate, "value", str(predicate))
            if name not in known_predicates and name not in derived:
                report.findings.append(
                    Finding(
                        code="W205",
                        message=(
                            f"predicate {name} occurs neither in the graph nor as "
                            "any rule's head; this atom never matches"
                        ),
                        statement=unit.name,
                        span=unit.body_span(index),
                        source=unit.source,
                    )
                )
    return report


def derived_predicate_names(units: Iterable[Unit]) -> Set[str]:
    """Constant head predicates of all rules (program-derivable relations)."""
    names: Set[str] = set()
    for unit in units:
        if unit.head_atom is not None and not isinstance(unit.head_atom.predicate, Variable):
            names.add(getattr(unit.head_atom.predicate, "value", ""))
    return names


def predicate_cardinalities(graph: object) -> Dict[str, int]:
    """Per-predicate fact counts from a graph (for W205/I605)."""
    from ..kg.stats import graph_stats

    stats = graph_stats(graph)  # type: ignore[arg-type]
    return {entry.predicate: entry.fact_count for entry in stats.per_predicate}
