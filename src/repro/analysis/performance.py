"""Pass 6: performance lints mirroring the VectorizedGrounder's fast paths.

The W6xx codes are *exactly* the constructs that push
:class:`~repro.logic.vectorized.VectorizedGrounder` off its columnar path
(see ``_CompiledBody``, ``_condition_mask`` and ``_head_interval_columns``):

* **W601** — a variable in predicate position compiles the whole body to
  the indexed-backtracking fallback;
* **W602** — a condition outside {Allen atom, comparison over supported
  expressions, term equality} is evaluated per match row;
* **W603** — a head-interval expression outside {var, intersection, union,
  shift} is evaluated per match row;
* **W604** — body atoms that share no variables (directly or through
  conditions) make grounding enumerate their full cross product;
* **I605** — with a loaded graph, the naive join-candidate estimate
  (product of the body predicates' fact counts) exceeds the reporting
  threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..logic.atom import AllenAtom, Comparison, TermEquality
from ..logic.expressions import (
    BinaryOp,
    Expression,
    IntervalDuration,
    IntervalEnd,
    IntervalStart,
    Number,
    TermValue,
)
from ..logic.terms import Variable
from .findings import Finding, LintReport
from .model import Unit

#: Head-interval kinds `_head_interval_columns` evaluates columnar-ly.
VECTORIZED_INTERVAL_KINDS = frozenset({"var", "intersection", "union", "shift"})

#: Default I605 reporting threshold for the naive join-candidate estimate.
ESTIMATE_THRESHOLD = 1_000_000


def _expression_vectorizable(expression: Expression) -> bool:
    """True when `_evaluate_expression` handles every node of the tree."""
    stack: List[Expression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp):
            stack.extend((node.left, node.right))
        elif not isinstance(
            node,
            (Number, IntervalStart, IntervalEnd, IntervalDuration, TermValue),
        ):
            return False
    return True


def _condition_vectorizable(condition: object) -> bool:
    if isinstance(condition, (AllenAtom, TermEquality)):
        return True
    if isinstance(condition, Comparison):
        return _expression_vectorizable(
            condition.left
        ) and _expression_vectorizable(condition.right)
    return False


def _connected_components(unit: Unit) -> int:
    """Number of variable-connected groups of body atoms.

    *Body* conditions count as connectors: an Allen condition over two
    intervals links the atoms that bind them during the join.  A
    constraint's head conditions do not — they are only checked on the
    already-enumerated matches, so they cannot shrink the cross product.
    """
    if len(unit.body) < 2:
        return len(unit.body)
    atom_vars: List[Set[str]] = []
    for atom in unit.body:
        names = {
            position.name
            for position in (atom.subject, atom.predicate, atom.object, atom.interval)
            if isinstance(position, Variable)
        }
        atom_vars.append(names)

    # Union-find over atoms; conditions merge the atoms binding their vars.
    parent = list(range(len(unit.body)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(first: int, second: int) -> None:
        parent[find(first)] = find(second)

    by_variable: Dict[str, int] = {}
    for index, names in enumerate(atom_vars):
        for name in names:
            if name in by_variable:
                union(index, by_variable[name])
            else:
                by_variable[name] = index
    for condition in unit.conditions:
        anchors = [by_variable[v.name] for v in condition.variables() if v.name in by_variable]
        for anchor in anchors[1:]:
            union(anchors[0], anchor)
    return len({find(index) for index in range(len(unit.body))})


def check_performance(unit: Unit, cardinalities: Optional[Dict[str, int]] = None) -> LintReport:
    report = LintReport()

    for index, atom in enumerate(unit.body):
        if isinstance(atom.predicate, Variable):
            report.findings.append(
                Finding(
                    code="W601",
                    message=(
                        f"variable predicate ?{atom.predicate.name} forces the "
                        "vectorized grounder onto the indexed-backtracking "
                        "fallback for the whole body"
                    ),
                    statement=unit.name,
                    span=unit.body_span(index),
                    source=unit.source,
                )
            )
            break  # one fallback note per body is enough

    for group, index, condition in unit.all_conditions():
        if not _condition_vectorizable(condition):
            report.findings.append(
                Finding(
                    code="W602",
                    message=(
                        f"condition {condition} is outside the vectorizable "
                        "forms and is evaluated per match row"
                    ),
                    statement=unit.name,
                    span=unit.span_for(group, index),
                    source=unit.source,
                )
            )

    if (
        unit.head_interval is not None and unit.head_interval.kind not in VECTORIZED_INTERVAL_KINDS
    ):
        report.findings.append(
            Finding(
                code="W603",
                message=(
                    f"head-interval kind {unit.head_interval.kind!r} is outside "
                    "the vectorized kinds and is evaluated per match row"
                ),
                statement=unit.name,
                span=unit.head_span(),
                source=unit.source,
            )
        )

    if _connected_components(unit) > 1:
        report.findings.append(
            Finding(
                code="W604",
                message=(
                    "body atoms form disconnected groups; grounding enumerates "
                    "their full cross product"
                ),
                statement=unit.name,
                span=unit.body_span(0),
                source=unit.source,
                hint="join the groups through a shared variable or condition",
            )
        )

    if cardinalities:
        estimate = 1
        known_any = False
        for atom in unit.body:
            if isinstance(atom.predicate, Variable):
                estimate *= max(1, sum(cardinalities.values()))
                known_any = True
                continue
            name = getattr(atom.predicate, "value", str(atom.predicate))
            if name in cardinalities:
                estimate *= max(1, cardinalities[name])
                known_any = True
        if known_any and estimate > ESTIMATE_THRESHOLD:
            report.findings.append(
                Finding(
                    code="I605",
                    message=(
                        f"naive join-candidate estimate is {estimate:,} rows "
                        "for this body against the loaded graph"
                    ),
                    statement=unit.name,
                    span=unit.body_span(0),
                    source=unit.source,
                )
            )
    return report
