"""The analyzer driver: run every pass over a program and merge findings.

Three entry points, by what the caller holds:

* :func:`analyze_text` — program source text (spans available; parse errors
  become E001 findings instead of aborting);
* :func:`analyze_parsed` — a :class:`~repro.logic.parser.ParsedProgram`
  (spans available via its ``annotated`` list);
* :func:`analyze_program` — built rule/constraint objects (no spans).

All three accept an optional loaded graph, which enables the
predicate-existence (W205) and grounding-estimate (I605) checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

from ..errors import ParseError
from ..logic.constraint import TemporalConstraint
from ..logic.parser import (
    ParsedProgram,
    SourceSpan,
    parse_raw_statement,
    split_statements,
)
from ..logic.rule import TemporalRule
from .duplicates import check_duplicates
from .findings import Finding, LintReport
from .hardcore import check_hard_conflicts
from .model import Unit, unit_from_constraint, unit_from_raw, unit_from_rule
from .performance import check_performance
from .safety import check_safety
from .schema import check_schema, derived_predicate_names, predicate_cardinalities
from .temporal_sat import check_temporal


def analyze_units(units: Sequence[Unit], graph: Optional[object] = None) -> LintReport:
    """Run every analysis pass over normalised units."""
    report = LintReport()
    cardinalities: Optional[Dict[str, int]] = None
    known_predicates: Optional[Set[str]] = None
    if graph is not None:
        cardinalities = predicate_cardinalities(graph)
        known_predicates = set(cardinalities)
    derived = derived_predicate_names(units)

    for unit in units:
        report.extend(check_safety(unit))
        report.extend(check_schema(unit, known_predicates, derived))
        report.extend(check_temporal(unit))
        report.extend(check_performance(unit, cardinalities))
    report.extend(check_hard_conflicts(units))
    report.extend(check_duplicates(units))
    return report.sorted()


def analyze_program(
    rules: Iterable[TemporalRule],
    constraints: Iterable[TemporalConstraint],
    graph: Optional[object] = None,
    source: Optional[str] = None,
) -> LintReport:
    """Analyze built rule/constraint objects (no source spans)."""
    units = [unit_from_rule(rule, source=source) for rule in rules]
    units.extend(unit_from_constraint(constraint, source=source) for constraint in constraints)
    return analyze_units(units, graph)


def analyze_parsed(
    parsed: ParsedProgram,
    graph: Optional[object] = None,
    source: Optional[str] = None,
) -> LintReport:
    """Analyze an already-parsed program, using its recorded spans."""
    units = []
    for annotated in parsed.annotated:
        statement = annotated.statement
        if isinstance(statement, TemporalRule):
            units.append(unit_from_rule(statement, annotated.spans, source))
        else:
            units.append(unit_from_constraint(statement, annotated.spans, source))
    return analyze_units(units, graph)


def analyze_text(
    text: str, source: Optional[str] = None, graph: Optional[object] = None
) -> LintReport:
    """Analyze program source text.

    Statements that fail to parse produce **E001** findings (with the error
    position) while the remaining statements are still analyzed — unlike
    :func:`~repro.logic.parser.parse_program`, which aborts on the first
    error.  Statements that parse but fail rule/constraint validation are
    analyzed anyway: the safety pass reports the violation as a finding.
    """
    report = LintReport()
    units = []
    for block in split_statements(text):
        try:
            raw = parse_raw_statement(
                block.text,
                source=None,
                default_name=block.default_name,
                block=block,
            )
        except ParseError as error:
            offset = getattr(error, "offset", None)
            if offset is not None:
                line, column = block.locate(offset)
            else:
                line, column = block.first_line, 1
            report.findings.append(
                Finding(
                    code="E001",
                    message=str(error),
                    statement=block.default_name,
                    span=SourceSpan(line, column, line, column + 1),
                    source=source,
                )
            )
            continue
        units.append(unit_from_raw(raw, source=source))
    deep = analyze_units(units, graph)
    report.extend(deep)
    return report.sorted()
