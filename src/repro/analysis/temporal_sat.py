"""Pass 3: temporal satisfiability via point-algebra closure.

Each statement's interval conditions become a point network over the
``start``/``end`` points of its interval variables (plus numeric constants
from comparisons); the path-consistency closure then decides:

* **E301** — the network is inconsistent: the body can never be satisfied
  by any intervals (a dead rule/constraint);
* **W302** — a constraint's head conditions are entailed by its body
  network: the constraint can never be violated;
* **W303** — the head conditions are unsatisfiable together with the body:
  the constraint is a denial in disguise;
* **I304** — a condition is entailed by the other conditions (redundant).

Soundness hinges on the encoding split documented in
:mod:`repro.temporal.pointalgebra`: *necessary* encodings feed
unsatisfiability checks, only *exact* encodings support entailment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..logic.atom import AllenAtom, Comparison, ConditionAtom, TermEquality
from ..logic.expressions import Expression, IntervalEnd, IntervalStart, Number
from ..logic.terms import Variable
from ..temporal.pointalgebra import (
    LE,
    LT,
    OPERATOR_RELATIONS,
    PREDICATE_ENCODINGS,
    PointNetwork,
    Relation,
)
from .findings import Finding, LintReport
from .model import Unit

#: One encoded condition: point constraints plus whether they are exact.
_Encoded = Tuple[bool, Tuple[Tuple[object, Relation, object], ...]]

_CONST = "const"


def _point(expression: Expression) -> Optional[object]:
    """Network node for a bare start()/end()/number expression, else None."""
    if isinstance(expression, IntervalStart) and isinstance(expression.variable, Variable):
        return (expression.variable.name, "s")
    if isinstance(expression, IntervalEnd) and isinstance(expression.variable, Variable):
        return (expression.variable.name, "e")
    if isinstance(expression, Number):
        return (_CONST, float(expression.value))
    return None


def encode_condition(condition: ConditionAtom) -> Optional[_Encoded]:
    """Point-algebra encoding of one condition; None when inexpressible.

    ``TermEquality`` is handled separately (it is not temporal); returning
    None here keeps it out of the network.
    """
    if isinstance(condition, AllenAtom):
        encoding = PREDICATE_ENCODINGS.get(condition.relation)
        if encoding is None:
            return None
        left = condition.left
        right = condition.right
        if not isinstance(left, Variable) or not isinstance(right, Variable):
            return None
        sides = {"l": left.name, "r": right.name}
        constraints = tuple(
            ((sides[a[0]], a[1]), relation, (sides[b[0]], b[1]))
            for a, relation, b in encoding.constraints
        )
        return encoding.exact, constraints
    if isinstance(condition, Comparison):
        relation = OPERATOR_RELATIONS.get(condition.operator)
        if relation is None:
            return None
        left = _point(condition.left)
        right = _point(condition.right)
        if left is None or right is None:
            return None
        return True, ((left, relation, right),)
    return None


class ConditionNetwork:
    """The point network of one statement's conditions."""

    def __init__(self) -> None:
        self.network = PointNetwork()
        self._interval_vars: set = set()
        self._constants: set = set()

    def _register(self, node: object) -> None:
        if isinstance(node, tuple) and len(node) == 2:
            key, point = node
            if key == _CONST:
                self._constants.add(point)
            elif point in ("s", "e"):
                self._interval_vars.add(key)

    def add_interval_variable(self, name: str) -> None:
        self._interval_vars.add(name)

    def add_encoded(self, encoded: _Encoded) -> None:
        for left, relation, right in encoded[1]:
            self._register(left)
            self._register(right)
            self.network.constrain(left, right, relation)

    def finalise(self) -> bool:
        """Add intrinsic constraints and close; False when inconsistent."""
        for name in self._interval_vars:
            self.network.constrain((name, "s"), (name, "e"), LE)
        ordered = sorted(self._constants)
        for previous, current in zip(ordered, ordered[1:]):
            self.network.constrain((_CONST, previous), (_CONST, current), LT)
        return self.network.close()

    def entails_encoded(self, encoded: _Encoded) -> bool:
        """True when the (closed) network entails an *exact* encoding."""
        exact, constraints = encoded
        if not exact:
            return False
        return all(
            self.network.entails(left, right, relation) for left, relation, right in constraints
        )


def _build_network(
    unit: Unit, conditions: List[ConditionAtom], extra: List[ConditionAtom]
) -> Tuple[ConditionNetwork, bool]:
    """Network over ``conditions`` + ``extra``; returns (network, consistent)."""
    network = ConditionNetwork()
    _entity, interval_vars = unit.body_variable_positions()
    for name in interval_vars:
        network.add_interval_variable(name)
    for condition in (*conditions, *extra):
        encoded = encode_condition(condition)
        if encoded is not None:
            network.add_encoded(encoded)
    return network, network.finalise()


def _equality_verdict(condition: TermEquality) -> Optional[bool]:
    """Statically decided truth of a term (in)equality, when possible."""
    left, right = condition.left, condition.right
    if isinstance(left, Variable) or isinstance(right, Variable):
        if isinstance(left, Variable) and isinstance(right, Variable) and left == right:
            return not condition.negated
        return None
    # Two constants: decidable outright.
    return (left == right) != condition.negated


def check_temporal(unit: Unit) -> LintReport:
    report = LintReport()
    body_conditions = list(unit.conditions)
    head_conditions = list(unit.head_conditions)

    # Statically false (in)equalities in the body are dead-rule conditions.
    for group, index, condition in unit.all_conditions():
        if group != "condition" or not isinstance(condition, TermEquality):
            continue
        verdict = _equality_verdict(condition)
        if verdict is False:
            report.findings.append(
                Finding(
                    code="E301",
                    message=f"condition {condition} can never hold",
                    statement=unit.name,
                    span=unit.span_for(group, index),
                    source=unit.source,
                )
            )
        elif verdict is True:
            report.findings.append(
                Finding(
                    code="I304",
                    message=f"condition {condition} always holds",
                    statement=unit.name,
                    span=unit.span_for(group, index),
                    source=unit.source,
                )
            )

    body_network, consistent = _build_network(unit, body_conditions, [])
    if not consistent:
        span = unit.condition_span(0) if body_conditions else unit.statement_span
        rendered = " & ".join(str(c) for c in body_conditions)
        report.findings.append(
            Finding(
                code="E301",
                message=(
                    "interval conditions are jointly unsatisfiable "
                    f"({rendered}); the {unit.kind} can never fire"
                ),
                statement=unit.name,
                span=span,
                source=unit.source,
            )
        )
        return report  # entailment over an inconsistent network is vacuous

    # Redundant conditions: entailed (exactly) by the remaining network.
    for index, condition in enumerate(body_conditions):
        encoded = encode_condition(condition)
        if encoded is None or not encoded[0]:
            continue
        others = body_conditions[:index] + body_conditions[index + 1 :]
        rest_network, rest_consistent = _build_network(unit, others, [])
        if rest_consistent and rest_network.entails_encoded(encoded):
            report.findings.append(
                Finding(
                    code="I304",
                    message=f"condition {condition} is entailed by the other conditions",
                    statement=unit.name,
                    span=unit.condition_span(index),
                    source=unit.source,
                )
            )

    if unit.is_rule or not head_conditions:
        return report

    # W302: every head condition entailed by the body network (exactly).
    entailed = [
        encode_condition(condition) is not None
        and body_network.entails_encoded(encode_condition(condition))  # type: ignore[arg-type]
        for condition in head_conditions
    ]
    equality_true = [
        isinstance(condition, TermEquality) and _equality_verdict(condition) is True
        for condition in head_conditions
    ]
    if head_conditions and all(
        is_entailed or is_true for is_entailed, is_true in zip(entailed, equality_true)
    ):
        report.findings.append(
            Finding(
                code="W302",
                message=(
                    "head conditions are entailed by the body conditions; the "
                    "constraint can never be violated"
                ),
                statement=unit.name,
                span=unit.head_condition_span(0),
                source=unit.source,
            )
        )
        return report

    # W303: body ∧ head unsatisfiable — necessarily violated when applicable.
    _network, head_consistent = _build_network(unit, body_conditions, head_conditions)
    equality_false = any(
        isinstance(condition, TermEquality) and _equality_verdict(condition) is False
        for condition in head_conditions
    )
    if not head_consistent or equality_false:
        report.findings.append(
            Finding(
                code="W303",
                message=(
                    "head conditions cannot hold together with the body "
                    "conditions; every applicable match is a violation"
                ),
                statement=unit.name,
                span=unit.head_condition_span(0),
                source=unit.source,
                hint="drop the head conditions if a pure denial is intended",
            )
        )
    return report
