"""The structured finding model of the ``tecore lint`` static analyzer.

Every diagnostic the analyzer can emit has a *stable* code registered in
:data:`DIAGNOSTICS` — codes are part of the tool's public contract (CI
pipelines grep for them, ``--expect-findings`` matches on them) and must
never be renumbered.  The letter encodes the default severity family
(``E`` error, ``W`` warning, ``I`` info); the hundreds digit groups codes
by analysis pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..logic.parser import SourceSpan


class Severity(str, Enum):
    """Finding severity: errors gate by default, warnings under ``--strict``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """Catalogue entry for one stable diagnostic code."""

    code: str
    severity: Severity
    title: str
    description: str


def _catalogue(entries: Tuple[Diagnostic, ...]) -> Dict[str, Diagnostic]:
    table: Dict[str, Diagnostic] = {}
    for entry in entries:
        if entry.code in table:  # pragma: no cover - authoring guard
            raise ValueError(f"duplicate diagnostic code {entry.code}")
        table[entry.code] = entry
    return table


#: Every diagnostic the analyzer can emit, by stable code.
DIAGNOSTICS: Dict[str, Diagnostic] = _catalogue(
    (
        # -- parse / structure (0xx) ------------------------------------- #
        Diagnostic(
            "E001",
            Severity.ERROR,
            "parse error",
            "The statement could not be parsed as a rule or constraint.",
        ),
        # -- safety / range restriction (1xx) ----------------------------- #
        Diagnostic(
            "E101",
            Severity.ERROR,
            "unsafe head variable",
            "A head variable (or head-interval argument) is not bound by any "
            "positive body atom, so the rule cannot be grounded.",
        ),
        Diagnostic(
            "E102",
            Severity.ERROR,
            "unsafe condition variable",
            "A condition references a variable that no body atom binds.",
        ),
        Diagnostic(
            "E103",
            Severity.ERROR,
            "empty body",
            "The statement's body contains no quad atom to ground against.",
        ),
        Diagnostic(
            "E104",
            Severity.ERROR,
            "trivial denial",
            "A single-atom constraint with no conditions would delete every "
            "fact of its predicate — almost certainly a mistake.",
        ),
        Diagnostic(
            "I105",
            Severity.INFO,
            "singleton variable",
            "A body variable occurs exactly once in the statement; if it is "
            "not an intentional projection, it may be a typo.",
        ),
        # -- schema conformance (2xx) ------------------------------------- #
        Diagnostic(
            "E201",
            Severity.ERROR,
            "entity/interval sort clash",
            "The same variable is used in both an entity position and an "
            "interval position; no fact tuple can bind both, so the body "
            "never matches.",
        ),
        Diagnostic(
            "E202",
            Severity.ERROR,
            "temporal predicate over entity variable",
            "An Allen-relation condition is applied to a variable bound in an "
            "entity position; grounding raises on evaluation.",
        ),
        Diagnostic(
            "E203",
            Severity.ERROR,
            "term equality over interval variable",
            "A term (in)equality compares a variable bound in an interval "
            "position; grounding raises on evaluation.",
        ),
        Diagnostic(
            "E204",
            Severity.ERROR,
            "interval accessor over entity variable",
            "start()/end()/duration() is applied to a variable bound only in "
            "entity positions; grounding raises on evaluation.",
        ),
        Diagnostic(
            "W205",
            Severity.WARNING,
            "unknown predicate",
            "A body predicate occurs neither in the loaded graph nor as any "
            "rule's head predicate, so the atom can never match.",
        ),
        # -- temporal satisfiability (3xx) --------------------------------- #
        Diagnostic(
            "E301",
            Severity.ERROR,
            "temporally unsatisfiable body",
            "The body's interval/order conditions are jointly unsatisfiable "
            "(point-algebra closure is inconsistent): the statement is dead "
            "and can never fire.",
        ),
        Diagnostic(
            "W302",
            Severity.WARNING,
            "tautological constraint",
            "The constraint's head conditions are entailed by its body "
            "conditions, so it can never be violated (dead weight).",
        ),
        Diagnostic(
            "W303",
            Severity.WARNING,
            "constraint reduces to a denial",
            "The head conditions are unsatisfiable together with the body "
            "conditions: every applicable match is a violation.  If a pure "
            "denial is intended, drop the head conditions.",
        ),
        Diagnostic(
            "I304",
            Severity.INFO,
            "redundant condition",
            "A condition is entailed by the statement's other conditions and "
            "can be removed without changing its meaning.",
        ),
        # -- hard-conflict analysis (4xx) ---------------------------------- #
        Diagnostic(
            "E401",
            Severity.ERROR,
            "statically infeasible hard core",
            "Every firing of this hard rule necessarily violates a hard "
            "constraint using only the rule's own body facts and derived "
            "head — the opposite-polarity coupling class behind the "
            "repair_hard ping-pong bug.  The MAP state can only escape by "
            "deleting the rule's body evidence.",
        ),
        Diagnostic(
            "W402",
            Severity.WARNING,
            "opposite-polarity hard coupling",
            "A hard rule's head predicate feeds a hard constraint's body: "
            "hard-clause repair must coordinate opposite polarities on the "
            "shared atoms (the class that made greedy repair ping-pong).",
        ),
        Diagnostic(
            "E403",
            Severity.ERROR,
            "infeasible hard clauses",
            "Unit propagation over the ground program's hard clauses derives "
            "a contradiction: no assignment satisfies them, and every MAP "
            "solver will raise InfeasibleProgramError.",
        ),
        # -- subsumption / duplicates (5xx) -------------------------------- #
        Diagnostic(
            "W501",
            Severity.WARNING,
            "duplicate statement",
            "Two statements are identical up to variable renaming; their "
            "weights stack silently.",
        ),
        Diagnostic(
            "W502",
            Severity.WARNING,
            "subsumed statement",
            "A statement's body is a superset of another statement with the "
            "same head, so every one of its matches already fires the more "
            "general statement.",
        ),
        # -- performance lints (6xx) --------------------------------------- #
        Diagnostic(
            "W601",
            Severity.WARNING,
            "variable predicate forces backtracking fallback",
            "A body atom with a variable in predicate position cannot be "
            "joined columnar-ly; the vectorized grounder falls back to "
            "indexed backtracking for the whole body.",
        ),
        Diagnostic(
            "W602",
            Severity.WARNING,
            "condition forces per-row fallback",
            "A condition outside the vectorizable forms (Allen atom, "
            "comparison, term equality) is evaluated per match row on the "
            "scalar path.",
        ),
        Diagnostic(
            "W603",
            Severity.WARNING,
            "head interval forces per-row fallback",
            "The head-interval expression is outside the vectorized kinds "
            "(variable, intersection, union, shift) and is evaluated per "
            "match row on the scalar path.",
        ),
        Diagnostic(
            "W604",
            Severity.WARNING,
            "unbounded cross product",
            "Groups of body atoms share no variables (directly or through "
            "conditions): grounding enumerates their full cross product.",
        ),
        Diagnostic(
            "I605",
            Severity.INFO,
            "large grounding estimate",
            "The relation cardinalities of the loaded graph put the naive "
            "join-candidate estimate for this body above the reporting "
            "threshold.",
        ),
    )
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic instance, anchored to a statement (and span when known)."""

    code: str
    message: str
    statement: str = ""
    span: Optional[SourceSpan] = None
    source: Optional[str] = None
    hint: str = ""

    @property
    def severity(self) -> Severity:
        return DIAGNOSTICS[self.code].severity

    @property
    def title(self) -> str:
        return DIAGNOSTICS[self.code].title

    def location(self) -> str:
        """``source:line:column`` (best effort) for text output."""
        parts: List[str] = []
        if self.source:
            parts.append(self.source)
        if self.span is not None:
            parts.append(f"{self.span.line}:{self.span.column}")
        return ":".join(parts)

    def render(self) -> str:
        location = self.location()
        prefix = f"{location}: " if location else ""
        statement = f" [{self.statement}]" if self.statement else ""
        text = f"{prefix}{self.severity.value} {self.code}{statement}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "title": self.title,
            "message": self.message,
            "statement": self.statement,
        }
        if self.span is not None:
            payload["span"] = {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            }
        if self.source:
            payload["source"] = self.source
        if self.hint:
            payload["hint"] = self.hint
        return payload


@dataclass
class LintReport:
    """All findings of one analyzer run, with severity roll-ups."""

    findings: List[Finding] = field(default_factory=list)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def extend(self, findings: "LintReport") -> None:
        self.findings.extend(findings.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    def ok(self, strict: bool = False) -> bool:
        """True when nothing gates: no errors (nor warnings under strict)."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def codes(self) -> List[str]:
        return [finding.code for finding in self.findings]

    def sorted(self) -> "LintReport":
        """Findings ordered by source position, then severity, then code."""
        rank = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}

        def key(finding: Finding) -> Tuple[str, int, int, int, str]:
            span = finding.span
            return (
                finding.source or "",
                span.line if span else 0,
                span.column if span else 0,
                rank[finding.severity],
                finding.code,
            )

        return LintReport(findings=sorted(self.findings, key=key))

    def render(self) -> str:
        lines = [finding.render() for finding in self.sorted()]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def summary_line(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )

    def to_dict(self) -> Dict[str, Any]:
        """The stable JSON shape of ``tecore lint --json`` (see docs/analysis.md)."""
        return {
            "version": 1,
            "findings": [finding.to_dict() for finding in self.sorted()],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "ok": self.ok(),
                "ok_strict": self.ok(strict=True),
            },
        }
