"""Pass 4: hard-conflict analysis over the rule/constraint coupling graph.

The greedy hard-clause repair bug class fixed in the solver layer (the
``repair_hard`` ping-pong) has a *static* signature: a hard rule whose every
firing necessarily violates a hard constraint, using only the rule's own
body facts and derived head.  Repair can then only escape by deleting the
rule's body evidence — flipping the same atoms back and forth.

**E401** flags exactly this: a homomorphism from the hard constraint's body
into ``rule.body ∪ {head}`` (covering the head) under which the constraint's
body conditions are entailed by the rule's conditions and its head
conditions cannot hold.  All entailment is delegated to the point-algebra
machinery of :mod:`.temporal_sat`; everything that cannot be verified makes
the check bail *without* a finding, so E401 never fires spuriously.

**W402** is the coarse coupling lint: a hard rule's head predicate feeds a
hard constraint's body (opposite polarities on shared ground atoms) but the
strong E401 conditions were not established.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.atom import ConditionAtom, QuadAtom, TermEquality
from ..logic.terms import Variable
from ..temporal.pointalgebra import Relation
from .findings import Finding, LintReport
from .model import Unit
from .temporal_sat import ConditionNetwork, encode_condition

#: Substitution: constraint variable name → rule-side term (Variable/constant).
_Subst = Dict[str, object]


def _match_term(pattern: object, target: object, subst: _Subst) -> Optional[_Subst]:
    """One-way match of a constraint term against a rule term."""
    if isinstance(pattern, Variable):
        bound = subst.get(pattern.name)
        if bound is None:
            extended = dict(subst)
            extended[pattern.name] = target
            return extended
        return subst if bound == target else None
    return subst if pattern == target else None


def _match_atom(pattern: QuadAtom, target: QuadAtom, subst: _Subst) -> Optional[_Subst]:
    for pattern_term, target_term in (
        (pattern.subject, target.subject),
        (pattern.predicate, target.predicate),
        (pattern.object, target.object),
        (pattern.interval, target.interval),
    ):
        next_subst = _match_term(pattern_term, target_term, subst)
        if next_subst is None:
            return None
        subst = next_subst
    return subst


def _embeddings(
    patterns: Sequence[QuadAtom],
    targets: Sequence[QuadAtom],
    subst: _Subst,
    used: frozenset,
) -> List[_Subst]:
    """All injective embeddings of ``patterns`` into ``targets``.

    Injectivity (distinct targets) guards against degenerate matches where
    two constraint atoms collapse onto the same rule atom.
    """
    if not patterns:
        return [subst]
    head, *rest = patterns
    results: List[_Subst] = []
    for index, target in enumerate(targets):
        if index in used:
            continue
        extended = _match_atom(head, target, subst)
        if extended is not None:
            results.extend(_embeddings(rest, targets, extended, used | {index}))
    return results


def _rename_encoding(
    encoded: Tuple[bool, Tuple[Tuple[object, Relation, object], ...]],
    subst: _Subst,
) -> Optional[Tuple[bool, Tuple[Tuple[object, Relation, object], ...]]]:
    """Rewrite an encoding's nodes through the substitution.

    Bails (None) when a constrained variable maps to a non-variable — a
    constant interval cannot be represented in the point network.
    """
    exact, constraints = encoded
    renamed: List[Tuple[object, Relation, object]] = []
    for left, relation, right in constraints:
        nodes: List[object] = []
        for node in (left, right):
            name, point = node  # type: ignore[misc]
            if name == "const":
                nodes.append(node)
                continue
            target = subst.get(name, Variable(name))
            if not isinstance(target, Variable):
                return None
            nodes.append((target.name, point))
        renamed.append((nodes[0], relation, nodes[1]))
    return exact, tuple(renamed)


def _equality_after(condition: TermEquality, subst: _Subst) -> Optional[bool]:
    """Truth of a substituted term (in)equality, when statically decidable."""

    def resolve(term: object) -> object:
        if isinstance(term, Variable):
            return subst.get(term.name, term)
        return term

    left = resolve(condition.left)
    right = resolve(condition.right)
    if left == right:
        return not condition.negated
    if not isinstance(left, Variable) and not isinstance(right, Variable):
        return condition.negated
    return None


def _rule_network(rule: Unit) -> Optional[ConditionNetwork]:
    """The rule's closed condition network; None when inconsistent."""
    network = ConditionNetwork()
    _entity, interval_vars = rule.body_variable_positions()
    for name in interval_vars:
        network.add_interval_variable(name)
    for condition in rule.conditions:
        encoded = encode_condition(condition)
        if encoded is not None:
            network.add_encoded(encoded)
    if not network.finalise():
        return None
    return network


def _body_conditions_entailed(constraint: Unit, subst: _Subst, network: ConditionNetwork) -> bool:
    """Every constraint body condition provably holds whenever the rule fires."""
    for condition in constraint.conditions:
        if isinstance(condition, TermEquality):
            if _equality_after(condition, subst) is not True:
                return False
            continue
        encoded = encode_condition(condition)
        if encoded is None:
            return False
        renamed = _rename_encoding(encoded, subst)
        if renamed is None or not network.entails_encoded(renamed):
            return False
    return True


def _head_conditions_refuted(constraint: Unit, subst: _Subst, rule: Unit) -> bool:
    """The constraint's head conditions cannot all hold given the rule.

    True for pure denials (no head conditions), for a statically-false
    substituted (in)equality, and when the head conditions' necessary
    encodings are jointly unsatisfiable with the rule's network.
    """
    if not constraint.head_conditions:
        return True
    for condition in constraint.head_conditions:
        if isinstance(condition, TermEquality) and (_equality_after(condition, subst) is False):
            return True

    network = ConditionNetwork()
    _entity, interval_vars = rule.body_variable_positions()
    for name in interval_vars:
        network.add_interval_variable(name)
    for condition in rule.conditions:
        encoded = encode_condition(condition)
        if encoded is not None:
            network.add_encoded(encoded)
    for condition in constraint.head_conditions:
        encoded = encode_condition(condition)
        if encoded is None:
            continue
        renamed = _rename_encoding(encoded, subst)
        if renamed is not None:
            network.add_encoded(renamed)
    return not network.finalise()


def _predicate_name(atom: QuadAtom) -> Optional[str]:
    if isinstance(atom.predicate, Variable):
        return None
    return getattr(atom.predicate, "value", str(atom.predicate))


def _infeasible_pair(rule: Unit, constraint: Unit) -> bool:
    """True when every firing of ``rule`` necessarily violates ``constraint``."""
    if rule.head_atom is None:
        return False
    network = _rule_network(rule)
    if network is None:
        return False  # rule is dead (E301 covers it); nothing ever fires
    targets: List[QuadAtom] = [rule.head_atom, *rule.body]
    for anchor_index, anchor in enumerate(constraint.body):
        subst = _match_atom(anchor, rule.head_atom, {})
        if subst is None:
            continue
        rest = [atom for index, atom in enumerate(constraint.body) if index != anchor_index]
        for embedding in _embeddings(rest, targets, subst, frozenset({0})):
            if _body_conditions_entailed(
                constraint, embedding, network
            ) and _head_conditions_refuted(constraint, embedding, rule):
                return True
    return False


def check_hard_conflicts(units: Sequence[Unit]) -> LintReport:
    """E401/W402 over all hard rule × hard constraint pairs of a program."""
    report = LintReport()
    hard_rules = [u for u in units if u.is_rule and u.is_hard and u.head_atom]
    hard_constraints = [u for u in units if not u.is_rule and u.is_hard]
    for rule in hard_rules:
        head_predicate = _predicate_name(rule.head_atom)  # type: ignore[arg-type]
        for constraint in hard_constraints:
            couples = head_predicate is not None and any(
                _predicate_name(atom) in (head_predicate, None) for atom in constraint.body
            )
            if not couples:
                continue
            if _infeasible_pair(rule, constraint):
                report.findings.append(
                    Finding(
                        code="E401",
                        message=(
                            f"every firing of hard rule {rule.name} necessarily "
                            f"violates hard constraint {constraint.name}; the "
                            "MAP state can only escape by deleting the rule's "
                            "body evidence"
                        ),
                        statement=rule.name,
                        span=rule.head_span(),
                        source=rule.source,
                        hint=(
                            "soften the rule or the constraint, or restrict "
                            "the rule's conditions so the constraint cannot match"
                        ),
                    )
                )
            else:
                report.findings.append(
                    Finding(
                        code="W402",
                        message=(
                            f"hard rule {rule.name} derives {head_predicate}, "
                            f"which hard constraint {constraint.name} penalises; "
                            "hard-clause repair must coordinate opposite "
                            "polarities on the shared atoms"
                        ),
                        statement=rule.name,
                        span=rule.head_span(),
                        source=rule.source,
                    )
                )
    return report
